"""Setup shim for environments without the `wheel` package.

Allows `pip install -e . --no-use-pep517 --no-build-isolation` (legacy
editable install) in the offline benchmark environment; all project
metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
