"""Figure 7 (right): single-node throughput vs read/write request ratio.

Paper's finding: increasing the share of reads increases total throughput,
most dramatically at 100% reads where requests never touch consensus.
"""

from benchmarks.harness import build_service, print_table, run_logging_workload

READ_RATIOS = [0.0, 0.25, 0.5, 0.75, 1.0]


def _measure():
    rows = []
    for ratio in READ_RATIOS:
        service = build_service(n_nodes=1, seed=200 + int(ratio * 100))
        result = run_logging_workload(
            service,
            read_ratio=ratio,
            concurrency=100 + int(400 * ratio),  # reads are RTT-bound
            warmup=0.05,
            window=0.15,
            spread_reads=False,
        )
        rows.append((ratio, result))
    return rows


def test_fig7_right_read_write_mix(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = [
        [f"{int(ratio * 100)}%", result.writes_per_second,
         result.reads_per_second, result.total_per_second]
        for ratio, result in rows
    ]
    print_table(
        "Figure 7 (right): single-node throughput vs read ratio",
        ["reads", "writes/s", "reads/s", "total/s"],
        table,
    )
    totals = {ratio: result.total_per_second for ratio, result in rows}
    # Total throughput rises with the read share…
    assert totals[0.25] >= totals[0.0]
    assert totals[0.5] >= totals[0.25]
    assert totals[1.0] >= totals[0.75]
    # …and the all-read point towers over the all-write one.
    assert totals[1.0] > 3 * totals[0.0]
