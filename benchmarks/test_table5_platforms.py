"""Table 5: throughput for C++-analog (native) vs JS × SGX vs virtual.

Paper's numbers (five-node service, writes / reads in tx/s):

            SGX                virtual
    C++     64.8 K / 881 K     118 K / 1.24 M
    JS      15.7 K / 90.7 K    33.7 K / 219 K

Shape targets: virtual ≈ 1.8–2.4× SGX; native ≈ 4–10× JS. The JS rows run
the logging app through the real mini-JS interpreter; the platform gap
comes from the calibrated cost model (simulated time).
"""

import pytest

from benchmarks.harness import build_service, print_table, run_logging_workload

PAPER = {
    ("native", "sgx"): (64_800, 881_000),
    ("native", "virtual"): (118_000, 1_240_000),
    ("js", "sgx"): (15_700, 90_700),
    ("js", "virtual"): (33_700, 219_000),
}

CELLS = list(PAPER)


def _measure_cell(runtime: str, platform: str) -> tuple[float, float]:
    service = build_service(
        n_nodes=5, runtime=runtime, platform=platform,
        seed=(len(runtime) * 31 + len(platform)) % 1000,
    )
    writes = run_logging_workload(
        service, read_ratio=0.0, concurrency=100, warmup=0.04, window=0.1
    )
    # Reads: measure one node's *service-bound* capacity (short link, deep
    # closed loop) and scale by the five nodes — reads scale linearly with
    # node count (Figure 7 center). The paper's absolute read numbers were
    # limited by its single client VM; capacity measurement preserves the
    # SGX/virtual and C++/JS ratios, which are the platform signal.
    read_service = build_service(
        n_nodes=1, runtime=runtime, platform=platform,
        seed=(len(platform) * 37 + len(runtime)) % 1000 + 1,
        link_latency=5e-5,
    )
    reads = run_logging_workload(
        read_service, read_ratio=1.0,
        concurrency=600 if runtime == "native" else 150,
        warmup=0.01,
        window=0.025 if runtime == "native" else 0.05,
        spread_reads=False,
    )
    return writes.writes_per_second, reads.reads_per_second * 5


def test_table5(benchmark):
    def run_all():
        return {cell: _measure_cell(*cell) for cell in CELLS}

    measured = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for (runtime, platform), (writes, reads) in measured.items():
        paper_writes, paper_reads = PAPER[(runtime, platform)]
        rows.append([
            {"native": "C++ (native)", "js": "JS"}[runtime],
            platform,
            writes,
            reads,
            f"{paper_writes:,} / {paper_reads:,}",
        ])
    print_table(
        "Table 5: writes/s and reads/s by runtime × platform "
        "(paper values rightmost)",
        ["runtime", "platform", "writes/s", "reads/s", "paper (w/r)"],
        rows,
    )

    # Shape assertions.
    native_sgx_w, native_sgx_r = measured[("native", "sgx")]
    native_vm_w, native_vm_r = measured[("native", "virtual")]
    js_sgx_w, js_sgx_r = measured[("js", "sgx")]
    js_vm_w, js_vm_r = measured[("js", "virtual")]

    # Virtual beats SGX by roughly the paper's factor on writes…
    assert 1.4 < native_vm_w / native_sgx_w < 2.6
    assert 1.4 < js_vm_w / js_sgx_w < 3.0
    # …and on reads (paper: 1.4× native, 2.4× JS).
    assert 1.2 < native_vm_r / native_sgx_r < 1.8
    assert 1.8 < js_vm_r / js_sgx_r < 3.2
    # The native runtime beats JS by roughly the paper's factor.
    assert 2.5 < native_sgx_w / js_sgx_w < 8.0
    assert 2.5 < native_vm_w / js_vm_w < 8.0
    assert 5.0 < native_sgx_r / js_sgx_r < 15.0  # paper: ~9.7×
    # Reads far outstrip writes everywhere.
    for (runtime, platform), (writes, reads) in measured.items():
        assert reads > 2 * writes, (runtime, platform)


@pytest.mark.parametrize("platform", ["sgx", "snp"])
def test_table5_extension_snp(benchmark, platform):
    """Section 9's future work: AMD SEV-SNP support with 2–8% overhead —
    the reproduction carries an snp platform profile."""
    if platform == "sgx":
        pytest.skip("baseline measured in test_table5")

    def run():
        return _measure_cell("native", "snp")

    writes, _reads = benchmark.pedantic(run, rounds=1, iterations=1)
    virtual_writes = 115_000  # nominal virtual-mode level
    print_table(
        "Extension: AMD SEV-SNP profile (native runtime)",
        ["platform", "writes/s", "vs virtual"],
        [["snp", writes, f"{writes / virtual_writes:.2f}x"]],
    )
    # SNP should sit within ~15% of virtual (paper: 2–8% overhead).
    assert writes > 0.8 * virtual_writes
