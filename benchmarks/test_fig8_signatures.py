"""Figure 8: the cost of signature transactions.

Left/center: with one node and one user and a signature interval of 100,
write response time sits at ~1.2–1.3 ms, spiking to ~2.3 ms on the request
that triggers a signature (the ~1 ms Merkle-root ECDSA signing).
Right: write throughput vs signature interval — signing more often buys
faster commit at the cost of throughput.
"""

from benchmarks.harness import MESSAGE, build_service, print_table, run_logging_workload
from repro.service.client import ServiceClient
from repro.sim.metrics import LatencyRecorder


def _measure_response_times(n_requests=400):
    """One node, one user, closed loop of 1 — per-request response times.

    The time-based signature flush is disabled, matching the paper's
    "most other sources of latency variance removed": signatures fire
    strictly every 100 transactions.
    """
    # Link latency calibrated to the paper's testbed RTT (~1 ms round trip
    # through the HTTP/TLS stack), giving the 1.2–1.3 ms write baseline.
    service = build_service(n_nodes=1, signature_interval=100,
                            signature_flush_time=30.0, seed=8,
                            link_latency=5.3e-4)
    primary = service.primary_node()
    user = service.users[0]
    credentials = {"certificate": user.certificate.to_dict()}
    client = ServiceClient(service.scheduler, service.network,
                           name="fig8-user", identity=user)
    latency = LatencyRecorder()
    for i in range(n_requests):
        sent = service.scheduler.now
        response = client.call(primary.node_id, "/app/write_message",
                               {"id": i, "msg": MESSAGE}, credentials=credentials)
        assert response.ok, response.error
        latency.record(service.scheduler.now, service.scheduler.now - sent)
    return latency


def test_fig8_left_response_time_spikes(benchmark):
    latency = benchmark.pedantic(_measure_response_times, rounds=1, iterations=1)
    values = latency.latencies()
    baseline = sorted(values)[len(values) // 2]
    spikes = [v for v in values if v > baseline * 1.5]
    histogram = latency.histogram(0.0002)
    print_table(
        "Figure 8 (left/center): write response-time distribution (ms)",
        ["bucket (ms)", "requests"],
        [[f"{bucket * 1000:.1f}", count] for bucket, count in histogram.items()],
    )
    print(f"baseline ≈ {baseline * 1000:.2f} ms; "
          f"{len(spikes)} signature spikes ≈ "
          f"{(sum(spikes) / len(spikes)) * 1000:.2f} ms")
    # Paper shape: ~1.2-1.3 ms baseline, ~2.3 ms spike roughly every 100th.
    assert 0.0008 < baseline < 0.0020
    assert len(spikes) == len(values) // 100 or abs(len(spikes) - len(values) / 100) <= 2
    spike_mean = sum(spikes) / len(spikes)
    assert 1.6 * baseline < spike_mean < 3.5 * baseline


SIGNATURE_INTERVALS = [1, 5, 10, 50, 100, 500, 1000]


def _measure_throughput_vs_interval():
    rows = []
    for interval in SIGNATURE_INTERVALS:
        service = build_service(n_nodes=1, signature_interval=interval,
                                seed=300 + interval)
        result = run_logging_workload(
            service, read_ratio=0.0, concurrency=100, warmup=0.04, window=0.1
        )
        rows.append((interval, result.writes_per_second))
    return rows


def test_fig8_right_throughput_vs_signature_interval(benchmark):
    rows = benchmark.pedantic(_measure_throughput_vs_interval, rounds=1, iterations=1)
    print_table(
        "Figure 8 (right): write throughput vs signature interval",
        ["interval (txs)", "writes/s"],
        [[interval, tput] for interval, tput in rows],
    )
    throughput = dict(rows)
    # Monotone-ish growth with the interval, saturating at the top end:
    assert throughput[1] < throughput[10] < throughput[100]
    assert throughput[1000] > 0.9 * throughput[500]
    # Signing every transaction costs several-fold throughput.
    assert throughput[1000] > 3 * throughput[1]
