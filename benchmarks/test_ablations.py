"""Ablation benchmarks for the design choices DESIGN.md calls out.

- Forwarding vs writing directly to the primary (section 4.3 / 7).
- Snapshot join vs full-replay join (section 4.4).
- Secure node-to-node channels on vs off (section 7's DH channels).
- Commit latency vs signature interval (the flip side of Figure 8 right).
"""

from benchmarks.harness import MESSAGE, build_service, print_table, run_logging_workload
from repro.ledger.entry import TxID
from repro.service.client import ServiceClient


class TestForwardingAblation:
    def test_direct_vs_forwarded_writes(self, benchmark):
        """The paper measures with users writing directly to the primary;
        quantify what backup-side forwarding costs instead."""

        def run():
            results = {}
            for mode in ("direct", "forwarded"):
                service = build_service(n_nodes=3, seed=500 + len(mode))
                primary = service.primary_node()
                target = primary if mode == "direct" else service.backup_nodes()[0]
                user = service.users[0]
                credentials = {"certificate": user.certificate.to_dict()}
                client = ServiceClient(service.scheduler, service.network,
                                       name=f"abl-{mode}", identity=user)
                latencies = []
                for i in range(60):
                    sent = service.scheduler.now
                    response = client.call(target.node_id, "/app/write_message",
                                           {"id": i, "msg": MESSAGE},
                                           credentials=credentials)
                    assert response.ok, response.error
                    latencies.append(service.scheduler.now - sent)
                results[mode] = sum(latencies) / len(latencies)
            return results

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Ablation: direct-to-primary vs forwarded writes (mean latency, ms)",
            ["mode", "latency (ms)"],
            [[mode, value * 1000] for mode, value in results.items()],
        )
        # Forwarding adds an extra hop: strictly slower, but same order.
        assert results["forwarded"] > results["direct"]
        assert results["forwarded"] < 3 * results["direct"]


class TestJoinAblation:
    def test_snapshot_join_vs_full_replay(self, benchmark):
        """Snapshot-based join transfers state in O(state) instead of
        O(history) (section 4.4)."""

        def run():
            results = {}
            for mode, snapshot_interval in (("replay", 0), ("snapshot", 50)):
                service = build_service(
                    n_nodes=3, seed=600 + snapshot_interval,
                    snapshot_interval=snapshot_interval, signature_interval=20,
                )
                user = service.users[0]
                credentials = {"certificate": user.certificate.to_dict()}
                client = ServiceClient(service.scheduler, service.network,
                                       name=f"join-abl-{mode}", identity=user)
                primary = service.primary_node()
                # Overwrite one hot key many times: history ≫ state.
                for i in range(600):
                    client.call(primary.node_id, "/app/write_message",
                                {"id": i % 10, "msg": MESSAGE},
                                credentials=credentials)
                service.run(0.3)
                start = service.scheduler.now
                node = service.add_node()
                service.run_until(
                    lambda: node.ledger.last_seqno
                    >= service.primary_node().ledger.last_seqno,
                    timeout=30.0,
                )
                results[mode] = {
                    "join_time": service.scheduler.now - start,
                    "entries_replayed": node.ledger.last_seqno - node.ledger.base_seqno,
                }
            return results

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Ablation: node join — full replay vs snapshot (section 4.4)",
            ["mode", "join time (s)", "entries replayed"],
            [[mode, row["join_time"], row["entries_replayed"]]
             for mode, row in results.items()],
        )
        assert results["snapshot"]["entries_replayed"] < \
            0.5 * results["replay"]["entries_replayed"]


class TestChannelAblation:
    def test_secure_channels_overhead(self, benchmark):
        """Sealed node-to-node channels vs plaintext replication: the
        confidentiality mechanism should not change throughput shape
        (costs are charged in simulated time either way)."""

        def run():
            results = {}
            for secure in (True, False):
                service = build_service(n_nodes=3, seed=700 + secure,
                                        secure_channels=secure)
                result = run_logging_workload(
                    service, read_ratio=0.0, concurrency=100,
                    warmup=0.04, window=0.08,
                )
                results[secure] = result.writes_per_second
            return results

        results = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Ablation: secure channels on/off (writes/s)",
            ["secure channels", "writes/s"],
            [[str(flag), value] for flag, value in results.items()],
        )
        assert results[True] > 0.9 * results[False]


class TestCommitLatencyAblation:
    def test_commit_latency_vs_signature_interval(self, benchmark):
        """The other half of Figure 8's tradeoff: larger signature
        intervals mean longer waits for global commit."""

        def run():
            rows = []
            for interval in (1, 10, 100):
                service = build_service(n_nodes=3, signature_interval=interval,
                                        seed=800 + interval)
                primary = service.primary_node()
                user = service.users[0]
                credentials = {"certificate": user.certificate.to_dict()}
                client = ServiceClient(service.scheduler, service.network,
                                       name=f"commit-abl-{interval}", identity=user)
                samples = []
                for i in range(20):
                    response = client.call(primary.node_id, "/app/write_message",
                                           {"id": i, "msg": MESSAGE},
                                           credentials=credentials)
                    txid = TxID.parse(response.txid)
                    sent = service.scheduler.now
                    service.run_until(
                        lambda: primary.consensus.commit_seqno >= txid.seqno,
                        timeout=10.0,
                    )
                    samples.append(service.scheduler.now - sent)
                    # Keep background traffic flowing so intervals fill up.
                    for j in range(3):
                        client.send(primary.node_id, "/app/write_message",
                                    {"id": 1000 + i * 3 + j, "msg": MESSAGE},
                                    credentials)
                rows.append((interval, sum(samples) / len(samples)))
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table(
            "Ablation: time to global commit vs signature interval",
            ["interval (txs)", "mean commit latency (ms)"],
            [[interval, latency * 1000] for interval, latency in rows],
        )
        latencies = dict(rows)
        # Signing every transaction commits fastest.
        assert latencies[1] <= latencies[100]
