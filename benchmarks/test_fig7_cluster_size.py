"""Figure 7 (left & center): throughput vs number of CCF nodes.

Paper's findings: write throughput stays ≥65 K req/s and declines slightly
as nodes are added (the primary does more replication work); read
throughput *scales* with node count because any node serves reads.
"""

from benchmarks.harness import build_service, print_table, run_logging_workload

NODE_COUNTS = [1, 3, 5, 7]


def _measure(read_ratio: float):
    rows = []
    for n in NODE_COUNTS:
        service = build_service(n_nodes=n, seed=100 + n)
        # Reads are far cheaper per request, so a shorter window already
        # collects tens of thousands of samples per point.
        window = 0.15 if read_ratio == 0.0 else 0.05
        result = run_logging_workload(
            service,
            read_ratio=read_ratio,
            concurrency=100 if read_ratio == 0.0 else 160 * n,
            warmup=0.05 if read_ratio == 0.0 else 0.02,
            window=window,
        )
        rows.append((n, result))
    return rows


def test_fig7_left_write_throughput(benchmark):
    rows = benchmark.pedantic(lambda: _measure(read_ratio=0.0), rounds=1, iterations=1)
    table = [[n, result.writes_per_second] for n, result in rows]
    print_table(
        "Figure 7 (left): write throughput vs cluster size",
        ["nodes", "writes/s"],
        table,
    )
    # Shape checks: high absolute throughput, mild monotone decline.
    throughputs = {n: result.writes_per_second for n, result in rows}
    assert throughputs[1] > 55_000
    assert throughputs[3] > 50_000
    assert throughputs[1] >= throughputs[7] * 0.95  # declines (or flat) with size
    assert throughputs[7] > 0.75 * throughputs[1]  # …but only slightly


def test_fig7_center_read_throughput(benchmark):
    rows = benchmark.pedantic(lambda: _measure(read_ratio=1.0), rounds=1, iterations=1)
    table = [[n, result.reads_per_second] for n, result in rows]
    print_table(
        "Figure 7 (center): read throughput vs cluster size",
        ["nodes", "reads/s"],
        table,
    )
    throughputs = {n: result.reads_per_second for n, result in rows}
    # Reads scale with the number of nodes (every node serves them).
    assert throughputs[3] > 1.8 * throughputs[1]
    assert throughputs[5] > 1.4 * throughputs[3]
    assert throughputs[7] > throughputs[5]
