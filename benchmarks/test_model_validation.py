"""Simulator validation: measured throughput vs analytic (MVA) prediction.

A credibility check for the whole evaluation: the discrete-event simulator
and closed-form queueing theory must agree on every operating point, or the
performance results cannot be trusted.
"""

from benchmarks.harness import build_service, print_table, run_logging_workload
from repro.perf.costmodel import CostModel
from repro.perf.queueing import predict_signature_throughput_factor, predict_write_throughput

CONCURRENCIES = [5, 20, 100, 400]
ROUND_TRIP = 0.00056  # two traversals of the default link (+ mean jitter)


def _measure(concurrency: int) -> float:
    service = build_service(n_nodes=3, seed=1500 + concurrency)
    return run_logging_workload(
        service, read_ratio=0.0, concurrency=concurrency,
        warmup=0.04, window=0.08,
    ).writes_per_second


def test_simulator_vs_mva(benchmark):
    def run():
        model = CostModel(runtime="native", platform="sgx")
        rows = []
        for concurrency in CONCURRENCIES:
            measured = _measure(concurrency)
            predicted = predict_write_throughput(
                model, n_clients=concurrency, round_trip=ROUND_TRIP, num_backups=2
            ).throughput
            rows.append((concurrency, measured, predicted, measured / predicted))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Validation: simulated write throughput vs mean-value analysis",
        ["clients", "simulated/s", "predicted/s", "ratio"],
        [[c, m, p, f"{r:.2f}"] for c, m, p, r in rows],
    )
    for concurrency, measured, predicted, ratio in rows:
        assert 0.78 < ratio < 1.22, (
            f"simulator diverges from theory at {concurrency} clients: "
            f"{measured:.0f}/s vs {predicted:.0f}/s"
        )


def test_signature_tradeoff_vs_theory(benchmark):
    """Figure 8 (right) from theory: the analytic amortization factor
    predicts the measured throughput ratio across signature intervals."""

    def run():
        model = CostModel(runtime="native", platform="sgx")
        rows = []
        for interval in (1, 10, 100):
            service = build_service(n_nodes=1, signature_interval=interval,
                                    seed=1600 + interval)
            measured = run_logging_workload(
                service, read_ratio=0.0, concurrency=100,
                warmup=0.04, window=0.08,
            ).writes_per_second
            predicted_factor = predict_signature_throughput_factor(interval, model)
            rows.append((interval, measured, predicted_factor))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base_capacity = rows[-1][1] / rows[-1][2]  # interval-100 point as anchor
    print_table(
        "Validation: signature-interval tradeoff vs analytic amortization",
        ["interval", "simulated/s", "predicted/s"],
        [[i, m, base_capacity * f] for i, m, f in rows],
    )
    for interval, measured, factor in rows:
        predicted = base_capacity * factor
        assert 0.7 < measured / predicted < 1.3, (interval, measured, predicted)
