"""Table 2: possible votes and primaries for the Figure 5 (left) ledgers.

Rebuilds five ledgers whose last signature transactions match Figure 5,
runs the protocol's actual voting rule between every (voter, candidate)
pair, and regenerates the table — including the "could win?" column.
"""

from benchmarks.harness import print_table
from repro.consensus.messages import RequestVote, RequestVoteResponse
from repro.crypto.ecdsa import SigningKey
from repro.kv.tx import WriteSet
from repro.ledger.entry import TxID
from repro.ledger.ledger import Ledger
from repro.ledger.secrets import LedgerSecret, LedgerSecretStore

# Figure 5 (left), reconstructed: each node's sequence of (view, is_signature).
# Underlined IDs in the figure are signature transactions.
FIGURE5_LEDGERS = {
    "n0": [(1, False), (1, True)],                                  # last sig 1.2
    "n1": [(1, False), (1, True), (2, True)],                        # last sig 2.3
    "n2": [(1, False), (1, True), (2, True), (3, True), (3, False), (3, True)],  # 3.6
    "n3": [(1, False), (1, True), (2, True), (3, True)],             # last sig 3.4
    "n4": [(1, False), (1, True), (2, True), (3, True), (3, False)],  # last sig 3.4
}

# The paper's Table 2.
EXPECTED_VOTES = {
    "n0": {"n0"},
    "n1": {"n0", "n1"},
    "n2": {"n0", "n1", "n2", "n3", "n4"},
    "n3": {"n0", "n1", "n3", "n4"},
    "n4": {"n0", "n1", "n3", "n4"},
}
EXPECTED_COULD_WIN = {"n0": False, "n1": False, "n2": True, "n3": True, "n4": True}


def _build_ledger(shape) -> Ledger:
    ledger = Ledger(LedgerSecretStore(LedgerSecret.generate(b"fig5")))
    key = SigningKey.generate(b"fig5-signer")
    for view, is_signature in shape:
        if is_signature:
            ledger.append(ledger.build_signature_entry(view, "signer", key))
        else:
            write_set = WriteSet()
            write_set.put("m", ledger.last_seqno, "x")
            ledger.append(ledger.build_entry(view, write_set))
    return ledger


def _would_grant(voter_ledger: Ledger, candidate_ledger: Ledger) -> bool:
    """The protocol's on_request_vote criterion, run through a real
    ConsensusNode instance over the constructed ledgers."""
    from repro.consensus.raft import ConsensusNode
    from repro.sim.scheduler import Scheduler

    responses = []

    class Host:
        def send_consensus_message(self, to, message):
            responses.append(message)

    voter = ConsensusNode(
        node_id="voter",
        ledger=voter_ledger,
        scheduler=Scheduler(),
        host=Host(),
        initial_nodes={"voter", "candidate"},
    )
    voter.view = 3
    voter.on_request_vote(RequestVote(
        view=4,
        candidate_id="candidate",
        last_signature_txid=candidate_ledger.last_signature_txid(),
    ))
    vote = [m for m in responses if isinstance(m, RequestVoteResponse)][-1]
    return vote.granted


def test_table2(benchmark):
    def compute():
        ledgers = {name: _build_ledger(shape) for name, shape in FIGURE5_LEDGERS.items()}
        votes = {}
        for candidate in ledgers:
            votes[candidate] = {
                voter
                for voter in ledgers
                if voter == candidate
                or _would_grant(ledgers[voter], ledgers[candidate])
            }
        return ledgers, votes

    ledgers, votes = benchmark.pedantic(compute, rounds=1, iterations=1)
    majority = len(ledgers) // 2 + 1
    rows = []
    for candidate in sorted(ledgers):
        marks = ["✓" if voter in votes[candidate] else "✗" for voter in sorted(ledgers)]
        could_win = "✓" if len(votes[candidate]) >= majority else "✗"
        rows.append([candidate, *marks, could_win])
    print_table(
        "Table 2: possible votes per candidate (Figure 5 ledgers)",
        ["candidate", *sorted(ledgers), "could win?"],
        rows,
    )
    for candidate, expected in EXPECTED_VOTES.items():
        assert votes[candidate] == expected, candidate
    for candidate, expected in EXPECTED_COULD_WIN.items():
        assert (len(votes[candidate]) >= majority) == expected, candidate
    # Sanity: the last-signature txids match the reconstruction.
    assert ledgers["n2"].last_signature_txid() == TxID(3, 6)
    assert ledgers["n3"].last_signature_txid() == TxID(3, 4)
    assert ledgers["n4"].last_signature_txid() == TxID(3, 4)
