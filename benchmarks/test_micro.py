"""Microbenchmarks of the substrate data structures and crypto.

These use pytest-benchmark's statistics (wall-clock): they measure the
reproduction's own building blocks — the Merkle tree, the CHAMP map, the
AEAD suites, ECDSA, write-set serialization, and the JS engine vs native
handler execution (the mechanism behind Table 5's runtime gap).
"""

import random

from repro.app.jsapp.interp import Interpreter
from repro.app.jsapp.parser import parse
from repro.crypto import ec, fastec
from repro.crypto.aead import AEADKey, nonce_from_counter
from repro.crypto.ecdsa import SigningKey, clear_verify_memo, set_verify_memo
from repro.crypto.fastaead import FastAEADKey
from repro.crypto.merkle import MerkleTree
from repro.kv.champ import ChampMap
from repro.kv.tx import WriteSet
from repro.perf.costmodel import CostModel


class TestMerkle:
    def test_append_throughput(self, benchmark):
        def append_1000():
            tree = MerkleTree()
            for i in range(1000):
                tree.append(i.to_bytes(8, "big"))
            return tree.root()

        benchmark(append_1000)

    def test_root_computation(self, benchmark):
        tree = MerkleTree()
        for i in range(10_000):
            tree.append(i.to_bytes(8, "big"))
        benchmark(tree.root)

    def test_proof_generation(self, benchmark):
        tree = MerkleTree()
        for i in range(10_000):
            tree.append(i.to_bytes(8, "big"))
        rng = random.Random(0)
        benchmark(lambda: tree.proof(rng.randrange(9_000), 10_000))

    def test_proof_verification(self, benchmark):
        tree = MerkleTree()
        for i in range(1000):
            tree.append(i.to_bytes(8, "big"))
        proof = tree.proof(123, 1000)
        root = tree.root()
        benchmark(lambda: proof.verify((123).to_bytes(8, "big"), root))

    def test_historical_root_warm(self, benchmark):
        """``root_at`` against a fixed past size once the spine cache holds
        the ragged subrange roots — the receipt-issuing hot path."""
        tree = MerkleTree()
        for i in range(10_000):
            tree.append(i.to_bytes(8, "big"))
        tree.root_at(9_995)  # freeze the spine for this size
        benchmark(lambda: tree.root_at(9_995))

    def test_historical_proof_warm(self, benchmark):
        """Historical inclusion proofs over a warm cache: O(log n) node
        hashes instead of recomputing the ragged spine each call."""
        tree = MerkleTree()
        for i in range(10_000):
            tree.append(i.to_bytes(8, "big"))
        tree.proof(123, 9_995)  # warm subtree + spine caches
        benchmark(lambda: tree.proof(123, 9_995))

    def test_batch_extend(self, benchmark):
        """``extend`` amortizes per-append overhead during recovery replay."""
        data = [i.to_bytes(8, "big") for i in range(1000)]

        def extend_1000():
            tree = MerkleTree()
            tree.extend(data)
            return tree.root()

        benchmark(extend_1000)


class TestChamp:
    def test_insert_1000(self, benchmark):
        def build():
            m = ChampMap.empty()
            for i in range(1000):
                m = m.set(f"key-{i}", i)
            return m

        benchmark(build)

    def test_lookup(self, benchmark):
        m = ChampMap.from_dict({f"key-{i}": i for i in range(10_000)})
        rng = random.Random(0)
        benchmark(lambda: m.get(f"key-{rng.randrange(10_000)}"))

    def test_persistent_update(self, benchmark):
        m = ChampMap.from_dict({f"key-{i}": i for i in range(10_000)})
        benchmark(lambda: m.set("key-5000", -1))

    def test_persistent_bulk_build(self, benchmark):
        """The pre-PR10 bulk build: one path copy per insert."""
        pairs = [(f"key-{i}", i) for i in range(10_000)]

        def build():
            m = ChampMap.empty()
            for key, value in pairs:
                m = m.set(key, value)
            return m

        benchmark(build)

    def test_transient_bulk_build(self, benchmark):
        """``from_items`` routes through a transient builder: one ownership
        token for the whole build, in-place list mutation per insert."""
        pairs = [(f"key-{i}", i) for i in range(10_000)]
        benchmark(lambda: ChampMap.from_items(pairs))

    def test_transient_batch_update(self, benchmark):
        """A 512-write batch against a 10k map through the builder — the
        ``apply_write_set`` fast-path shape."""
        m = ChampMap.from_dict({f"key-{i}": i for i in range(10_000)})
        batch = [(f"key-{i * 17 % 12_000}", -i) for i in range(512)]

        def apply_batch():
            builder = m.transient()
            for key, value in batch:
                builder.set(key, value)
            return builder.freeze()

        benchmark(apply_batch)


class TestCrypto:
    def test_fast_aead_seal_small(self, benchmark):
        key = FastAEADKey.generate(b"bench")
        nonce = nonce_from_counter(1)
        benchmark(lambda: key.seal(nonce, b"x" * 64))

    def test_chacha20poly1305_seal_small(self, benchmark):
        key = AEADKey.generate(b"bench")
        nonce = nonce_from_counter(1)
        benchmark(lambda: key.seal(nonce, b"x" * 64))

    def test_ecdsa_sign(self, benchmark):
        key = SigningKey.generate(b"bench")
        benchmark(lambda: key.sign(b"merkle root"))

    def test_ecdsa_verify(self, benchmark):
        key = SigningKey.generate(b"bench")
        signature = key.sign(b"merkle root")
        public = key.public_key
        benchmark(lambda: public.verify(signature, b"merkle root"))


class TestFrameSealing:
    """Per-message AEAD seals vs one coalesced frame (PR 10)."""

    def _pair(self):
        from repro.crypto.x25519 import DHPrivateKey
        from repro.net.channels import NodeChannels

        a = NodeChannels("alpha", DHPrivateKey.generate(b"bench-frame-a"))
        b = NodeChannels("beta", DHPrivateKey.generate(b"bench-frame-b"))
        a.establish("beta", b.public)
        b.establish("alpha", a.public)
        return a, b

    def test_seal_16_per_message(self, benchmark):
        a, _b = self._pair()
        payloads = [bytes([i]) * 64 for i in range(16)]
        benchmark(lambda: [a.seal("beta", p) for p in payloads])

    def test_seal_16_as_frame(self, benchmark):
        a, _b = self._pair()
        payloads = [bytes([i]) * 64 for i in range(16)]
        benchmark(lambda: a.seal_frame("beta", payloads))


class TestFastPath:
    """Reference ladder vs the fastec fast paths (comb, wNAF, verify memo).

    These report *host* wall-clock only; the simulated-time charge for the
    same operations is fixed by the CostModel and deliberately unaffected
    (see ``test_wall_clock_vs_simulated_time``).
    """

    SCALAR = 0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721

    def test_reference_scalar_mult(self, benchmark):
        benchmark(lambda: ec.scalar_mult(self.SCALAR, ec.GENERATOR))

    def test_comb_generator_mult(self, benchmark):
        benchmark(lambda: fastec.generator_mult(self.SCALAR))

    def test_wnaf_point_mult(self, benchmark):
        point = ec.scalar_mult(7777, ec.GENERATOR)
        fastec.wnaf_mult(2, point)  # warm the per-point tables
        benchmark(lambda: fastec.wnaf_mult(self.SCALAR, point))

    def test_double_scalar_mult(self, benchmark):
        point = ec.scalar_mult(7777, ec.GENERATOR)
        fastec.double_scalar_mult(2, 3, point)  # warm the per-point tables
        benchmark(lambda: fastec.double_scalar_mult(self.SCALAR, 12345, point))

    def test_ecdsa_verify_cold(self, benchmark):
        """Verify with the memo disabled: the real double-scalar cost."""
        key = SigningKey.generate(b"bench-cold")
        signature = key.sign(b"merkle root")
        public = key.public_key
        previous = set_verify_memo(False)
        try:
            benchmark(lambda: public.verify(signature, b"merkle root"))
        finally:
            set_verify_memo(previous)

    def test_ecdsa_verify_memo_hit(self, benchmark):
        """Repeated verification of one (key, digest, signature) triple."""
        key = SigningKey.generate(b"bench-memo")
        signature = key.sign(b"merkle root")
        public = key.public_key
        clear_verify_memo()
        public.verify(signature, b"merkle root")  # populate
        benchmark(lambda: public.verify(signature, b"merkle root"))

    def test_wall_clock_vs_simulated_time(self, benchmark, capsys):
        """Host wall-clock next to the simulated-time charge for the same op.

        The CostModel charge is the number the simulation schedules with; it
        must not move when the host gets faster, or seeded traces would
        diverge across machines. This test reports both so a reader can see
        the two clocks side by side — and asserts the simulated charge is
        still the seed value the fast paths are forbidden to touch.
        """
        model = CostModel()
        assert model.signature_cost == 1.0e-3
        assert model.verify_cost == 1.2e-3

        key = SigningKey.generate(b"bench-two-clocks")
        signature = key.sign(b"merkle root")
        public = key.public_key
        previous = set_verify_memo(False)
        try:
            stats = benchmark(lambda: public.verify(signature, b"merkle root"))
        finally:
            set_verify_memo(previous)
        del stats
        host_s = benchmark.stats.stats.mean
        with capsys.disabled():
            print(
                f"\n[two-clocks] ecdsa_verify: host wall-clock "
                f"{host_s * 1e3:.3f} ms/op, simulated charge "
                f"{model.verify_cost * 1e3:.3f} ms/op (fixed by CostModel)"
            )


class TestSerialization:
    def test_write_set_encode(self, benchmark):
        ws = WriteSet()
        for i in range(20):
            ws.put("records", i, {"balance": i * 100, "owner": f"user-{i}"})
        benchmark(ws.encode)

    def test_write_set_decode(self, benchmark):
        ws = WriteSet()
        for i in range(20):
            ws.put("records", i, {"balance": i * 100, "owner": f"user-{i}"})
        data = ws.encode()
        benchmark(lambda: WriteSet.decode(data))


class TestRuntimeGap:
    """The native-vs-JS execution gap that drives Table 5's rows."""

    NATIVE_SOURCE = None

    def test_native_handler(self, benchmark):
        def handler(body):
            return {"id": body["id"], "msg": body["msg"]}

        benchmark(lambda: handler({"id": 1, "msg": "x" * 20}))

    def test_js_handler(self, benchmark):
        ast = parse("""
        function handle(request) {
            var id = request.body.id;
            var msg = request.body.msg;
            return { id: id, msg: msg };
        }
        """)

        def run():
            interp = Interpreter()
            interp.run_ast(ast)
            return interp.call_function("handle", {"body": {"id": 1, "msg": "x" * 20}})

        benchmark(run)
