"""Microbenchmarks of the substrate data structures and crypto.

These use pytest-benchmark's statistics (wall-clock): they measure the
reproduction's own building blocks — the Merkle tree, the CHAMP map, the
AEAD suites, ECDSA, write-set serialization, and the JS engine vs native
handler execution (the mechanism behind Table 5's runtime gap).
"""

import random

from repro.app.jsapp.interp import Interpreter
from repro.app.jsapp.parser import parse
from repro.crypto.aead import AEADKey, nonce_from_counter
from repro.crypto.ecdsa import SigningKey
from repro.crypto.fastaead import FastAEADKey
from repro.crypto.merkle import MerkleTree
from repro.kv.champ import ChampMap
from repro.kv.tx import WriteSet


class TestMerkle:
    def test_append_throughput(self, benchmark):
        def append_1000():
            tree = MerkleTree()
            for i in range(1000):
                tree.append(i.to_bytes(8, "big"))
            return tree.root()

        benchmark(append_1000)

    def test_root_computation(self, benchmark):
        tree = MerkleTree()
        for i in range(10_000):
            tree.append(i.to_bytes(8, "big"))
        benchmark(tree.root)

    def test_proof_generation(self, benchmark):
        tree = MerkleTree()
        for i in range(10_000):
            tree.append(i.to_bytes(8, "big"))
        rng = random.Random(0)
        benchmark(lambda: tree.proof(rng.randrange(9_000), 10_000))

    def test_proof_verification(self, benchmark):
        tree = MerkleTree()
        for i in range(1000):
            tree.append(i.to_bytes(8, "big"))
        proof = tree.proof(123, 1000)
        root = tree.root()
        benchmark(lambda: proof.verify((123).to_bytes(8, "big"), root))


class TestChamp:
    def test_insert_1000(self, benchmark):
        def build():
            m = ChampMap.empty()
            for i in range(1000):
                m = m.set(f"key-{i}", i)
            return m

        benchmark(build)

    def test_lookup(self, benchmark):
        m = ChampMap.from_dict({f"key-{i}": i for i in range(10_000)})
        rng = random.Random(0)
        benchmark(lambda: m.get(f"key-{rng.randrange(10_000)}"))

    def test_persistent_update(self, benchmark):
        m = ChampMap.from_dict({f"key-{i}": i for i in range(10_000)})
        benchmark(lambda: m.set("key-5000", -1))


class TestCrypto:
    def test_fast_aead_seal_small(self, benchmark):
        key = FastAEADKey.generate(b"bench")
        nonce = nonce_from_counter(1)
        benchmark(lambda: key.seal(nonce, b"x" * 64))

    def test_chacha20poly1305_seal_small(self, benchmark):
        key = AEADKey.generate(b"bench")
        nonce = nonce_from_counter(1)
        benchmark(lambda: key.seal(nonce, b"x" * 64))

    def test_ecdsa_sign(self, benchmark):
        key = SigningKey.generate(b"bench")
        benchmark(lambda: key.sign(b"merkle root"))

    def test_ecdsa_verify(self, benchmark):
        key = SigningKey.generate(b"bench")
        signature = key.sign(b"merkle root")
        public = key.public_key
        benchmark(lambda: public.verify(signature, b"merkle root"))


class TestSerialization:
    def test_write_set_encode(self, benchmark):
        ws = WriteSet()
        for i in range(20):
            ws.put("records", i, {"balance": i * 100, "owner": f"user-{i}"})
        benchmark(ws.encode)

    def test_write_set_decode(self, benchmark):
        ws = WriteSet()
        for i in range(20):
            ws.put("records", i, {"balance": i * 100, "owner": f"user-{i}"})
        data = ws.encode()
        benchmark(lambda: WriteSet.decode(data))


class TestRuntimeGap:
    """The native-vs-JS execution gap that drives Table 5's rows."""

    NATIVE_SOURCE = None

    def test_native_handler(self, benchmark):
        def handler(body):
            return {"id": body["id"], "msg": body["msg"]}

        benchmark(lambda: handler({"id": 1, "msg": "x" * 20}))

    def test_js_handler(self, benchmark):
        ast = parse("""
        function handle(request) {
            var id = request.body.id;
            var msg = request.body.msg;
            return { id: id, msg: msg };
        }
        """)

        def run():
            interp = Interpreter()
            interp.run_ast(ast)
            return interp.call_function("handle", {"body": {"id": 1, "msg": "x" * 20}})

        benchmark(run)
