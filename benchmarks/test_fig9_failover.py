"""Figure 9: availability during primary failure and node replacement.

Two users drive the service: one sends writes to the primary, one sends
reads to a backup. At A the primary is killed — writes stop, reads continue
(and even speed up, as the backup stops serving the primary); a new primary
is elected and writes resume. The operator then joins a replacement node
(B), members propose (C) and accept (D) trusting it and removing the dead
node, and the reconfiguration completes (E), restoring fault tolerance.

Also regenerates the Listing 2 ledger excerpt from the same run.
"""

import json

from benchmarks.harness import MESSAGE, build_service, print_table
from repro.kv.serialization import json_safe
from repro.node import maps
from repro.service.client import ClosedLoopClient, ServiceClient
from repro.service.operator import Operator
from repro.sim.metrics import ThroughputRecorder

KILL_AT = 0.5
TOTAL = 3.0
BUCKET = 0.1

_CACHED_RUN = None


def _run_failover_experiment():
    """Run once per session; the timeline and Listing 2 tests share it."""
    global _CACHED_RUN
    if _CACHED_RUN is not None:
        return _CACHED_RUN
    _CACHED_RUN = _run_failover_experiment_uncached()
    return _CACHED_RUN


def _run_failover_experiment_uncached():
    service = build_service(n_nodes=3, signature_interval=20, seed=77)
    primary = service.primary_node()
    backup = service.backup_nodes()[0]
    user = service.users[0]
    credentials = {"certificate": user.certificate.to_dict()}

    write_tput = ThroughputRecorder()
    read_tput = ThroughputRecorder()
    backups = [n.node_id for n in service.backup_nodes()]
    writer_endpoint = ServiceClient(service.scheduler, service.network,
                                    name="fig9-writer", identity=user)
    writer = ClosedLoopClient(
        writer_endpoint, primary.node_id,
        lambda i: ("/app/write_message", {"id": i % 500, "msg": MESSAGE}, credentials),
        concurrency=50, throughput=write_tput, retry_timeout=0.15,
        fallback_nodes=backups,
    )
    reader_endpoint = ServiceClient(service.scheduler, service.network,
                                    name="fig9-reader", identity=user)
    # Pre-populate the read key.
    reader_endpoint.call(primary.node_id, "/app/write_message",
                         {"id": 99999, "msg": MESSAGE}, credentials=credentials)
    reader = ClosedLoopClient(
        reader_endpoint, backup.node_id,
        lambda i: ("/app/read_message", {"id": 99999}, credentials),
        concurrency=50, throughput=read_tput, retry_timeout=0.15,
    )
    start = service.scheduler.now
    writer.start()
    reader.start()

    events = []
    service.run(KILL_AT)
    events.append(("A: primary killed", service.scheduler.now - start))
    service.kill_node(primary.node_id)
    service.run_until(lambda: service.primary_node() is not None, timeout=10.0)
    events.append(("primary elected", service.scheduler.now - start))

    operator = Operator(service)
    _node, timeline = operator.replace_node(primary.node_id)
    for name, t in timeline.events:
        label = {"failure_detected": None, "joined": "B: new node joined",
                 "proposal_submitted": "C: proposal submitted",
                 "proposal_accepted": "D: proposal accepted",
                 "reconfiguration_complete": "E: reconfiguration complete"}[name]
        if label:
            events.append((label, t - start))

    remaining = TOTAL - (service.scheduler.now - start)
    if remaining > 0:
        service.run(remaining)
    writer.stop()
    reader.stop()

    write_series = write_tput.series(start, start + TOTAL, BUCKET)
    read_series = read_tput.series(start, start + TOTAL, BUCKET)
    ledger = service.primary_node().ledger
    return write_series, read_series, events, ledger


def test_fig9_availability_timeline(benchmark):
    write_series, read_series, events, ledger = benchmark.pedantic(
        _run_failover_experiment, rounds=1, iterations=1
    )
    rows = [
        [f"{wt:.1f}", w, r]
        for (wt, w), (_rt, r) in zip(write_series, read_series)
    ]
    print_table(
        "Figure 9: throughput timeline during primary failure & replacement",
        ["t (s)", "writes/s", "reads/s"],
        rows,
    )
    print("events:")
    for label, t in events:
        print(f"  {label} at t={t:.2f}s")

    kill_index = int(KILL_AT / BUCKET)
    writes = [w for _t, w in write_series]
    reads = [r for _t, r in read_series]
    # Before the kill: both flows active.
    assert writes[kill_index - 1] > 0
    assert reads[kill_index - 1] > 0
    # The kill produces a write outage (the election window falls somewhere
    # in the next few buckets), while reads keep flowing throughout.
    dip = min(writes[kill_index:kill_index + 3])
    assert dip < 0.3 * writes[kill_index - 1]
    assert min(reads[kill_index:kill_index + 3]) > 0.4 * reads[kill_index - 1]
    # Writes resume by the end of the window.
    recovery = [w for w in writes[kill_index + 2:] if w > 0.5 * writes[kill_index - 1]]
    assert recovery, "writes never resumed after failover"
    # Fault tolerance restored: 3-node configuration again (E happened).
    assert any(label.startswith("E") for label, _t in events)


def test_listing2_ledger_excerpt(benchmark):
    """Regenerate the Listing 2 excerpt: the governance key updates that
    replace the failed node, straight from a real run's ledger."""
    _w, _r, _events, ledger = benchmark.pedantic(
        _run_failover_experiment, rounds=1, iterations=1
    )
    interesting = (maps.NODES_INFO, maps.PROPOSALS, maps.PROPOSALS_INFO)
    statuses = []
    print("\n=== Listing 2: governance updates on the ledger ===")
    for entry in ledger.entries():
        rows = {
            name: updates for name, updates in entry.public_writes.updates.items()
            if name in interesting
        }
        if not rows:
            continue
        print(f"txid {entry.txid}:")
        for map_name, updates in rows.items():
            print(f"  map {map_name}:")
            for key, value in updates.items():
                rendered = json.dumps(json_safe(value), default=str)
                if len(rendered) > 100:
                    rendered = rendered[:97] + "..."
                print(f"    {key}: {rendered}")
                if map_name == maps.NODES_INFO and isinstance(value, dict):
                    statuses.append((key, value.get("status")))
    # The Listing 2 lifecycle is present and ordered.
    new_nodes = [n for n, s in statuses if s == "Pending"]
    assert new_nodes, "expected a Pending join record"
    replacement = new_nodes[-1]
    sequence = [s for n, s in statuses if n == replacement]
    assert sequence[:2] == ["Pending", "Trusted"]
    retired_nodes = [n for n, s in statuses if s == "Retired"]
    assert retired_nodes, "expected the failed node to be Retired"
