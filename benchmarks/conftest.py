"""Benchmark-suite configuration.

Figures/tables print their reproduced series to stdout; run with
``pytest benchmarks/ --benchmark-only -s`` (or tee the output) to see them.
"""

import sys
import os

# Make `from benchmarks.harness import …` work when pytest is invoked on
# the benchmarks directory directly.
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
