"""Extension experiment: write-outage distribution under primary failure.

Section 6.3 claims high availability through majority quorums and fast
elections. This bench kills the primary across many seeds and measures the
write-outage duration (last successful write before the kill → first
successful write after), giving the availability distribution behind
Figure 9's single timeline.
"""

from benchmarks.harness import MESSAGE, build_service, print_table
from repro.service.client import ClosedLoopClient, ServiceClient
from repro.sim.metrics import ThroughputRecorder

SEEDS = [1, 2, 3, 4, 5]
KILL_AT = 0.25


def _measure_outage(seed: int) -> float:
    service = build_service(n_nodes=3, signature_interval=20, seed=1000 + seed)
    primary = service.primary_node()
    user = service.users[0]
    credentials = {"certificate": user.certificate.to_dict()}
    endpoint = ServiceClient(service.scheduler, service.network,
                             name=f"avail-{seed}", identity=user)
    throughput = ThroughputRecorder()
    client = ClosedLoopClient(
        endpoint, primary.node_id,
        lambda i: ("/app/write_message", {"id": i % 100, "msg": MESSAGE}, credentials),
        concurrency=20, throughput=throughput,
        fallback_nodes=[n.node_id for n in service.backup_nodes()],
        retry_timeout=0.1,
    )
    client.start()
    service.run(KILL_AT)
    kill_time = service.scheduler.now
    service.kill_node(primary.node_id)
    service.run(1.6)
    client.stop()
    before = [t for t in throughput.events if t <= kill_time]
    after = [t for t in throughput.events if t > kill_time]
    assert before and after, f"seed {seed}: writes never resumed"
    return after[0] - before[-1]


def test_write_outage_distribution(benchmark):
    outages = benchmark.pedantic(
        lambda: [_measure_outage(seed) for seed in SEEDS], rounds=1, iterations=1
    )
    outages_sorted = sorted(outages)
    print_table(
        f"Extension: write-outage duration on primary failure ({len(SEEDS)} seeds)",
        ["statistic", "outage (s)"],
        [
            ["min", outages_sorted[0]],
            ["median", outages_sorted[len(outages_sorted) // 2]],
            ["max", outages_sorted[-1]],
        ],
    )
    # Every outage is bounded by a small multiple of the election timeout
    # (0.15–0.30 s) plus client retry/probe time.
    assert all(outage < 1.5 for outage in outages)
    # And elections genuinely take an election-timeout-scale pause.
    assert all(outage > 0.05 for outage in outages)
