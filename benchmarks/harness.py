"""Shared benchmark harness.

Every benchmark builds a full simulated service (real crypto, real
consensus, simulated time) and drives it with the paper's workload: the
logging application under closed-loop clients (section 7, Experiment
Setup). Reported numbers are **simulated-time** throughput/latency — stable
across host machines; see DESIGN.md for the calibration against Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.app.jsapp.jsapp import build_js_app
from repro.app.logging_app import build_logging_app
from repro.node.config import NodeConfig
from repro.service.client import ClosedLoopClient, ServiceClient
from repro.service.service import CCFService, ServiceSetup
from repro.sim.metrics import LatencyRecorder, ThroughputRecorder

MESSAGE = "payload-20-chars-xyz"  # "messages are private and 20 characters"


def build_service(
    n_nodes: int = 3,
    runtime: str = "native",
    platform: str = "sgx",
    signature_interval: int = 100,
    signature_flush_time: float = 0.05,
    worker_threads: int = 10,
    seed: int = 42,
    snapshot_interval: int = 0,
    secure_channels: bool = True,
    link_latency: float | None = None,
    batch_execution: bool = False,
    read_offload: bool = False,
) -> CCFService:
    """Bootstrap a service matching the paper's experiment setup."""
    config = NodeConfig(
        platform=platform,
        runtime=runtime,
        worker_threads=worker_threads,
        signature_interval=signature_interval,
        signature_flush_time=signature_flush_time,
        snapshot_interval=snapshot_interval,
        secure_channels=secure_channels,
        batch_execution=batch_execution,
        read_offload=read_offload,
        # Virtual-mode deployments (section 6.4: development / replication
        # without confidentiality) accept unattested virtual quotes.
        accept_virtual_attestation=(platform == "virtual"),
    )
    app_factory = build_js_app if runtime == "js" else build_logging_app
    setup = ServiceSetup(
        n_nodes=n_nodes,
        node_config=config,
        app_factory=app_factory,
        seed=seed,
    )
    if link_latency is not None:
        from repro.net.network import LinkConfig

        setup.link = LinkConfig(base_latency=link_latency, jitter=link_latency / 5)
    service = CCFService(setup)
    service.bootstrap()
    return service


@dataclass
class WorkloadResult:
    """One measured operating point."""

    writes_per_second: float = 0.0
    reads_per_second: float = 0.0
    total_per_second: float = 0.0
    write_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    read_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    errors: int = 0


def run_logging_workload(
    service: CCFService,
    read_ratio: float = 0.0,
    concurrency: int = 100,
    warmup: float = 0.1,
    window: float = 0.3,
    spread_reads: bool = True,
    key_space: int = 1000,
) -> WorkloadResult:
    """Drive the logging app and measure steady-state throughput.

    Writes go directly to the primary ("to measure the performance of CCF
    itself, instead of the optional node-to-node forwarding logic, the
    user directly writes to the primary", section 7); reads are spread
    over all nodes when ``spread_reads`` is set.
    """
    primary = service.primary_node()
    nodes = [n for n in service.nodes.values() if not n.stopped]
    read_targets = [n.node_id for n in nodes] if spread_reads else [primary.node_id]
    user = service.users[0]
    credentials = {"certificate": user.certificate.to_dict()}

    # Pre-populate keys so reads always hit.
    seed_client = ServiceClient(service.scheduler, service.network,
                                name="bench-seeder", identity=user)
    for key in range(0, key_space, max(1, key_space // 50)):
        seed_client.call(primary.node_id, "/app/write_message",
                         {"id": key, "msg": MESSAGE}, credentials=credentials)
    service.run(0.05)

    result = WorkloadResult()
    writes = ThroughputRecorder()
    reads = ThroughputRecorder()
    clients: list[ClosedLoopClient] = []

    # One aggregated closed-loop client per target node; the write client
    # aims at the primary, read clients at every node. Reads target the
    # pre-populated key grid so they always hit.
    read_stride = max(1, key_space // 50)

    def make_factory(kind: str, salt: int):
        def factory(i: int):
            key = (i * 7 + salt) % key_space
            if kind == "write":
                return "/app/write_message", {"id": key, "msg": MESSAGE}, credentials
            read_key = (key // read_stride) * read_stride
            return "/app/read_message", {"id": read_key}, credentials
        return factory

    # Writes.
    if read_ratio < 1.0:
        write_concurrency = max(1, int(concurrency * (1 - read_ratio)))
        endpoint = ServiceClient(service.scheduler, service.network,
                                 name="bench-writer", identity=user)
        client = ClosedLoopClient(
            endpoint, primary.node_id, make_factory("write", 0),
            concurrency=write_concurrency, throughput=writes,
            latency=result.write_latency, retry_timeout=2.0,
        )
        clients.append(client)
    # Reads, spread across nodes.
    if read_ratio > 0.0:
        read_concurrency = max(1, int(concurrency * read_ratio))
        per_node = max(1, read_concurrency // len(read_targets))
        for index, target in enumerate(read_targets):
            endpoint = ServiceClient(service.scheduler, service.network,
                                     name=f"bench-reader-{index}", identity=user)
            client = ClosedLoopClient(
                endpoint, target, make_factory("read", index + 1),
                concurrency=per_node, throughput=reads,
                latency=result.read_latency, retry_timeout=2.0,
            )
            clients.append(client)

    for client in clients:
        client.start()
    service.run(warmup)
    start = service.scheduler.now
    service.run(window)
    end = service.scheduler.now
    for client in clients:
        client.stop()

    result.writes_per_second = writes.throughput(start, end)
    result.reads_per_second = reads.throughput(start, end)
    result.total_per_second = result.writes_per_second + result.reads_per_second
    result.errors = sum(client.errors for client in clients)
    return result


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render an aligned results table to stdout (captured with `pytest -s`
    or the bench output tee)."""
    widths = [len(h) for h in headers]
    formatted_rows = []
    for row in rows:
        formatted = [f"{cell:,.1f}" if isinstance(cell, float) else str(cell) for cell in row]
        formatted_rows.append(formatted)
        widths = [max(w, len(cell)) for w, cell in zip(widths, formatted)]
    print(f"\n=== {title} ===")
    print("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    for formatted in formatted_rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(formatted, widths)))
