"""Verifiable receipts (section 3.5).

A receipt proves — offline, to anyone holding the service identity
certificate — that a transaction was committed at a specific position in the
ledger. It bundles:

- the transaction's leaf material (write-set digests and claims digest),
- the Merkle proof from that leaf to a root,
- the signature over that root from a subsequent signature transaction,
- the identity of the signing node and its certificate, endorsed by the
  service identity.

Receipts are used internally to validate snapshots (section 4.4) and
externally for audit and third-party proof.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.certs import Certificate
from repro.crypto.ct import ct_eq
from repro.crypto.hashing import sha256
from repro.crypto.merkle import MerkleProof, leaf_hash
from repro.errors import IntegrityError, VerificationError
from repro.kv.serialization import encode_value
from repro.ledger.entry import LedgerEntry, TxID
from repro.ledger.ledger import Ledger, SignatureRecord


@dataclass(frozen=True)
class Receipt:
    """An offline-verifiable commitment proof for one transaction."""

    txid: TxID
    leaf_data: bytes
    proof: MerkleProof
    signature: SignatureRecord
    node_certificate: Certificate
    claims: dict | None = None

    def verify(self, service_certificate: Certificate) -> None:
        """Verify the full chain: service → node → root signature → proof.

        Raises :class:`VerificationError` / :class:`IntegrityError` on any
        broken link. On success the receipt proves the transaction with this
        leaf data was in the ledger at position ``txid.seqno`` when the
        signature at ``signature.seqno`` was produced.
        """
        # 1. The node certificate must be endorsed by the service identity.
        self.node_certificate.verify(service_certificate.public_key)
        if self.node_certificate.subject != self.signature.node_id:
            raise VerificationError("receipt signed by a different node")
        # 2. The signature over the Merkle root must verify.
        self.node_certificate.public_key.verify(
            self.signature.signature, self.signature.signed_payload()
        )
        # 3. The Merkle proof must connect the leaf to the signed root.
        if self.proof.leaf_index != self.txid.seqno - 1:
            raise IntegrityError("receipt proof targets the wrong leaf")
        if self.proof.tree_size != self.signature.seqno - 1:
            raise IntegrityError("receipt proof targets the wrong tree size")
        computed = self.proof.compute_root(leaf_hash(self.leaf_data))
        if not ct_eq(bytes(computed), self.signature.root):
            raise IntegrityError("receipt proof does not reach the signed root")
        # 4. If claims are attached, they must match the leaf's claims digest.
        if self.claims is not None:
            from repro.kv.serialization import decode_value

            leaf = decode_value(self.leaf_data)
            expected = bytes(sha256(encode_value(self.claims)))
            if not ct_eq(leaf.get("claims_digest"), expected):
                raise IntegrityError("receipt claims do not match the leaf digest")

    def to_dict(self) -> dict:
        return {
            "txid": str(self.txid),
            "leaf_data": self.leaf_data.hex(),
            "proof": self.proof.to_dict(),
            "signature": self.signature.to_value(),
            "node_certificate": self.node_certificate.to_dict(),
            "claims": self.claims,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Receipt":
        return cls(
            txid=TxID.parse(data["txid"]),
            leaf_data=bytes.fromhex(data["leaf_data"]),
            proof=MerkleProof.from_dict(data["proof"]),
            signature=SignatureRecord.from_value(data["signature"]),
            node_certificate=Certificate.from_dict(data["node_certificate"]),
            claims=data.get("claims"),
        )


def issue_receipt(
    ledger: Ledger,
    seqno: int,
    node_certificate: Certificate,
    claims: dict | None = None,
) -> Receipt:
    """Build a receipt for the entry at ``seqno`` using the first signature
    transaction after it. Raises :class:`IntegrityError` if no subsequent
    signature exists yet (the transaction is not verifiably committed)."""
    entry: LedgerEntry = ledger.entry_at(seqno)
    signature_seqno = ledger.next_signature_seqno(seqno)
    if signature_seqno is None:
        raise IntegrityError(
            f"no signature transaction after seqno {seqno}; receipt unavailable"
        )
    record = ledger.signature_record(signature_seqno)
    if ledger.obs is not None:
        ledger.obs.receipt_issued(ledger.obs_owner, seqno, signature_seqno)
    return Receipt(
        txid=entry.txid,
        leaf_data=entry.leaf_data(),
        proof=ledger.proof(seqno, signature_seqno),
        signature=record,
        node_certificate=node_certificate,
        claims=claims,
    )
