"""Physical ledger files (section 3.2).

The logical ledger is divided into chunk files, each terminating with a
signature transaction, as the host writes it to persistent storage. Chunks
use a simple length-prefixed framing with a header recording the seqno range.
The host is untrusted — readers re-derive integrity from the signature
transactions, never from the file structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import LedgerError
from repro.ledger.entry import LedgerEntry

_MAGIC = b"CCFLGR01"


@dataclass(frozen=True)
class LedgerChunk:
    """A contiguous run of entries [first_seqno, last_seqno] ending at a
    signature transaction (except possibly the final, still-open chunk)."""

    first_seqno: int
    last_seqno: int
    entries: tuple[LedgerEntry, ...]

    @property
    def is_complete(self) -> bool:
        return bool(self.entries) and self.entries[-1].is_signature

    def filename(self) -> str:
        suffix = "" if self.is_complete else ".open"
        return f"ledger_{self.first_seqno}_{self.last_seqno}{suffix}.chunk"

    def encode(self) -> bytes:
        parts = [
            _MAGIC,
            self.first_seqno.to_bytes(8, "big"),
            self.last_seqno.to_bytes(8, "big"),
        ]
        for entry in self.entries:
            framed = entry.encode()
            parts.append(len(framed).to_bytes(4, "big"))
            parts.append(framed)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "LedgerChunk":
        if len(data) < len(_MAGIC) + 16 or not data.startswith(_MAGIC):
            raise LedgerError("malformed ledger chunk header")
        offset = len(_MAGIC)
        first_seqno = int.from_bytes(data[offset : offset + 8], "big")
        last_seqno = int.from_bytes(data[offset + 8 : offset + 16], "big")
        offset += 16
        entries = []
        while offset < len(data):
            if offset + 4 > len(data):
                raise LedgerError("truncated chunk entry length")
            length = int.from_bytes(data[offset : offset + 4], "big")
            offset += 4
            if offset + length > len(data):
                raise LedgerError("truncated chunk entry body")
            entries.append(LedgerEntry.decode(data[offset : offset + length]))
            offset += length
        chunk = cls(first_seqno=first_seqno, last_seqno=last_seqno, entries=tuple(entries))
        if entries and (
            entries[0].txid.seqno != first_seqno or entries[-1].txid.seqno != last_seqno
        ):
            raise LedgerError("chunk header does not match its entries")
        return chunk


def chunk_entries(entries: list[LedgerEntry]) -> Iterator[LedgerChunk]:
    """Split a run of entries into chunks ending at signature transactions.
    A trailing run without a final signature becomes an open chunk."""
    current: list[LedgerEntry] = []
    for entry in entries:
        current.append(entry)
        if entry.is_signature:
            yield LedgerChunk(
                first_seqno=current[0].txid.seqno,
                last_seqno=current[-1].txid.seqno,
                entries=tuple(current),
            )
            current = []
    if current:
        yield LedgerChunk(
            first_seqno=current[0].txid.seqno,
            last_seqno=current[-1].txid.seqno,
            entries=tuple(current),
        )


def reassemble_chunks(chunks: list[LedgerChunk]) -> list[LedgerEntry]:
    """Order chunks by first seqno and concatenate into a contiguous entry
    list, validating there are no gaps or overlaps. The result still needs
    cryptographic verification (signature entries) before being trusted."""
    ordered = sorted(chunks, key=lambda chunk: chunk.first_seqno)
    entries: list[LedgerEntry] = []
    expected = 1
    for chunk in ordered:
        if chunk.first_seqno != expected:
            raise LedgerError(
                f"ledger gap: expected seqno {expected}, chunk starts at "
                f"{chunk.first_seqno}"
            )
        entries.extend(chunk.entries)
        expected = chunk.last_seqno + 1
    for seqno, entry in enumerate(entries, start=1):
        if entry.txid.seqno != seqno:
            raise LedgerError(f"entry out of place at seqno {seqno}")
    return entries
