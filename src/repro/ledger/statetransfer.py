"""Incremental state transfer: content-addressed chunked snapshots.

The monolithic snapshot path serializes and seals the *entire* KV store
every ``snapshot_interval`` commits and ships it to joiners as one blob —
O(full state) on the primary's critical path. This module makes both sides
O(change), in the spirit of CCF's chunked snapshots and LSM-style
content-addressed state shipping:

- **Delta production**: each map serializes independently into chunks of
  ``~chunk_bytes`` of canonical rows. Persistent (CHAMP) maps make dirty
  detection an O(#maps) object-identity comparison against the previous
  snapshot's map table; clean maps reuse their previous *sealed* chunks
  verbatim, so only dirty state is re-serialized and re-sealed.
- **Content addressing**: a chunk travels as ``content_digest || AEAD(...)``
  and is named by ``chunk_id = sha256(those bytes)``. Sealing is a pure
  function of (plaintext, secret generation) — the nonce derives from the
  plaintext digest (SIV-style, domain 0x43) and the AAD binds generation +
  content digest — so identical map content always yields an identical
  chunk id, which is what lets a joiner skip chunks it already holds.
- **Manifest binding**: which chunk belongs to which map, in which order,
  is recorded in the snapshot metadata ("the manifest"); its digest is the
  receipt claim. The chunk's position is deliberately *not* in the AAD —
  binding an index would destroy dedup (and risk nonce reuse across
  differing plaintexts); the signed manifest provides the position binding
  instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.ct import ct_eq
from repro.crypto.hashing import Digest, sha256
from repro.errors import KVError, VerificationError
from repro.kv.serialization import decode_value, encode_value
from repro.kv.store import KVStore
from repro.ledger.secrets import LedgerSecret, LedgerSecretStore

CHUNK_FORMAT = "chunked-v1"
_CONTENT_DIGEST_SIZE = 32


def chunk_aad(generation: int, content_digest: bytes) -> bytes:
    """AEAD associated data for one state chunk: domain + generation +
    plaintext digest. Everything here is a pure function of (plaintext,
    generation), keeping sealed bytes — and therefore chunk ids — stable
    across snapshots for unchanged content."""
    return encode_value(
        {
            "domain": "statetransfer.chunk",
            "generation": generation,
            "content": content_digest.hex(),
        }
    )


def seal_state_chunk(secret: LedgerSecret, plaintext: bytes) -> bytes:
    """Seal one chunk; returns ``content_digest || ciphertext || tag``.

    The plaintext digest rides in front so the receiver can derive the
    SIV nonce before decrypting; the AAD re-binds it, so a tampered prefix
    fails authentication.
    """
    content = bytes(sha256(plaintext))
    sealed = secret.seal_chunk(content, plaintext, chunk_aad(secret.generation, content))
    return content + sealed


def open_state_chunk(secret: LedgerSecret, blob: bytes) -> bytes:
    """Verify and decrypt one sealed chunk blob."""
    if len(blob) < _CONTENT_DIGEST_SIZE:
        raise VerificationError("state chunk too short for a content digest")
    content = blob[:_CONTENT_DIGEST_SIZE]
    sealed = blob[_CONTENT_DIGEST_SIZE:]
    plaintext = secret.open_chunk(content, sealed, chunk_aad(secret.generation, content))
    # The AEAD tag already covers the digest via nonce + AAD; re-deriving it
    # from the plaintext is defense in depth against a mis-sealed producer.
    if not ct_eq(bytes(sha256(plaintext)), content):
        raise VerificationError("state chunk content digest mismatch")
    return plaintext


def chunk_id(blob: bytes) -> str:
    """Content address of a sealed chunk: sha256 over the sealed bytes."""
    return bytes(sha256(blob)).hex()


def manifest_digest(metadata: dict) -> Digest:
    """The digest the snapshot receipt claims: canonical metadata bytes
    (which include the per-map chunk-id listing, so every chunk is
    transitively covered by the receipt)."""
    return sha256(encode_value(metadata))


@dataclass
class SnapshotBaseline:
    """What delta production remembers about the previous snapshot."""

    table: dict[str, Any]  # map name -> ChampMap at the previous base seqno
    map_chunks: dict[str, list[tuple[str, bytes]]]  # name -> [(id, sealed)]
    generation: int


@dataclass
class BuiltSnapshot:
    """One produced snapshot: manifest metadata + its sealed chunks."""

    metadata: dict
    chunks: dict[str, bytes]  # chunk_id -> sealed bytes, all maps
    map_chunks: dict[str, list[tuple[str, bytes]]]
    stats: dict = field(default_factory=dict)

    def baseline(self, table: dict[str, Any]) -> SnapshotBaseline:
        return SnapshotBaseline(
            table=table,
            map_chunks=self.map_chunks,
            generation=self.metadata["secret_generation"],
        )


def _split_rows(rows: list[list[Any]], chunk_bytes: int) -> list[list[list[Any]]]:
    """Greedy split of canonical rows into groups of ~``chunk_bytes``."""
    groups: list[list[list[Any]]] = []
    current: list[list[Any]] = []
    current_bytes = 0
    for row in rows:
        row_bytes = len(encode_value(row))
        if current and current_bytes + row_bytes > chunk_bytes:
            groups.append(current)
            current = []
            current_bytes = 0
        current.append(row)
        current_bytes += row_bytes
    if current:
        groups.append(current)
    return groups


def build_chunked_snapshot(
    store: KVStore,
    version: int,
    secret: LedgerSecret,
    ledger_metadata: dict,
    *,
    chunk_bytes: int,
    baseline: SnapshotBaseline | None = None,
) -> BuiltSnapshot:
    """Produce a chunked snapshot of ``store`` as of retained ``version``.

    With a ``baseline`` from the previous snapshot, maps whose CHAMP object
    is unchanged reuse their previous sealed chunks outright — no
    serialization, no sealing — so production cost is O(dirty state). A
    generation change (post-recovery rekey) disables reuse: old chunks are
    sealed under a key a future joiner may not be given first.
    """
    table = store.map_table_at(version)
    reusable = (
        baseline is not None and baseline.generation == secret.generation
    )
    changed = (
        store.changed_map_names(version, baseline.table)
        if reusable
        else set(table)
    )
    chunk_listing: list[list[Any]] = []
    chunks: dict[str, bytes] = {}
    map_chunks: dict[str, list[tuple[str, bytes]]] = {}
    chunks_built = 0
    chunks_reused = 0
    entries_serialized = 0
    entries_total = 0
    sealed_bytes = 0
    for name in sorted(table):
        entries_total += len(table[name])
        if reusable and name not in changed and name in baseline.map_chunks:
            sealed_chunks = baseline.map_chunks[name]
            chunks_reused += len(sealed_chunks)
        else:
            rows = KVStore.canonical_map_rows(table[name])
            sealed_chunks = []
            for group in _split_rows(rows, chunk_bytes):
                plaintext = encode_value({"map": name, "rows": group})
                blob = seal_state_chunk(secret, plaintext)
                sealed_chunks.append((chunk_id(blob), blob))
                entries_serialized += len(group)
                chunks_built += 1
        map_chunks[name] = sealed_chunks
        for cid, blob in sealed_chunks:
            chunks[cid] = blob
            sealed_bytes += len(blob)
        chunk_listing.append([name, [cid for cid, _ in sealed_chunks]])
    metadata = dict(ledger_metadata)
    metadata["format"] = CHUNK_FORMAT
    metadata["secret_generation"] = secret.generation
    metadata["chunk_maps"] = chunk_listing
    return BuiltSnapshot(
        metadata=metadata,
        chunks=chunks,
        map_chunks=map_chunks,
        stats={
            "maps_total": len(table),
            "maps_dirty": len([n for n in table if n in changed]),
            "chunks_built": chunks_built,
            "chunks_reused": chunks_reused,
            "entries_serialized": entries_serialized,
            "entries_total": entries_total,
            "sealed_bytes": sealed_bytes,
        },
    )


def manifest_chunk_ids(metadata: dict) -> list[str]:
    """All chunk ids a manifest references, in manifest order, deduplicated."""
    if metadata.get("format") != CHUNK_FORMAT:
        raise KVError("not a chunked snapshot manifest")
    seen: list[str] = []
    have = set()
    for _, ids in metadata["chunk_maps"]:
        for cid in ids:
            if cid not in have:
                have.add(cid)
                seen.append(cid)
    return seen


def verify_chunk_blob(cid: str, blob: bytes) -> None:
    """Check a sealed blob against its content address (streaming install
    verifies each chunk as it arrives, before it touches the cache)."""
    if not ct_eq(chunk_id(blob), cid):
        raise VerificationError(f"state chunk {cid[:16]}… fails its content address")


def assemble_store(
    metadata: dict, chunks: dict[str, bytes], secrets: LedgerSecretStore
) -> KVStore:
    """Rebuild the KV store a chunked manifest describes.

    Every chunk is digest-checked against its manifest-listed id, decrypted
    under the generation the manifest names, and bound to the map the
    manifest places it in (the plaintext self-describes its map; a swapped
    chunk fails here even though its seal is valid).
    """
    if metadata.get("format") != CHUNK_FORMAT:
        raise KVError("not a chunked snapshot manifest")
    secret = secrets.for_generation(metadata.get("secret_generation", 0))
    maps: dict[str, list[list[Any]]] = {}
    for name, ids in metadata["chunk_maps"]:
        rows: list[list[Any]] = []
        for cid in ids:
            blob = chunks.get(cid)
            if blob is None:
                raise VerificationError(f"state chunk {cid[:16]}… missing at install")
            verify_chunk_blob(cid, blob)
            payload = decode_value(open_state_chunk(secret, blob))
            if not isinstance(payload, dict) or payload.get("map") != name:
                raise VerificationError(
                    f"state chunk {cid[:16]}… is not bound to map {name!r}"
                )
            rows.extend(payload["rows"])
        maps[name] = rows
    return KVStore.from_map_rows(maps, metadata["base_seqno"])
