"""The in-enclave ledger: entries + Merkle tree + signature transactions.

This is the single-node view of section 3.2: an append-only sequence of
transactions with a Merkle tree over it, periodically punctuated by
*signature transactions* in which the primary signs the current Merkle root.
The consensus layer (section 4) replicates these entries and defines commit
as "signature transaction replicated to a majority".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.crypto.ct import ct_eq
from repro.crypto.ecdsa import SigningKey, VerifyingKey
from repro.crypto.hashing import Digest, sha256
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.errors import IntegrityError, LedgerError
from repro.kv.serialization import encode_value
from repro.kv.tx import WriteSet
from repro.ledger.entry import EntryKind, LedgerEntry, TxID
from repro.ledger.secrets import LedgerSecretStore

SIGNATURES_MAP = "public:ccf.internal.signatures"
TREE_MAP = "public:ccf.internal.tree"


@dataclass(frozen=True)
class SignatureRecord:
    """The content of a signature transaction, stored in the signatures map."""

    node_id: str
    view: int
    seqno: int  # the seqno of the signature transaction itself
    root: bytes  # Merkle root over entries [1, seqno - 1]
    signature: bytes

    def to_value(self) -> dict:
        return {
            "node_id": self.node_id,
            "view": self.view,
            "seqno": self.seqno,
            "root": self.root.hex(),
            "signature": self.signature.hex(),
        }

    @classmethod
    def from_value(cls, value: dict) -> "SignatureRecord":
        return cls(
            node_id=value["node_id"],
            view=value["view"],
            seqno=value["seqno"],
            root=bytes.fromhex(value["root"]),
            signature=bytes.fromhex(value["signature"]),
        )

    def signed_payload(self) -> bytes:
        return encode_value(
            {"view": self.view, "seqno": self.seqno, "root": self.root}
        )


def make_signature_write_set(record: SignatureRecord) -> WriteSet:
    write_set = WriteSet()
    write_set.put(SIGNATURES_MAP, "latest", record.to_value())
    return write_set


class Ledger:
    """Append-only entries with an incremental Merkle tree.

    Seqnos are 1-based: ``entry_at(1)`` is the first entry, and the Merkle
    leaf for seqno ``s`` is at tree index ``s - 1``.

    A ledger may be *based* at a snapshot (section 4.4): entries at or below
    ``base_seqno`` are unavailable (the node joined from a snapshot), but
    their leaf hashes and transaction IDs are retained so the Merkle tree,
    prefix checks, and receipts for later entries all still work.
    """

    def __init__(self, secrets: LedgerSecretStore | None = None):
        self._entries: list[LedgerEntry] = []  # entries after base_seqno
        self.base_seqno = 0
        self._txids: list[TxID] = []  # txids for ALL seqnos from 1
        self._sig_seqnos: list[int] = []  # signature seqnos after base
        self._base_last_sig = TxID(0, 0)
        self._tree = MerkleTree()
        self.secrets = secrets if secrets is not None else LedgerSecretStore()
        # Optional observability wiring (set by the owning node).
        self.obs = None
        self.obs_owner = ""

    @classmethod
    def from_snapshot_metadata(
        cls,
        secrets: LedgerSecretStore,
        base_seqno: int,
        txids: list[TxID],
        leaf_hashes: list[bytes],
        last_signature_txid: TxID,
    ) -> "Ledger":
        """Bootstrap a ledger from snapshot metadata: the node has the KV
        state at ``base_seqno`` but not the entries themselves."""
        if len(txids) != base_seqno or len(leaf_hashes) != base_seqno:
            raise LedgerError("snapshot metadata does not cover the base prefix")
        ledger = cls(secrets)
        ledger.base_seqno = base_seqno
        ledger._txids = list(txids)
        for leaf in leaf_hashes:
            ledger._tree.append_leaf_hash(Digest(leaf))
        ledger._base_last_sig = last_signature_txid
        return ledger

    def snapshot_metadata(self, seqno: int) -> dict:
        """The Merkle/txid metadata a snapshot at ``seqno`` must carry."""
        if seqno > self.last_seqno or seqno < self.base_seqno:
            raise LedgerError(f"no metadata for seqno {seqno}")
        last_sig = self._base_last_sig
        for sig_seqno in self._sig_seqnos:
            if sig_seqno <= seqno:
                last_sig = self.txid_at(sig_seqno)
        return {
            "base_seqno": seqno,
            "txids": [[t.view, t.seqno] for t in self._txids[:seqno]],
            "leaf_hashes": [bytes(self._tree.leaf(i)) for i in range(seqno)],
            "last_signature_txid": [last_sig.view, last_sig.seqno],
        }

    # ------------------------------------------------------------------
    # Shape queries

    @property
    def last_seqno(self) -> int:
        return self.base_seqno + len(self._entries)

    def last_txid(self) -> TxID:
        if not self._txids:
            return TxID(view=0, seqno=0)
        return self._txids[-1]

    def entry_at(self, seqno: int) -> LedgerEntry:
        if not self.base_seqno < seqno <= self.last_seqno:
            raise LedgerError(f"no entry at seqno {seqno} (base {self.base_seqno})")
        return self._entries[seqno - self.base_seqno - 1]

    def txid_at(self, seqno: int) -> TxID:
        if seqno == 0:
            return TxID(view=0, seqno=0)
        if not 1 <= seqno <= self.last_seqno:
            raise LedgerError(f"no txid at seqno {seqno}")
        return self._txids[seqno - 1]

    def has_txid(self, txid: TxID) -> bool:
        """True if this exact (view, seqno) is present in the ledger."""
        if txid.seqno == 0:
            return True  # genesis
        if txid.seqno > self.last_seqno:
            return False
        return self._txids[txid.seqno - 1] == txid

    def entries(self, start: int = 1, end: int | None = None) -> Iterator[LedgerEntry]:
        """Iterate entries with seqno in [start, end] inclusive."""
        last = self.last_seqno if end is None else min(end, self.last_seqno)
        for seqno in range(max(start, self.base_seqno + 1), last + 1):
            yield self._entries[seqno - self.base_seqno - 1]

    def last_signature_txid(self) -> TxID:
        """The transaction ID of the most recent signature entry — this is
        what election up-to-dateness compares (section 4.2)."""
        if self._sig_seqnos:
            return self.txid_at(self._sig_seqnos[-1])
        return self._base_last_sig

    def root(self) -> Digest:
        return self._tree.root()

    # ------------------------------------------------------------------
    # Appending

    def append(self, entry: LedgerEntry) -> None:
        """Append a fully formed entry (primary-built or replicated)."""
        expected_seqno = self.last_seqno + 1
        if entry.txid.seqno != expected_seqno:
            raise LedgerError(
                f"entry seqno {entry.txid.seqno} != expected {expected_seqno}"
            )
        if self._txids and entry.txid.view < self._txids[-1].view:
            raise LedgerError("entry view regresses")
        self._entries.append(entry)
        self._txids.append(entry.txid)
        if entry.is_signature:
            self._sig_seqnos.append(entry.txid.seqno)
        self._tree.append(entry.leaf_data())
        if self.obs is not None:
            self.obs.ledger_append(self.obs_owner, entry, len(entry.private_blob))

    def append_batch(self, entries: list[LedgerEntry]) -> None:
        """Append many fully formed entries in one call.

        Exactly equivalent to ``append`` per entry — same validation, same
        final tree — but the Merkle extension is folded per batch and the
        per-entry bookkeeping runs as tight loops. Used by the replay fast
        path, where the ledger is rebuilt from thousands of salvaged
        entries below a verified signature anchor."""
        if self.obs is not None:
            # Observability wants a per-entry event stream; fall back.
            for entry in entries:
                self.append(entry)
            return
        expected = self.last_seqno + 1
        last_view = self._txids[-1].view if self._txids else 0
        for entry in entries:
            if entry.txid.seqno != expected:
                raise LedgerError(
                    f"entry seqno {entry.txid.seqno} != expected {expected}"
                )
            if entry.txid.view < last_view:
                raise LedgerError("entry view regresses")
            last_view = entry.txid.view
            expected += 1
        self._entries.extend(entries)
        self._txids.extend(entry.txid for entry in entries)
        self._sig_seqnos.extend(
            entry.txid.seqno for entry in entries if entry.is_signature
        )
        self._tree.extend([entry.leaf_data() for entry in entries])

    def build_entry(
        self,
        view: int,
        write_set: WriteSet,
        kind: EntryKind = EntryKind.USER,
        claims: dict | None = None,
    ) -> LedgerEntry:
        """Construct the next entry from a transaction's write set,
        encrypting the private half under the current ledger secret."""
        seqno = self.last_seqno + 1
        public, private = write_set.split()
        claims_digest = bytes(sha256(encode_value(claims))) if claims else b""
        private_blob = b""
        generation = 0
        if not private.is_empty():
            secret = self.secrets.current()
            generation = secret.generation
            aad = encode_value({"view": view, "seqno": seqno, "kind": kind.value})
            private_blob = secret.seal(seqno, private.encode(), aad)
        return LedgerEntry(
            txid=TxID(view=view, seqno=seqno),
            kind=kind,
            public_writes=public,
            private_blob=private_blob,
            secret_generation=generation,
            claims_digest=claims_digest,
        )

    def decrypt_private(self, entry: LedgerEntry) -> WriteSet:
        """Recover an entry's full write set (public merged with decrypted
        private). Requires the ledger secret for the entry's generation."""
        combined = WriteSet()
        combined.merge(entry.public_writes)
        if entry.private_blob:
            secret = self.secrets.for_generation(entry.secret_generation)
            aad = encode_value(
                {
                    "view": entry.txid.view,
                    "seqno": entry.txid.seqno,
                    "kind": entry.kind.value,
                }
            )
            plaintext = secret.open(entry.txid.seqno, entry.private_blob, aad)
            combined.merge(WriteSet.decode(plaintext))
        return combined

    # ------------------------------------------------------------------
    # Signature transactions (section 3.2)

    def build_signature_entry(
        self, view: int, node_id: str, signing_key: SigningKey
    ) -> LedgerEntry:
        """Sign the Merkle root over all current entries and frame it as the
        next ledger entry. The signed root covers seqnos [1, last_seqno];
        the signature entry itself lands at last_seqno + 1."""
        seqno = self.last_seqno + 1
        root = self._tree.root()
        record = SignatureRecord(
            node_id=node_id, view=view, seqno=seqno, root=bytes(root), signature=b""
        )
        signature = signing_key.sign(record.signed_payload())
        signed = SignatureRecord(
            node_id=node_id, view=view, seqno=seqno, root=bytes(root), signature=signature
        )
        return self.build_entry(
            view, make_signature_write_set(signed), kind=EntryKind.SIGNATURE
        )

    def signature_record(self, seqno: int) -> SignatureRecord:
        """Extract the signature record from the signature entry at ``seqno``."""
        entry = self.entry_at(seqno)
        if not entry.is_signature:
            raise LedgerError(f"entry {entry.txid} is not a signature transaction")
        value = entry.public_writes.updates[SIGNATURES_MAP]["latest"]
        return SignatureRecord.from_value(value)

    def next_signature_seqno(self, after: int) -> int | None:
        """The seqno of the first signature entry strictly after ``after``
        (among the entries this node retains)."""
        import bisect

        index = bisect.bisect_right(self._sig_seqnos, after)
        if index < len(self._sig_seqnos):
            return self._sig_seqnos[index]
        return None

    def prev_signature_seqno(self, at_or_before: int) -> int | None:
        """The seqno of the last signature entry at or before
        ``at_or_before`` (among the entries this node retains)."""
        import bisect

        index = bisect.bisect_right(self._sig_seqnos, at_or_before)
        if index:
            return self._sig_seqnos[index - 1]
        return None

    def verify_signature_entry(self, seqno: int, key: VerifyingKey) -> SignatureRecord:
        """Check that the signature entry at ``seqno`` correctly signs the
        Merkle root over the preceding entries. Raises on mismatch."""
        record = self.signature_record(seqno)
        expected_root = self._tree.root_at(seqno - 1)
        if not ct_eq(record.root, bytes(expected_root)):
            raise IntegrityError(
                f"signature at {seqno} commits to a different ledger prefix"
            )
        key.verify(record.signature, record.signed_payload())
        return record

    # ------------------------------------------------------------------
    # Rollback (section 4.2)

    def truncate(self, seqno: int) -> None:
        """Discard all entries after ``seqno``."""
        if seqno < self.base_seqno or seqno > self.last_seqno:
            raise LedgerError(f"cannot truncate to {seqno} (base {self.base_seqno})")
        del self._entries[seqno - self.base_seqno:]
        del self._txids[seqno:]
        self._sig_seqnos = [s for s in self._sig_seqnos if s <= seqno]
        self._tree.retract_to(seqno)
        if self.obs is not None:
            self.obs.ledger_truncate(self.obs_owner, seqno)

    # ------------------------------------------------------------------
    # Proofs (consumed by receipts, section 3.5)

    def proof(self, seqno: int, signature_seqno: int) -> MerkleProof:
        """Merkle proof that entry ``seqno`` is covered by the root signed at
        ``signature_seqno``. Works for any seqno — even below a snapshot
        base — because leaf hashes for the whole prefix are retained."""
        if not 1 <= seqno < signature_seqno <= self.last_seqno:
            raise LedgerError(
                f"cannot prove seqno {seqno} under signature at {signature_seqno}"
            )
        return self._tree.proof(seqno - 1, signature_seqno - 1)
