"""Offline ledger auditing (sections 6.1 & 6.2).

CCF's transparency story: governance is recorded in *public* maps with the
members' signatures, and signature transactions commit the whole ledger
under the service's node identities — so a third party holding only the
ledger files and the service identity certificate can audit the service
without any keys and without trusting the hosts that stored the files.

:func:`audit_ledger` performs that audit:

1. structural replay of the chunk files (framing, dense seqnos, view
   monotonicity);
2. verification of every signature transaction against the node identities
   recorded in the (public, replayed) governance state;
3. verification of every member-signed governance request recorded in the
   history map against the member certificates in force at that point;
4. reconstruction of the governance timeline (node lifecycle, proposals
   and their outcomes, code-id approvals).

The result is a report — a machine-checkable account of what the
consortium did, derived purely from untrusted storage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.certs import Certificate
from repro.crypto.cose import SignedRequest
from repro.crypto.ecdsa import VerifyingKey
from repro.errors import IntegrityError, LedgerError, VerificationError
from repro.kv.store import KVStore
from repro.ledger.entry import LedgerEntry
from repro.ledger.ledger import Ledger
from repro.ledger.secrets import LedgerSecretStore
from repro.node import maps
from repro.storage.host_storage import HostStorage


@dataclass
class AuditFinding:
    """One problem the auditor found."""

    seqno: int
    kind: str  # "signature", "governance-signature", "structure"
    detail: str


@dataclass
class AuditReport:
    """The auditor's account of the ledger."""

    entries_audited: int = 0
    verified_seqno: int = 0  # last seqno covered by a valid signature
    signatures_verified: int = 0
    governance_requests_verified: int = 0
    findings: list[AuditFinding] = field(default_factory=list)
    # Governance timeline: (seqno, event description).
    timeline: list[tuple[int, str]] = field(default_factory=list)
    node_lifecycle: dict[str, list[str]] = field(default_factory=dict)
    proposals: dict[str, str] = field(default_factory=dict)  # id -> final state

    @property
    def clean(self) -> bool:
        return not self.findings


def _node_key(store: KVStore, node_id: str) -> VerifyingKey | None:
    row = store.get(maps.NODES_INFO, node_id)
    if isinstance(row, dict) and "public_key" in row:
        return VerifyingKey.decode(bytes.fromhex(row["public_key"]))
    return None


def _member_certificate(store: KVStore, subject: str) -> Certificate | None:
    row = store.get(maps.MEMBERS_CERTS, subject)
    if isinstance(row, dict) and "certificate" in row:
        return Certificate.from_dict(row["certificate"])
    return None


def audit_ledger(
    storage: HostStorage,
    expected_service_certificate: Certificate | None = None,
) -> AuditReport:
    """Audit persisted ledger files offline. Never raises for *content*
    problems — they become findings; only unreadable storage raises."""
    report = AuditReport()
    try:
        entries: list[LedgerEntry] = storage.read_ledger_entries()
    # Adversarially corrupted chunk bytes can fail in arbitrary ways while
    # decoding; by contract *any* failure here is the audit verdict, never
    # an exception. repro-lint: disable=PROTO002
    except Exception as exc:
        report.findings.append(AuditFinding(0, "structure", str(exc)))
        return report

    ledger = Ledger(LedgerSecretStore())
    store = KVStore()
    for entry in entries:
        seqno = entry.txid.seqno
        try:
            ledger.append(entry)
            store.apply_write_set(entry.public_writes, seqno)
        # Replaying a tampered entry can fail anywhere in append/apply;
        # the break itself is the finding. repro-lint: disable=PROTO002
        except Exception as exc:
            report.findings.append(AuditFinding(seqno, "structure", str(exc)))
            break
        report.entries_audited += 1

        public = entry.public_writes.updates

        # Signature transactions: verify against recorded node identities.
        if entry.is_signature:
            try:
                record = ledger.signature_record(seqno)
                key = _node_key(store, record.node_id)
                if key is None:
                    # Only legitimate for the service-opening signature
                    # that precedes the genesis transaction.
                    if seqno > 1:
                        report.findings.append(AuditFinding(
                            seqno, "signature",
                            f"signer {record.node_id} has no recorded identity",
                        ))
                else:
                    ledger.verify_signature_entry(seqno, key)
                    report.signatures_verified += 1
                    report.verified_seqno = seqno
            except (IntegrityError, VerificationError) as exc:
                report.findings.append(AuditFinding(seqno, "signature", str(exc)))
                break  # nothing at or past a bad signature is trustworthy

        # Governance history: verify member signatures on proposals/votes.
        for key_name, envelope_dict in public.get(maps.HISTORY, {}).items():
            if not isinstance(envelope_dict, dict):
                continue
            try:
                envelope = SignedRequest.from_dict(envelope_dict)
                certificate = _member_certificate(store, envelope.signer)
                if certificate is None:
                    report.findings.append(AuditFinding(
                        seqno, "governance-signature",
                        f"{key_name}: signer {envelope.signer} is not a member",
                    ))
                    continue
                envelope.verify(certificate)
                report.governance_requests_verified += 1
            except (VerificationError, ValueError, KeyError) as exc:
                report.findings.append(AuditFinding(
                    seqno, "governance-signature", f"{key_name}: {exc}"
                ))

        # Timeline reconstruction (pure public data).
        for node_id, info in public.get(maps.NODES_INFO, {}).items():
            if isinstance(info, dict) and "status" in info:
                report.node_lifecycle.setdefault(node_id, []).append(info["status"])
                report.timeline.append((seqno, f"node {node_id} -> {info['status']}"))
        for proposal_id, info in public.get(maps.PROPOSALS_INFO, {}).items():
            if isinstance(info, dict) and "state" in info:
                report.proposals[proposal_id] = info["state"]
                report.timeline.append(
                    (seqno, f"proposal {proposal_id} -> {info['state']}")
                )
        for code_id, status in public.get(maps.NODES_CODE_IDS, {}).items():
            if isinstance(code_id, str):
                report.timeline.append((seqno, f"code id {code_id[:16]}… {status}"))
        service_row = public.get(maps.SERVICE_INFO, {}).get("service")
        if isinstance(service_row, dict) and "status" in service_row:
            report.timeline.append(
                (seqno, f"service -> {service_row['status']}")
            )

    # Service identity cross-check (detects a substituted ledger).
    if expected_service_certificate is not None:
        recorded = store.get(maps.SERVICE_INFO, "service") or {}
        cert_dict = recorded.get("certificate")
        if cert_dict != expected_service_certificate.to_dict():
            report.findings.append(AuditFinding(
                0, "structure",
                "recorded service identity does not match the expected certificate",
            ))
    return report


# ----------------------------------------------------------------------
# Recovery-time validation (restart-from-disk path)


@dataclass
class StorageValidation:
    """Verdict on a salvaged disk before a node restarts from it.

    ``claimed_seqno`` is what the chunk file headers say the disk holds up
    to the last *complete* (signature-terminated) chunk; ``verified_seqno``
    is how far the signature transactions actually verify. The disk is
    intact only when those agree — a corrupted or truncated ledger verifies
    short of its claim (or of ``expected_seqno``, when the caller knows how
    far the node had persisted before it crashed)."""

    claimed_seqno: int = 0
    verified_seqno: int = 0
    expected_seqno: int | None = None
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def intact(self) -> bool:
        if self.findings:
            return False
        if self.verified_seqno < self.claimed_seqno:
            return False
        if self.expected_seqno is not None and self.claimed_seqno < self.expected_seqno:
            return False
        return True

    def describe(self) -> str:
        reasons = [f"{finding.kind}@{finding.seqno}: {finding.detail}"
                   for finding in self.findings]
        if self.verified_seqno < self.claimed_seqno:
            reasons.append(
                f"verified only to seqno {self.verified_seqno} of claimed "
                f"{self.claimed_seqno} (corruption)"
            )
        if self.expected_seqno is not None and self.claimed_seqno < self.expected_seqno:
            reasons.append(
                f"disk claims only seqno {self.claimed_seqno} of expected "
                f"{self.expected_seqno} (truncation/rollback)"
            )
        return "; ".join(reasons) if reasons else "intact"


def validate_storage(
    storage: HostStorage, expected_seqno: int | None = None
) -> StorageValidation:
    """Pre-restart integrity check of persisted ledger files (chaos's
    crash-with-disk-intact path, and any operator salvage).

    Replays the chunks structurally and verifies every signature
    transaction, then compares the verified prefix with what the chunk
    headers claim — and, when given, with ``expected_seqno`` (the last
    seqno the node is known to have persisted), which additionally detects
    a rolled-back disk whose remaining prefix is internally consistent."""
    from repro.ledger.chunking import LedgerChunk

    validation = StorageValidation(expected_seqno=expected_seqno)
    claimed = 0
    for name in storage.list_files("ledger_"):
        if name.endswith(".open.chunk"):
            continue  # an open chunk's tail is beyond the last signature
        try:
            chunk = LedgerChunk.decode(storage.read(name))
        # Arbitrary byte flips must yield a verdict, not an exception.
        # repro-lint: disable=PROTO002
        except Exception as exc:
            validation.findings.append(AuditFinding(0, "structure", f"{name}: {exc}"))
            continue
        claimed = max(claimed, chunk.last_seqno)
    validation.claimed_seqno = claimed
    report = audit_ledger(storage)
    validation.verified_seqno = report.verified_seqno
    validation.findings.extend(
        finding for finding in report.findings
        if finding.kind in ("structure", "signature")
    )
    return validation
