"""Ledger secrets: the symmetric keys that encrypt private map updates.

Per Table 1, the ledger secret is shared between all trusted nodes, kept
only in enclave memory, and its *encrypted* form (wrapped by the ledger
secret wrapping key) is recorded in the key-value store so that disaster
recovery can restore it from shares (section 5.2). Secrets are versioned by
*generation* so the service can rekey — every recovery mints a new
generation, and historical entries are opened with the generation recorded
in their framing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aead import nonce_from_counter
from repro.crypto.fastaead import DEFAULT_SUITE, make_key
from repro.crypto.hashing import sha256
from repro.errors import LedgerError

_LEDGER_DOMAIN = 0x4C  # 'L': nonce domain for ledger entries
_SNAPSHOT_DOMAIN = 0x53  # 'S': nonce domain for sealed snapshots
_CHUNK_DOMAIN = 0x43  # 'C': nonce domain for content-addressed state chunks


@dataclass(frozen=True)
class LedgerSecret:
    """One generation of the ledger secret."""

    generation: int
    key_bytes: bytes
    suite: str = DEFAULT_SUITE

    @classmethod
    def generate(cls, seed: bytes, generation: int = 0, suite: str = DEFAULT_SUITE) -> "LedgerSecret":
        key_bytes = bytes(sha256(b"ledger-secret", generation.to_bytes(4, "big"), seed))
        return cls(generation=generation, key_bytes=key_bytes, suite=suite)

    def seal(self, seqno: int, plaintext: bytes, aad: bytes) -> bytes:
        """Encrypt a private write set for the entry at ``seqno``."""
        key = make_key(self.suite, self.key_bytes)
        return key.seal(nonce_from_counter(seqno, _LEDGER_DOMAIN), plaintext, aad)

    def open(self, seqno: int, sealed: bytes, aad: bytes) -> bytes:
        key = make_key(self.suite, self.key_bytes)
        return key.open(nonce_from_counter(seqno, _LEDGER_DOMAIN), sealed, aad)

    def seal_snapshot(self, base_seqno: int, plaintext: bytes, aad: bytes) -> bytes:
        """Encrypt serialized KV state for a snapshot based at ``base_seqno``.

        Snapshots contain private-map plaintext, so they must never reach
        host storage (or a joiner's untrusted transport) unsealed. A
        distinct nonce domain keeps snapshot nonces disjoint from the entry
        at the same seqno; re-snapshotting the same committed seqno reuses
        the nonce only for byte-identical plaintext (serialization is
        deterministic), which is safe.
        """
        key = make_key(self.suite, self.key_bytes)
        return key.seal(nonce_from_counter(base_seqno, _SNAPSHOT_DOMAIN), plaintext, aad)

    def open_snapshot(self, base_seqno: int, sealed: bytes, aad: bytes) -> bytes:
        key = make_key(self.suite, self.key_bytes)
        return key.open(nonce_from_counter(base_seqno, _SNAPSHOT_DOMAIN), sealed, aad)

    def chunk_nonce(self, content_digest: bytes) -> bytes:
        """SIV-style nonce for a state chunk: domain byte + plaintext digest.

        Content-addressed dedup needs sealing to be a *pure function* of
        (plaintext, generation): a clean map must seal to the same bytes in
        every snapshot so its chunk id is stable and joiners can skip it. A
        counter nonce would break that, and a per-snapshot index would risk
        reusing one nonce for *different* plaintexts across snapshots. Tying
        the nonce to the sha256 of the plaintext makes nonce reuse imply
        identical plaintext (collision resistance), which is safe.
        """
        if len(content_digest) < 11:
            raise LedgerError("chunk nonce needs a full content digest")
        return bytes([_CHUNK_DOMAIN]) + content_digest[:11]

    def seal_chunk(self, content_digest: bytes, plaintext: bytes, aad: bytes) -> bytes:
        """Encrypt one state chunk; deterministic in (plaintext, generation).

        ``content_digest`` must be sha256 of ``plaintext``. The chunk's
        position in a snapshot is deliberately *not* in the AAD — binding an
        index would give the same plaintext different sealed bytes per
        snapshot, destroying dedup. Position binding instead lives in the
        signed manifest, whose digest the snapshot receipt covers.
        """
        key = make_key(self.suite, self.key_bytes)
        return key.seal(self.chunk_nonce(content_digest), plaintext, aad)

    def open_chunk(self, content_digest: bytes, sealed: bytes, aad: bytes) -> bytes:
        key = make_key(self.suite, self.key_bytes)
        return key.open(self.chunk_nonce(content_digest), sealed, aad)

    def __repr__(self) -> str:  # pragma: no cover - never leak key bytes
        return f"LedgerSecret(generation={self.generation}, <secret>)"


class LedgerSecretStore:
    """All generations of the ledger secret known to this enclave."""

    def __init__(self, initial: LedgerSecret | None = None):
        self._by_generation: dict[int, LedgerSecret] = {}
        if initial is not None:
            self.add(initial)

    def add(self, secret: LedgerSecret) -> None:
        self._by_generation[secret.generation] = secret

    def current(self) -> LedgerSecret:
        if not self._by_generation:
            raise LedgerError("no ledger secret available")
        return self._by_generation[max(self._by_generation)]

    def for_generation(self, generation: int) -> LedgerSecret:
        try:
            return self._by_generation[generation]
        except KeyError:
            raise LedgerError(
                f"no ledger secret for generation {generation}"
            ) from None

    def generations(self) -> list[int]:
        return sorted(self._by_generation)

    def __len__(self) -> int:
        return len(self._by_generation)
