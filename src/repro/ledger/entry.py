"""Ledger entries and transaction IDs (section 3.1–3.3).

A transaction ID is the ordered pair (view, sequence number); sequence
numbers are 1-based indices into the logical ledger. Every entry carries its
public write set in plain text, its private write set encrypted under the
ledger secret, and an optional *claims digest* the application can attach to
make arbitrary claims verifiable through receipts (section 3.5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import total_ordering

from repro.crypto.hashing import Digest, sha256
from repro.errors import LedgerError
from repro.kv.serialization import decode_value, encode_value
from repro.kv.tx import WriteSet


@total_ordering
@dataclass(frozen=True)
class TxID:
    """(view, seqno): unique, totally ordered transaction identifier."""

    view: int
    seqno: int

    def __str__(self) -> str:
        return f"{self.view}.{self.seqno}"

    @classmethod
    def parse(cls, text: str) -> "TxID":
        try:
            view_text, seqno_text = text.split(".")
            return cls(view=int(view_text), seqno=int(seqno_text))
        except ValueError:
            raise LedgerError(f"malformed transaction ID {text!r}") from None

    def __lt__(self, other: "TxID") -> bool:
        return (self.view, self.seqno) < (other.view, other.seqno)


# The transaction at seqno 0 does not exist; this sentinel is the "previous
# transaction ID" of the very first entry.
GENESIS_TXID = TxID(view=0, seqno=0)


_DECODE_CACHE: dict[bytes, "LedgerEntry"] = {}
_DECODE_CACHE_MAX = 50_000


class EntryKind(enum.Enum):
    """What an entry is for. Signature entries drive commit; reconfiguration
    entries change the consensus membership (they are also ordinary writes to
    the governance maps, section 4.4)."""

    USER = "user"
    SIGNATURE = "signature"
    RECONFIGURATION = "reconfiguration"


@dataclass(frozen=True)
class LedgerEntry:
    """One transaction as it appears in the ledger.

    ``public_writes`` is the plain-text public write set; ``private_blob`` is
    the AEAD-sealed encoding of the private write set (empty if none), sealed
    under ``secret_generation`` of the ledger secret.

    Entries are *write-once records*: instances are shared freely (the
    decoder caches them, replication passes them between ledgers) and must
    never be mutated — including the dicts inside ``public_writes``. To
    derive a modified entry (e.g. in adversarial tests), rebuild the write
    set from bytes: ``WriteSet.decode(entry.public_writes.encode())``.
    """

    txid: TxID
    kind: EntryKind
    public_writes: WriteSet
    private_blob: bytes = b""
    secret_generation: int = 0
    claims_digest: bytes = b""

    def leaf_data(self) -> bytes:
        """The canonical bytes hashed into the Merkle tree for this entry.

        Covers the transaction ID, kind, a digest of the public write set,
        a digest of the encrypted private payload, and the claims digest —
        so a receipt commits to all of them.
        """
        return encode_value(
            {
                "view": self.txid.view,
                "seqno": self.txid.seqno,
                "kind": self.kind.value,
                "public_digest": bytes(sha256(self.public_writes.encode())),
                "private_digest": bytes(sha256(self.private_blob)),
                "claims_digest": self.claims_digest,
            }
        )

    def digest(self) -> Digest:
        return sha256(self.leaf_data())

    def encode(self) -> bytes:
        """Full framing for replication and persistent storage.

        Memoized: entries are immutable and re-encoded on every
        append_entries batch they appear in.
        """
        cached = self.__dict__.get("_encoded")
        if cached is not None:
            return cached
        encoded = self._encode_uncached()
        object.__setattr__(self, "_encoded", encoded)
        return encoded

    def _encode_uncached(self) -> bytes:
        return encode_value(
            {
                "view": self.txid.view,
                "seqno": self.txid.seqno,
                "kind": self.kind.value,
                "public": self.public_writes.encode(),
                "private": self.private_blob,
                "generation": self.secret_generation,
                "claims_digest": self.claims_digest,
            }
        )

    @classmethod
    def decode(cls, data: bytes) -> "LedgerEntry":
        """Decode an entry from its framing. Memoized: heartbeat batches
        re-send recent entries, and every backup decodes each batch."""
        cached = _DECODE_CACHE.get(data)
        if cached is not None:
            return cached
        entry = cls._decode_uncached(data)
        if len(_DECODE_CACHE) >= _DECODE_CACHE_MAX:
            _DECODE_CACHE.clear()
        _DECODE_CACHE[data] = entry
        object.__setattr__(entry, "_encoded", data)
        return entry

    @classmethod
    def _decode_uncached(cls, data: bytes) -> "LedgerEntry":
        try:
            raw = decode_value(data)
            return cls(
                txid=TxID(view=raw["view"], seqno=raw["seqno"]),
                kind=EntryKind(raw["kind"]),
                public_writes=WriteSet.decode(raw["public"]),
                private_blob=raw["private"],
                secret_generation=raw["generation"],
                claims_digest=raw["claims_digest"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LedgerError(f"malformed ledger entry: {exc}") from exc

    @property
    def is_signature(self) -> bool:
        return self.kind is EntryKind.SIGNATURE

    @property
    def is_reconfiguration(self) -> bool:
        return self.kind is EntryKind.RECONFIGURATION


@dataclass(frozen=True)
class TxStatus:
    """Transaction status values of Figure 4."""

    UNKNOWN = "Unknown"
    PENDING = "Pending"
    COMMITTED = "Committed"
    INVALID = "Invalid"
