"""The integrity-protected, append-only ledger (sections 3.2 & 3.5).

Each committed transaction becomes a :class:`~repro.ledger.entry.LedgerEntry`
whose public write set is stored in plain text and whose private write set is
encrypted under the ledger secret. A Merkle tree is maintained over all
entries; *signature transactions* — periodic entries containing the primary's
signature over the Merkle root — provide integrity protection for the ledger
while it lives on untrusted storage, and define the points at which
transactions can commit. Receipts are offline-verifiable Merkle proofs
anchored at those signed roots.
"""

from repro.ledger.entry import LedgerEntry, TxID, EntryKind
from repro.ledger.ledger import Ledger, SIGNATURES_MAP
from repro.ledger.secrets import LedgerSecret, LedgerSecretStore
from repro.ledger.receipts import Receipt

__all__ = [
    "LedgerEntry",
    "TxID",
    "EntryKind",
    "Ledger",
    "SIGNATURES_MAP",
    "LedgerSecret",
    "LedgerSecretStore",
    "Receipt",
]
