"""ChaCha20 stream cipher (RFC 8439), from scratch.

Stands in for the AES256-GCM data path of the paper's ledger-secret
encryption (section 7); the AEAD construction lives in
:mod:`repro.crypto.aead`.
"""

from __future__ import annotations

import struct

from repro.errors import CryptoError

KEY_SIZE = 32
NONCE_SIZE = 12
BLOCK_SIZE = 64

_MASK = 0xFFFFFFFF
_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)


def _rotl(value: int, shift: int) -> int:
    return ((value << shift) | (value >> (32 - shift))) & _MASK


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl(state[b] ^ state[c], 7)


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """Produce one 64-byte keystream block."""
    if len(key) != KEY_SIZE:
        raise CryptoError("ChaCha20 key must be 32 bytes")
    if len(nonce) != NONCE_SIZE:
        raise CryptoError("ChaCha20 nonce must be 12 bytes")
    state = list(_CONSTANTS)
    state.extend(struct.unpack("<8L", key))
    state.append(counter & _MASK)
    state.extend(struct.unpack("<3L", nonce))
    working = state.copy()
    for _ in range(10):  # 20 rounds = 10 double rounds
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    output = [(w + s) & _MASK for w, s in zip(working, state)]
    return struct.pack("<16L", *output)


def chacha20_xor(key: bytes, nonce: bytes, data: bytes, initial_counter: int = 1) -> bytes:
    """Encrypt/decrypt ``data`` by XOR with the ChaCha20 keystream."""
    out = bytearray(len(data))
    for block_index in range(0, len(data), BLOCK_SIZE):
        keystream = chacha20_block(key, initial_counter + block_index // BLOCK_SIZE, nonce)
        chunk = data[block_index : block_index + BLOCK_SIZE]
        for i, byte in enumerate(chunk):
            out[block_index + i] = byte ^ keystream[i]
    return bytes(out)
