"""Poly1305 one-time authenticator (RFC 8439), from scratch."""

from __future__ import annotations

from repro.errors import CryptoError

TAG_SIZE = 16
KEY_SIZE = 32

_P = (1 << 130) - 5
_R_CLAMP = 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Compute the 16-byte Poly1305 tag of ``message`` under ``key``.

    ``key`` is the 32-byte one-time key (r || s); reuse across messages
    breaks the MAC, so callers derive it per-nonce (see :mod:`aead`).
    """
    if len(key) != KEY_SIZE:
        raise CryptoError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & _R_CLAMP
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    for offset in range(0, len(message), 16):
        block = message[offset : offset + 16]
        n = int.from_bytes(block + b"\x01", "little")
        accumulator = ((accumulator + n) * r) % _P
    accumulator = (accumulator + s) & ((1 << 128) - 1)
    return accumulator.to_bytes(TAG_SIZE, "little")


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit.

    Alias of :func:`repro.crypto.ct.ct_eq`, kept for the AEAD call sites
    that predate the central helper.
    """
    from repro.crypto.ct import ct_eq

    return ct_eq(a, b)
