"""Shamir k-of-n secret sharing over a prime field.

Implements the recovery-share scheme of section 5.2: the ledger-secret
wrapping key is split into ``n`` shares such that any ``k`` reconstruct it
and fewer than ``k`` reveal nothing. We work over GF(p) with
p = 2**256 + 297 (the smallest prime above 2**256), so any 32-byte secret is
a valid field element.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import CryptoError, RecoveryError

PRIME = 2**256 + 297
SECRET_SIZE = 32
SHARE_SIZE = 33  # field elements may exceed 2**256, so one extra byte


@dataclass(frozen=True)
class Share:
    """One share: the evaluation of the secret polynomial at ``x = index``."""

    index: int  # 1-based; x = 0 is the secret itself
    value: int

    def encode(self) -> bytes:
        return bytes([self.index]) + self.value.to_bytes(SHARE_SIZE, "big")

    @classmethod
    def decode(cls, data: bytes) -> "Share":
        if len(data) != 1 + SHARE_SIZE:
            raise CryptoError("malformed share encoding")
        return cls(index=data[0], value=int.from_bytes(data[1:], "big"))


def split(secret: bytes, threshold: int, num_shares: int, rng: random.Random) -> list[Share]:
    """Split a 32-byte ``secret`` into ``num_shares`` shares, ``threshold`` to recover."""
    if len(secret) != SECRET_SIZE:
        raise CryptoError(f"secret must be {SECRET_SIZE} bytes")
    if not 1 <= threshold <= num_shares:
        raise CryptoError("require 1 <= threshold <= num_shares")
    if num_shares >= PRIME or num_shares > 255:
        raise CryptoError("too many shares")
    coefficients = [int.from_bytes(secret, "big")]
    coefficients += [rng.randrange(PRIME) for _ in range(threshold - 1)]
    shares = []
    for index in range(1, num_shares + 1):
        # Horner evaluation of the polynomial at x = index.
        value = 0
        for coefficient in reversed(coefficients):
            value = (value * index + coefficient) % PRIME
        shares.append(Share(index=index, value=value))
    return shares


def combine(shares: list[Share]) -> bytes:
    """Reconstruct the secret from at least ``threshold`` distinct shares.

    Combining fewer than the threshold yields an incorrect secret, not an
    error — Shamir's scheme cannot detect insufficiency by itself; the
    recovery protocol detects it because the reconstructed wrapping key
    fails to authenticate the encrypted ledger secret.
    """
    if not shares:
        raise RecoveryError("no shares supplied")
    indices = [share.index for share in shares]
    if len(set(indices)) != len(indices):
        raise RecoveryError("duplicate share indices")
    secret = 0
    for i, share_i in enumerate(shares):
        numerator, denominator = 1, 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = (numerator * (-share_j.index)) % PRIME
            denominator = (denominator * (share_i.index - share_j.index)) % PRIME
        lagrange = numerator * pow(denominator, -1, PRIME)
        secret = (secret + share_i.value * lagrange) % PRIME
    if secret >= 1 << (8 * SECRET_SIZE):
        raise RecoveryError("reconstructed value is not a valid secret")
    return secret.to_bytes(SECRET_SIZE, "big")
