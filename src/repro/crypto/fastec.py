"""Fast-path P-256 scalar multiplication: comb tables and interleaved wNAF.

:mod:`repro.crypto.ec` implements ``k * P`` as plain double-and-add — ~256
doublings plus ~128 additions per multiplication — and ECDSA verification
pays for two of those ladders. Every protocol-visible artifact in the
reproduction (signature transactions over Merkle roots, receipts, channel
establishment, attestation quotes, member-signed governance) bottoms out in
that ladder, and the span profiler attributes most host wall-clock to it.

This module applies the standard fast-path techniques:

- **Fixed-base comb** (:class:`FixedBaseTable`): the scalar is split into
  4-bit windows and ``sum(d_i * 2^(4i) * P)`` is looked up from a table
  precomputed once per base point — ~64 additions and *zero* doublings per
  multiplication. The generator's table is built at import; verification
  promotes hot public keys to their own tables (see below).
- **Interleaved wNAF double-scalar multiplication**
  (:func:`double_scalar_mult`): ``u1*G + u2*Q`` — the shape of ECDSA
  verification — computes the ``G`` half from the comb and the ``Q`` half
  with a width-5 wNAF ladder over precomputed odd multiples of ``Q``.
- **Per-point promotion**: the odd-multiples table for ``Q`` is cached, and
  after :data:`PROMOTE_AFTER` multiplications against the same point a full
  comb table is built for it, eliminating the ladder's 256 doublings too.
  This is the common case in the protocol: followers re-verify one
  primary's signature transactions, auditors replay one node's receipts.

Fast-path discipline (DESIGN.md): the functions here are **bit-identical**
to the reference ladder — same affine points, same encodings — and the
reference stays in :mod:`repro.crypto.ec` as the differential-test oracle.
Nothing here touches simulated time (`repro.perf.CostModel` charges are
unchanged) or draws randomness; only host wall-clock improves.
"""

from __future__ import annotations

from repro.crypto.ec import (
    _JINF,
    _JPoint,
    _from_jacobian,
    _jadd,
    _jdouble,
    _to_jacobian,
    GENERATOR,
    N,
    P,
    Point,
    INFINITY,
)

# Comb window width: 4 bits -> 64 windows, 15 table entries per window.
COMB_WINDOW = 4
_COMB_WINDOWS = (256 + COMB_WINDOW - 1) // COMB_WINDOW
_COMB_MASK = (1 << COMB_WINDOW) - 1

# wNAF window width for the non-fixed point in double-scalar multiplication:
# odd multiples P, 3P, ..., 15P (8 entries), ~43 additions per 256-bit scalar.
WNAF_WIDTH = 5

# A point graduates from the wNAF odd-multiples table to a full comb table
# after this many multiplications. Building a comb costs roughly five
# fast-path multiplications, so the break-even against repeated ladders
# arrives quickly for any key verified more than a handful of times.
PROMOTE_AFTER = 3

# How many distinct points may hold cached tables at once. A consortium has
# a handful of node/member/user keys; 128 is generous. The cache clears
# wholesale when full (the repo's standard bounded-memo idiom).
POINT_CACHE_MAX = 128

# Cache-behaviour counters, exported via repro.obs.metrics as
# ``fastpath.fastec.*`` (see ObsCollector.export_fastpath_stats).
STATS = {
    "fastec.generator_mults": 0,
    "fastec.wnaf_mults": 0,
    "fastec.double_mults": 0,
    "fastec.point_cache_hits": 0,
    "fastec.point_cache_misses": 0,
    "fastec.comb_promotions": 0,
}


class FixedBaseTable:
    """Precomputed multiples of one base point for comb multiplication.

    ``table[i][j-1] = j * 2^(COMB_WINDOW * i) * base`` for ``j`` in
    ``1 .. 2^COMB_WINDOW - 1``, built from the reference Jacobian
    primitives so every looked-up point is exactly what the ladder would
    have produced.
    """

    __slots__ = ("base", "_rows")

    def __init__(self, base: Point):
        self.base = base
        rows: list[list[_JPoint]] = []
        running = _to_jacobian(base)
        for _ in range(_COMB_WINDOWS):
            row = [running]
            for _ in range(2, 1 << COMB_WINDOW):
                row.append(_jadd(row[-1], running))
            rows.append(row)
            for _ in range(COMB_WINDOW):
                running = _jdouble(running)
        self._rows = rows

    def mult_jacobian(self, k: int) -> _JPoint:
        """``k * base`` in Jacobian coordinates; ``k`` already reduced."""
        acc = _JINF
        rows = self._rows
        i = 0
        while k:
            digit = k & _COMB_MASK
            if digit:
                acc = _jadd(acc, rows[i][digit - 1])
            k >>= COMB_WINDOW
            i += 1
        return acc

    def mult(self, k: int) -> Point:
        """``(k mod N) * base`` as an affine point."""
        k %= N
        if k == 0 or self.base.is_infinity:
            return INFINITY
        return _from_jacobian(self.mult_jacobian(k))


_GENERATOR_TABLE = FixedBaseTable(GENERATOR)


def generator_mult(k: int) -> Point:
    """``k * G`` via the precomputed generator comb (signing, keygen)."""
    STATS["fastec.generator_mults"] += 1
    return _GENERATOR_TABLE.mult(k)


# ----------------------------------------------------------------------
# wNAF: width-w non-adjacent form with precomputed odd multiples.


def _wnaf_digits(k: int, width: int) -> list[int]:
    """Signed digits of ``k``: each nonzero digit is odd and |d| < 2^(w-1),
    with at least ``width - 1`` zeros between nonzero digits."""
    digits: list[int] = []
    window = 1 << width
    half = window >> 1
    while k:
        if k & 1:
            digit = k & (window - 1)
            if digit >= half:
                digit -= window
            k -= digit
        else:
            digit = 0
        digits.append(digit)
        k >>= 1
    return digits


def _odd_multiples(jp: _JPoint, width: int) -> list[_JPoint]:
    """``[P, 3P, 5P, ..., (2^(w-1) - 1) P]`` in Jacobian coordinates."""
    multiples = [jp]
    double = _jdouble(jp)
    for _ in range((1 << (width - 2)) - 1):
        multiples.append(_jadd(multiples[-1], double))
    return multiples


def _jneg(jp: _JPoint) -> _JPoint:
    x, y, z = jp
    return (x, (P - y) % P, z)


def _wnaf_ladder(k: int, odd: list[_JPoint]) -> _JPoint:
    """``k * P`` where ``odd`` holds the precomputed odd multiples of P."""
    acc = _JINF
    for digit in reversed(_wnaf_digits(k, WNAF_WIDTH)):
        acc = _jdouble(acc)
        if digit > 0:
            acc = _jadd(acc, odd[digit >> 1])
        elif digit < 0:
            acc = _jadd(acc, _jneg(odd[(-digit) >> 1]))
    return acc


# ----------------------------------------------------------------------
# Per-point table cache (verification against a hot public key).


class _PointTables:
    """Cached precomputation for one non-generator point: the cheap wNAF
    odd-multiples table immediately, a full comb once the point proves hot."""

    __slots__ = ("odd", "comb", "uses")

    def __init__(self, point: Point):
        self.odd = _odd_multiples(_to_jacobian(point), WNAF_WIDTH)
        self.comb: FixedBaseTable | None = None
        self.uses = 0

    def mult_jacobian(self, point: Point, k: int) -> _JPoint:
        self.uses += 1
        if self.comb is None and self.uses > PROMOTE_AFTER:
            self.comb = FixedBaseTable(point)
            STATS["fastec.comb_promotions"] += 1
        if self.comb is not None:
            return self.comb.mult_jacobian(k)
        return _wnaf_ladder(k, self.odd)


_POINT_TABLES: dict[tuple[int, int], _PointTables] = {}


def _tables_for(point: Point) -> _PointTables:
    key = (point.x, point.y)
    tables = _POINT_TABLES.get(key)
    if tables is None:
        STATS["fastec.point_cache_misses"] += 1
        if len(_POINT_TABLES) >= POINT_CACHE_MAX:
            _POINT_TABLES.clear()
        tables = _PointTables(point)
        _POINT_TABLES[key] = tables
    else:
        STATS["fastec.point_cache_hits"] += 1
    return tables


def wnaf_mult(k: int, point: Point) -> Point:
    """``k * point`` for an arbitrary point, via the cached wNAF/comb
    tables. Bit-identical to :func:`repro.crypto.ec.scalar_mult`."""
    STATS["fastec.wnaf_mults"] += 1
    k %= N
    if k == 0 or point.is_infinity:
        return INFINITY
    return _from_jacobian(_tables_for(point).mult_jacobian(point, k))


def double_scalar_mult(u1: int, u2: int, point: Point) -> Point:
    """``u1 * G + u2 * point`` — the ECDSA verification shape.

    The generator half comes from the import-time comb (no doublings); the
    ``point`` half uses the per-point cache, so repeated verifications
    against the same key run entirely on table lookups.
    """
    STATS["fastec.double_mults"] += 1
    u1 %= N
    u2 %= N
    acc_g = _GENERATOR_TABLE.mult_jacobian(u1) if u1 else _JINF
    if u2 == 0 or point.is_infinity:
        return _from_jacobian(acc_g)
    acc_q = _tables_for(point).mult_jacobian(point, u2)
    return _from_jacobian(_jadd(acc_g, acc_q))


def reset_stats() -> None:
    """Zero the counters (benchmark and test isolation)."""
    for key in STATS:
        STATS[key] = 0


def clear_point_cache() -> None:
    """Drop all cached per-point tables (test isolation)."""
    _POINT_TABLES.clear()
