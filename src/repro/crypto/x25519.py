"""Curve25519 Diffie-Hellman (X25519), from scratch.

CCF uses Diffie-Hellman key exchange for node-to-node message headers and
forwarding (section 7). We implement RFC 7748 X25519 with the Montgomery
ladder; shared secrets feed HKDF to derive channel keys.
"""

from __future__ import annotations

from repro.crypto.hashing import sha256
from repro.errors import CryptoError

P = 2**255 - 19
A24 = 121665
BASE_POINT = 9
KEY_SIZE = 32


def _clamp(scalar_bytes: bytes) -> int:
    if len(scalar_bytes) != KEY_SIZE:
        raise CryptoError("X25519 scalar must be 32 bytes")
    raw = bytearray(scalar_bytes)
    raw[0] &= 248
    raw[31] &= 127
    raw[31] |= 64
    return int.from_bytes(raw, "little")


def _decode_u(u_bytes: bytes) -> int:
    if len(u_bytes) != KEY_SIZE:
        raise CryptoError("X25519 point must be 32 bytes")
    raw = bytearray(u_bytes)
    raw[31] &= 127  # mask the high bit per RFC 7748
    return int.from_bytes(raw, "little") % P


def _ladder(k: int, u: int) -> int:
    """Constant-structure Montgomery ladder computing k * u."""
    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for t in reversed(range(255)):
        k_t = (k >> t) & 1
        swap ^= k_t
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = k_t
        a = (x2 + z2) % P
        aa = (a * a) % P
        b = (x2 - z2) % P
        bb = (b * b) % P
        e = (aa - bb) % P
        c = (x3 + z3) % P
        d = (x3 - z3) % P
        da = (d * a) % P
        cb = (c * b) % P
        x3 = (da + cb) % P
        x3 = (x3 * x3) % P
        z3 = (da - cb) % P
        z3 = (x1 * z3 * z3) % P
        x2 = (aa * bb) % P
        z2 = (e * (aa + A24 * e)) % P
    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2
    return (x2 * pow(z2, P - 2, P)) % P


def x25519(scalar_bytes: bytes, u_bytes: bytes) -> bytes:
    """RFC 7748 X25519: multiply point ``u`` by clamped ``scalar``."""
    k = _clamp(scalar_bytes)
    u = _decode_u(u_bytes)
    result = _ladder(k, u)
    if result == 0:
        raise CryptoError("X25519 produced the all-zero shared secret")
    return result.to_bytes(KEY_SIZE, "little")


class DHPrivateKey:
    """An X25519 private key with its public point."""

    def __init__(self, private_bytes: bytes):
        if len(private_bytes) != KEY_SIZE:
            raise CryptoError("X25519 private key must be 32 bytes")
        self._private = private_bytes
        self.public = x25519(private_bytes, BASE_POINT.to_bytes(KEY_SIZE, "little"))

    @classmethod
    def generate(cls, seed: bytes) -> "DHPrivateKey":
        """Derive a private key deterministically from ``seed``."""
        return cls(bytes(sha256(b"x25519-keygen", seed)))

    def exchange(self, peer_public: bytes) -> bytes:
        """Compute the 32-byte shared secret with ``peer_public``."""
        return x25519(self._private, peer_public)

    def __repr__(self) -> str:  # pragma: no cover
        return f"DHPrivateKey(pub={self.public.hex()[:16]}…)"
