"""Cryptographic primitives, implemented from scratch for the reproduction.

The real CCF uses OpenSSL, merklecpp, and SGX sealing. This package provides
pure-Python equivalents with the same protocol-visible interfaces:

- :mod:`repro.crypto.hashing` — SHA-256 helpers and digest types.
- :mod:`repro.crypto.ec` / :mod:`repro.crypto.ecdsa` — NIST P-256 arithmetic
  and ECDSA with deterministic (RFC 6979 style) nonces.
- :mod:`repro.crypto.x25519` — Curve25519 Diffie-Hellman for node channels.
- :mod:`repro.crypto.chacha20` / :mod:`repro.crypto.poly1305` /
  :mod:`repro.crypto.aead` — the ChaCha20-Poly1305 AEAD used in place of the
  paper's AES256-GCM for ledger-secret encryption.
- :mod:`repro.crypto.hkdf` — HKDF-SHA256 key derivation.
- :mod:`repro.crypto.ecies` — asymmetric encryption of recovery shares
  (stands in for RSA-OAEP).
- :mod:`repro.crypto.shamir` — k-of-n secret sharing for disaster recovery.
- :mod:`repro.crypto.certs` — lightweight certificates (X.509 stand-in).
- :mod:`repro.crypto.cose` — COSE-Sign1-style signed request envelopes.
- :mod:`repro.crypto.merkle` — the append-only Merkle history tree backing
  signature transactions and receipts.
"""

from repro.crypto.hashing import Digest, sha256
from repro.crypto.ct import ct_eq
from repro.crypto.ecdsa import SigningKey, VerifyingKey
from repro.crypto.aead import AEADKey
from repro.crypto.certs import Certificate
from repro.crypto.merkle import MerkleTree, MerkleProof

__all__ = [
    "Digest",
    "sha256",
    "ct_eq",
    "SigningKey",
    "VerifyingKey",
    "AEADKey",
    "Certificate",
    "MerkleTree",
    "MerkleProof",
]
