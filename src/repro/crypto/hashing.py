"""SHA-256 hashing helpers.

SHA-256 is the collision-resistant hash assumed by the paper's threat model
(section 2) and used by CCF's Merkle tree (section 7). We use the standard
library implementation — it is a primitive, not a system under study — and
wrap it in a small :class:`Digest` type so call sites are explicit about
what is a digest versus arbitrary bytes.
"""

from __future__ import annotations

import hashlib

DIGEST_SIZE = 32


class Digest(bytes):
    """A 32-byte SHA-256 digest.

    Subclassing ``bytes`` keeps digests hashable, comparable, and directly
    serializable while letting signatures declare their intent.
    """

    def __new__(cls, data: bytes) -> "Digest":
        if len(data) != DIGEST_SIZE:
            raise ValueError(f"digest must be {DIGEST_SIZE} bytes, got {len(data)}")
        return super().__new__(cls, data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Digest({self.hex()[:16]}…)"


def sha256(*chunks: bytes) -> Digest:
    """Hash the concatenation of ``chunks`` and return a :class:`Digest`."""
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
    return Digest(h.digest())


def hmac_sha256(key: bytes, *chunks: bytes) -> Digest:
    """HMAC-SHA256 over the concatenation of ``chunks``."""
    import hmac

    h = hmac.new(key, digestmod=hashlib.sha256)
    for chunk in chunks:
        h.update(chunk)
    return Digest(h.digest())
