"""Append-only Merkle history tree (RFC 6962 structure).

This is the tree of section 3.2: each leaf is (a hash of) one ledger
transaction, the root is a cryptographic commitment to the whole ledger
prefix, and signature transactions sign that root. Receipts (section 3.5)
carry the leaf-to-root *Merkle proof* — e.g. the paper's
``[(right, d8), (left, d56), (left, d1234), (right, d910)]`` for
transaction 1.7.

Design notes:

- Appending is O(1) amortized via a "mountain range" of perfect-subtree
  peaks; computing the current root bags the peaks in O(log n).
- Proof generation recurses over the RFC 6962 split, memoizing hashes of
  aligned perfect subtrees so repeated receipt generation stays cheap.
- ``retract_to`` supports consensus rollback after an election (section 4.2):
  truncating to a previous size must yield the exact tree a node that never
  saw the discarded entries would have.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ct import ct_eq
from repro.crypto.hashing import Digest, sha256
from repro.errors import IntegrityError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def leaf_hash(data: bytes) -> Digest:
    """Domain-separated hash of a leaf's content."""
    return sha256(_LEAF_PREFIX, data)


def node_hash(left: bytes, right: bytes) -> Digest:
    """Domain-separated hash of two child digests."""
    return sha256(_NODE_PREFIX, left, right)


def _largest_power_of_two_below(n: int) -> int:
    """The split point k of RFC 6962: the largest power of two < n."""
    if n <= 1:
        raise IntegrityError(f"cannot split a subtree of size {n}")
    k = 1 << (n.bit_length() - 1)
    return k // 2 if k == n else k


@dataclass(frozen=True)
class ProofStep:
    """One step of a Merkle proof: the sibling digest and its side.

    ``side == "right"`` means the sibling subtree lies to the right of the
    path (the running hash goes on the left), matching the notation of the
    paper's Figure 3 example.
    """

    side: str  # "left" or "right"
    digest: Digest


@dataclass(frozen=True)
class MerkleProof:
    """A leaf-to-root inclusion proof for ``leaf_index`` in a tree of ``tree_size``."""

    leaf_index: int
    tree_size: int
    steps: tuple[ProofStep, ...]

    def compute_root(self, leaf: Digest) -> Digest:
        """Fold the proof over the leaf hash, returning the implied root."""
        current = leaf
        for step in self.steps:
            if step.side == "right":
                current = node_hash(current, step.digest)
            elif step.side == "left":
                current = node_hash(step.digest, current)
            else:
                raise IntegrityError(f"malformed proof step side {step.side!r}")
        return current

    def verify(self, leaf_data: bytes, expected_root: Digest) -> None:
        """Check that ``leaf_data`` is committed at ``leaf_index`` under ``expected_root``."""
        if not ct_eq(self.compute_root(leaf_hash(leaf_data)), expected_root):
            raise IntegrityError("Merkle proof does not reach the expected root")

    def to_dict(self) -> dict:
        return {
            "leaf_index": self.leaf_index,
            "tree_size": self.tree_size,
            "steps": [[step.side, step.digest.hex()] for step in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MerkleProof":
        return cls(
            leaf_index=data["leaf_index"],
            tree_size=data["tree_size"],
            steps=tuple(
                ProofStep(side, Digest(bytes.fromhex(digest_hex)))
                for side, digest_hex in data["steps"]
            ),
        )


EMPTY_ROOT = sha256(b"")  # root of the empty tree, per RFC 6962


class MerkleTree:
    """Incremental Merkle tree over an append-only sequence of leaves."""

    def __init__(self) -> None:
        self._leaves: list[Digest] = []
        # Peaks of perfect subtrees, largest first; peak i covers 2**height[i] leaves.
        self._peaks: list[Digest] = []
        self._peak_sizes: list[int] = []
        # Memoized hashes of aligned perfect subtrees: (start, size) -> digest.
        self._subtree_cache: dict[tuple[int, int], Digest] = {}
        # Memoized ragged-spine roots: (start, size) -> digest for arbitrary
        # historical subranges. A subrange over leaves that already exist is
        # frozen — appends never change it — so entries stay valid until a
        # retract discards leaves under them.
        self._spine_cache: dict[tuple[int, int], Digest] = {}

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def size(self) -> int:
        return len(self._leaves)

    def append(self, data: bytes) -> Digest:
        """Append a leaf; returns its leaf hash."""
        digest = leaf_hash(data)
        self.append_leaf_hash(digest)
        return digest

    def append_leaf_hash(self, digest: Digest) -> None:
        """Append a precomputed leaf hash (used when replaying a ledger)."""
        self._leaves.append(digest)
        self._peaks.append(digest)
        self._peak_sizes.append(1)
        # Merge equal-sized peaks, keeping the mountain range canonical.
        while len(self._peak_sizes) >= 2 and self._peak_sizes[-1] == self._peak_sizes[-2]:
            right = self._peaks.pop()
            left = self._peaks.pop()
            size = self._peak_sizes.pop()
            self._peak_sizes.pop()
            merged = node_hash(left, right)
            start = len(self._leaves) - 2 * size
            self._subtree_cache[(start, 2 * size)] = merged
            self._peaks.append(merged)
            self._peak_sizes.append(2 * size)

    def extend(self, leaf_data: list[bytes]) -> None:
        """Append many leaves in one call (batched ledger replay).

        Semantically identical to ``append`` in a loop — same leaves, same
        peaks, same subtree cache entries — but runs the hash/merge loop
        over local variables, so per-leaf Python overhead is paid once per
        batch instead of once per leaf."""
        leaves = self._leaves
        peaks = self._peaks
        peak_sizes = self._peak_sizes
        cache = self._subtree_cache
        for data in leaf_data:
            digest = leaf_hash(data)
            leaves.append(digest)
            peaks.append(digest)
            peak_sizes.append(1)
            while len(peak_sizes) >= 2 and peak_sizes[-1] == peak_sizes[-2]:
                right = peaks.pop()
                left = peaks.pop()
                size = peak_sizes.pop()
                peak_sizes.pop()
                merged = node_hash(left, right)
                cache[(len(leaves) - 2 * size, 2 * size)] = merged
                peaks.append(merged)
                peak_sizes.append(2 * size)

    def root(self) -> Digest:
        """The current Merkle root (a commitment to all appended leaves)."""
        if not self._peaks:
            return EMPTY_ROOT
        # Bag the peaks right-to-left, per the RFC 6962 recursion.
        current = self._peaks[-1]
        for peak in reversed(self._peaks[:-1]):
            current = node_hash(peak, current)
        return current

    def leaf(self, index: int) -> Digest:
        """The stored leaf hash at ``index``."""
        return self._leaves[index]

    def retract_to(self, size: int) -> None:
        """Discard all leaves at index >= ``size`` (consensus rollback)."""
        if size < 0 or size > len(self._leaves):
            raise IntegrityError(f"cannot retract to size {size}")
        if size == len(self._leaves):
            return
        del self._leaves[size:]
        self._subtree_cache = {
            key: value for key, value in self._subtree_cache.items() if key[0] + key[1] <= size
        }
        self._spine_cache = {
            key: value for key, value in self._spine_cache.items() if key[0] + key[1] <= size
        }
        self._rebuild_peaks()

    def _rebuild_peaks(self) -> None:
        self._peaks = []
        self._peak_sizes = []
        remaining = len(self._leaves)
        start = 0
        while remaining:
            size = 1 << (remaining.bit_length() - 1)
            self._peaks.append(self._range_hash(start, size))
            self._peak_sizes.append(size)
            start += size
            remaining -= size

    def _range_hash(self, start: int, size: int) -> Digest:
        """Hash of the subtree covering leaves [start, start+size)."""
        if size == 1:
            return self._leaves[start]
        cached = self._subtree_cache.get((start, size))
        if cached is not None:
            return cached
        k = _largest_power_of_two_below(size)
        digest = node_hash(self._range_hash(start, k), self._range_hash(start + k, size - k))
        # Only memoize aligned perfect subtrees; ragged right edges change
        # as leaves are appended.
        if size & (size - 1) == 0 and start % size == 0:
            self._subtree_cache[(start, size)] = digest
        return digest

    def root_at(self, size: int) -> Digest:
        """The root the tree had when it contained exactly ``size`` leaves."""
        if size < 0 or size > len(self._leaves):
            raise IntegrityError(f"no root for size {size}")
        if size == 0:
            return EMPTY_ROOT
        return self._subrange_root(0, size)

    def _subrange_root(self, start: int, size: int) -> Digest:
        if size == 1:
            return self._leaves[start]
        # Perfect aligned subtrees live in _subtree_cache (filled at merge
        # time); everything else is a ragged right spine whose value is
        # frozen once its leaves exist, so memoize it too. This is what
        # keeps root_at/proof at O(log n) hashes instead of recomputing the
        # spine per call.
        if size & (size - 1) == 0 and start % size == 0:
            return self._range_hash(start, size)
        cached = self._spine_cache.get((start, size))
        if cached is not None:
            return cached
        k = _largest_power_of_two_below(size)
        digest = node_hash(
            self._range_hash(start, k), self._subrange_root(start + k, size - k)
        )
        self._spine_cache[(start, size)] = digest
        return digest

    def proof(self, leaf_index: int, tree_size: int | None = None) -> MerkleProof:
        """Inclusion proof for ``leaf_index`` against the root at ``tree_size``.

        Receipts are issued against the root signed by a *subsequent*
        signature transaction, so the proof must target that historical tree
        size, not necessarily the current one.
        """
        size = self.size if tree_size is None else tree_size
        if not 0 <= leaf_index < size <= self.size:
            raise IntegrityError(
                f"invalid proof request: leaf {leaf_index} of size {size} "
                f"(tree has {self.size})"
            )
        steps = self._path(leaf_index, 0, size)
        return MerkleProof(leaf_index=leaf_index, tree_size=size, steps=tuple(steps))

    def _path(self, index: int, start: int, size: int) -> list[ProofStep]:
        """RFC 6962 PATH recursion; ``index`` is relative to ``start``."""
        if size == 1:
            return []
        k = _largest_power_of_two_below(size)
        if index < k:
            steps = self._path(index, start, k)
            sibling = self._subrange_root(start + k, size - k)
            steps.append(ProofStep("right", sibling))
        else:
            steps = self._path(index - k, start + k, size - k)
            sibling = self._range_hash(start, k)
            steps.append(ProofStep("left", sibling))
        return steps
