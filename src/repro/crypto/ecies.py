"""ECIES: asymmetric encryption of small payloads to a public key.

Stands in for the paper's RSA-OAEP encryption of recovery shares
(section 5.2): each Shamir share of the ledger-secret wrapping key is
encrypted to one consortium member's public encryption key so that only
that member can submit it during disaster recovery.

Construction: ephemeral X25519 → HKDF-SHA256 → ChaCha20-Poly1305. The
ephemeral key is derived deterministically from (sender entropy, recipient,
plaintext) so the simulation stays reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.aead import AEADKey
from repro.crypto.hashing import sha256
from repro.crypto.hkdf import hkdf
from repro.crypto.x25519 import KEY_SIZE, DHPrivateKey
from repro.errors import VerificationError

_NONCE = b"\x00" * 12  # fresh key per message, so a fixed nonce is safe
_INFO = b"repro-ecies-v1"


@dataclass(frozen=True)
class EncryptionKeyPair:
    """A member's long-term encryption key pair (Table 3, members_keys)."""

    private: DHPrivateKey

    @classmethod
    def generate(cls, seed: bytes) -> "EncryptionKeyPair":
        return cls(DHPrivateKey.generate(seed))

    @property
    def public(self) -> bytes:
        return self.private.public

    def decrypt(self, box: bytes) -> bytes:
        """Open an ECIES box addressed to this key pair."""
        if len(box) < KEY_SIZE:
            raise VerificationError("ECIES box too short")
        ephemeral_public, sealed = box[:KEY_SIZE], box[KEY_SIZE:]
        shared = self.private.exchange(ephemeral_public)
        key = AEADKey(hkdf(shared, _INFO + ephemeral_public + self.public, 32))
        return key.open(_NONCE, sealed)


def encrypt(recipient_public: bytes, plaintext: bytes, entropy: bytes) -> bytes:
    """Encrypt ``plaintext`` to ``recipient_public``.

    ``entropy`` seeds the ephemeral key; callers pass simulation-seeded
    randomness so encryption is deterministic per run yet unique per message.
    """
    ephemeral = DHPrivateKey.generate(
        bytes(sha256(b"ecies-eph", entropy, recipient_public, plaintext))
    )
    shared = ephemeral.exchange(recipient_public)
    key = AEADKey(hkdf(shared, _INFO + ephemeral.public + recipient_public, 32))
    return ephemeral.public + key.seal(_NONCE, plaintext)
