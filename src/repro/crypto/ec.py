"""NIST P-256 (secp256r1) elliptic-curve arithmetic, from scratch.

This is the curve behind CCF's node and service identities (X.509 / ECDSA in
the real system). Points are represented in Jacobian coordinates internally
for speed; the public API deals in affine ``(x, y)`` pairs and compressed
33-byte encodings.

The implementation is deliberately straightforward (double-and-add with a
fixed window) rather than constant-time: the reproduction's threat model does
not include timing side channels on the simulator host.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CryptoError

# Curve parameters for secp256r1 (FIPS 186-4, D.1.2.3).
P = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
A = P - 3
B = 0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B
N = 0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551
GX = 0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296
GY = 0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5

COORD_SIZE = 32
COMPRESSED_SIZE = 1 + COORD_SIZE


@dataclass(frozen=True)
class Point:
    """An affine point on P-256, or the point at infinity (``x is None``)."""

    x: int | None
    y: int | None

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def encode(self) -> bytes:
        """Compressed SEC1 encoding: ``02|03 || x``.

        Memoized per instance: points are immutable and the same node/user
        keys are re-encoded on every certificate and envelope they appear
        in."""
        cached = self.__dict__.get("_encoded")
        if cached is not None:
            return cached
        if self.x is None or self.y is None:
            raise CryptoError("cannot encode the point at infinity")
        prefix = b"\x03" if self.y & 1 else b"\x02"
        encoded = prefix + self.x.to_bytes(COORD_SIZE, "big")
        object.__setattr__(self, "_encoded", encoded)
        return encoded


INFINITY = Point(None, None)
GENERATOR = Point(GX, GY)


def _inv_mod(value: int, modulus: int) -> int:
    """Modular inverse via Python's built-in extended-gcd pow."""
    return pow(value, -1, modulus)


# Jacobian coordinates: (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
_JPoint = tuple[int, int, int]
_JINF: _JPoint = (0, 1, 0)


def _to_jacobian(point: Point) -> _JPoint:
    if point.x is None or point.y is None:
        return _JINF
    return (point.x, point.y, 1)


def _from_jacobian(jp: _JPoint) -> Point:
    x, y, z = jp
    if z == 0:
        return INFINITY
    z_inv = _inv_mod(z, P)
    z_inv2 = (z_inv * z_inv) % P
    return Point((x * z_inv2) % P, (y * z_inv2 * z_inv) % P)


def _jdouble(jp: _JPoint) -> _JPoint:
    x, y, z = jp
    if z == 0 or y == 0:
        return _JINF
    ysq = (y * y) % P
    s = (4 * x * ysq) % P
    z2 = (z * z) % P
    # m = 3x^2 + a z^4; with a = -3 this factors nicely.
    m = (3 * (x - z2) * (x + z2)) % P
    nx = (m * m - 2 * s) % P
    ny = (m * (s - nx) - 8 * ysq * ysq) % P
    nz = (2 * y * z) % P
    return (nx, ny, nz)


def _jadd(jp: _JPoint, jq: _JPoint) -> _JPoint:
    x1, y1, z1 = jp
    x2, y2, z2 = jq
    if z1 == 0:
        return jq
    if z2 == 0:
        return jp
    z1sq = (z1 * z1) % P
    z2sq = (z2 * z2) % P
    u1 = (x1 * z2sq) % P
    u2 = (x2 * z1sq) % P
    s1 = (y1 * z2sq * z2) % P
    s2 = (y2 * z1sq * z1) % P
    if u1 == u2:
        if s1 != s2:
            return _JINF
        return _jdouble(jp)
    h = (u2 - u1) % P
    r = (s2 - s1) % P
    hsq = (h * h) % P
    hcu = (hsq * h) % P
    u1hsq = (u1 * hsq) % P
    nx = (r * r - hcu - 2 * u1hsq) % P
    ny = (r * (u1hsq - nx) - s1 * hcu) % P
    nz = (h * z1 * z2) % P
    return (nx, ny, nz)


def scalar_mult(k: int, point: Point) -> Point:
    """Compute ``k * point`` using double-and-add on Jacobian coordinates.

    This is the *reference* ladder: :mod:`repro.crypto.fastec` provides the
    fast paths (comb tables, interleaved wNAF) that production code uses,
    and the differential tests hold them bit-identical to this function.
    Keep it plain — it is the oracle.
    """
    k %= N
    if k == 0 or point.is_infinity:
        return INFINITY
    result = _JINF
    addend = _to_jacobian(point)
    while k:
        if k & 1:
            result = _jadd(result, addend)
        addend = _jdouble(addend)
        k >>= 1
    return _from_jacobian(result)


def point_add(p: Point, q: Point) -> Point:
    """Affine point addition (used by ECDSA verification)."""
    return _from_jacobian(_jadd(_to_jacobian(p), _to_jacobian(q)))


def is_on_curve(point: Point) -> bool:
    """Check the affine curve equation ``y^2 = x^3 + ax + b`` (mod p)."""
    if point.x is None or point.y is None:
        return True
    x, y = point.x, point.y
    return (y * y - (x * x * x + A * x + B)) % P == 0


# Bounded decode memo: decompressing a point costs a modular square root,
# and the same handful of peer keys arrives on every channel message and
# certificate. Only successful decodes are cached (malformed input must
# fail identically every time). Counters are exported via repro.obs.metrics
# as ``fastpath.decode_point.*``.
_DECODE_MEMO: dict[bytes, Point] = {}
_DECODE_MEMO_MAX = 4096
DECODE_STATS = {"decode_point.hits": 0, "decode_point.misses": 0}


def decode_point(data: bytes) -> Point:
    """Decode a compressed SEC1 point, validating it is on the curve."""
    cached = _DECODE_MEMO.get(data)
    if cached is not None:
        DECODE_STATS["decode_point.hits"] += 1
        return cached
    point = _decode_point_uncached(data)
    DECODE_STATS["decode_point.misses"] += 1
    if len(_DECODE_MEMO) >= _DECODE_MEMO_MAX:
        _DECODE_MEMO.clear()
    _DECODE_MEMO[bytes(data)] = point
    return point


def _decode_point_uncached(data: bytes) -> Point:
    if len(data) != COMPRESSED_SIZE or data[0] not in (2, 3):
        raise CryptoError("malformed compressed point")
    x = int.from_bytes(data[1:], "big")
    if x >= P:
        raise CryptoError("point coordinate out of range")
    # y^2 = x^3 - 3x + b; sqrt via p ≡ 3 (mod 4).
    alpha = (pow(x, 3, P) + A * x + B) % P
    y = pow(alpha, (P + 1) // 4, P)
    if (y * y) % P != alpha:
        raise CryptoError("x coordinate is not on the curve")
    if (y & 1) != (data[0] & 1):
        y = P - y
    point = Point(x, y)
    if not is_on_curve(point):  # defence in depth
        raise CryptoError("decoded point fails curve equation")
    return point
