"""COSE-Sign1-style signed request envelopes.

CCF records governance proposals and ballots as requests *signed by a
consortium member* (section 5.1), using HTTP signatures or COSE Sign1
(section 7); the signature itself is stored on the ledger so governance is
auditable offline. This module provides the equivalent envelope: protected
headers + payload, signed by an identity certificate, verifiable standalone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.crypto.certs import Certificate, Identity
from repro.errors import VerificationError


def _canonical_json(value: object) -> bytes:
    """Deterministic JSON encoding: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":")).encode()


@dataclass(frozen=True)
class SignedRequest:
    """A signed envelope: who said what, verifiable offline.

    ``headers`` carry request routing metadata (target endpoint, nonce);
    ``payload`` is the request body; ``signer`` identifies the certificate
    whose key produced ``signature``.
    """

    headers: dict = field(default_factory=dict)
    payload: bytes = b""
    signer: str = ""
    signature: bytes = b""

    def to_be_signed(self) -> bytes:
        return b"".join(
            [
                b"repro-cose-sign1",
                _canonical_json(self.headers),
                len(self.payload).to_bytes(4, "big"),
                self.payload,
                self.signer.encode(),
            ]
        )

    def verify(self, certificate: Certificate) -> None:
        """Verify against the signer's certificate; raise on any mismatch."""
        if certificate.subject != self.signer:
            raise VerificationError(
                f"envelope signed by {self.signer!r} but certificate is for "
                f"{certificate.subject!r}"
            )
        certificate.public_key.verify(self.signature, self.to_be_signed())

    def payload_json(self) -> object:
        """Decode the payload as JSON (governance bodies are JSON documents)."""
        return json.loads(self.payload.decode())

    def to_dict(self) -> dict:
        """JSON-safe form for recording on the ledger (Table 3, history map)."""
        return {
            "headers": self.headers,
            "payload": self.payload.hex(),
            "signer": self.signer,
            "signature": self.signature.hex(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SignedRequest":
        return cls(
            headers=data["headers"],
            payload=bytes.fromhex(data["payload"]),
            signer=data["signer"],
            signature=bytes.fromhex(data["signature"]),
        )


def sign_request(identity: Identity, payload: object, headers: dict | None = None) -> SignedRequest:
    """Sign a JSON ``payload`` as ``identity``, returning the envelope."""
    body = _canonical_json(payload)
    envelope = SignedRequest(
        headers=dict(headers or {}), payload=body, signer=identity.subject, signature=b""
    )
    signature = identity.sign(envelope.to_be_signed())
    return SignedRequest(
        headers=envelope.headers, payload=body, signer=identity.subject, signature=signature
    )
