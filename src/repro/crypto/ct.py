"""Constant-time comparison for authenticator-like values.

Every comparison of a MAC, digest, signature component, recovery share, or
other verifier-supplied authenticator must go through :func:`ct_eq` rather
than ``==``: an early-exit byte comparison leaks, through timing, how long
a prefix of the attacker's guess was correct, which is enough to forge a
MAC byte-by-byte. The SEC001 lint rule (``repro.analysis``) enforces this
at the AST level; this module is its designated sink and is therefore
excluded from the rule.

``hmac.compare_digest`` is the constant-time primitive (C-implemented for
``bytes``); the wrapper normalizes the mixed ``bytes`` / ``Digest`` / hex
``str`` operand types that appear at verification sites.
"""

from __future__ import annotations

import hmac

__all__ = ["ct_eq"]


def ct_eq(a: bytes | bytearray | memoryview | str | None,
          b: bytes | bytearray | memoryview | str | None) -> bool:
    """Compare two authenticators without an early exit.

    Accepts ``bytes``-like values and ``str`` (compared by UTF-8 encoding,
    so a hex-encoded digest can be checked against ``digest.hex()``).
    ``None`` never equals anything, including another ``None`` — a missing
    authenticator must not verify.
    """
    if a is None or b is None:
        return False
    if isinstance(a, str):
        a = a.encode()
    if isinstance(b, str):
        b = b.encode()
    return hmac.compare_digest(bytes(a), bytes(b))
