"""A fast AEAD built from SHA-256 (encrypt-then-MAC).

ChaCha20-Poly1305 (:mod:`repro.crypto.aead`) is the reference suite, but a
pure-Python ChaCha20 costs ~250 µs per small message, which dominates the
simulator's wall-clock time when every write transaction is encrypted. This
module provides an AEAD with the exact same interface whose primitives are
the C-accelerated ``hashlib``/``hmac``:

- keystream: ``SHA256(key || nonce || counter)`` blocks (CTR mode over a PRF);
- tag: ``HMAC-SHA256(mac_key, aad_len || aad || ciphertext)`` truncated to 16 B.

This is a standard encrypt-then-MAC composition over a PRF-based stream
cipher — real cryptography, not a mock — chosen purely for simulator
wall-clock speed. The ledger format records which suite sealed each entry,
and both suites are interchangeable via the :class:`AEADCipher` protocol.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.aead import AEADKey
from repro.crypto.chacha20 import KEY_SIZE, NONCE_SIZE
from repro.crypto.hashing import sha256
from repro.crypto.poly1305 import constant_time_equal
from repro.errors import CryptoError, VerificationError

TAG_SIZE = 16
_BLOCK = 32  # one SHA-256 output per keystream block


@dataclass(frozen=True)
class FastAEADKey:
    """SHA256-CTR + HMAC-SHA256 AEAD; drop-in for :class:`AEADKey`."""

    key: bytes

    def __post_init__(self) -> None:
        if len(self.key) != KEY_SIZE:
            raise CryptoError("AEAD key must be 32 bytes")

    @classmethod
    def generate(cls, seed: bytes) -> "FastAEADKey":
        return cls(bytes(sha256(b"fast-aead-keygen", seed)))

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + _BLOCK - 1) // _BLOCK):
            h = hashlib.sha256(self.key)
            h.update(nonce)
            h.update(counter.to_bytes(8, "big"))
            blocks.append(h.digest())
        return b"".join(blocks)[:length]

    def _mac_key(self) -> bytes:
        cached = self.__dict__.get("_mac_key_cache")
        if cached is None:
            cached = bytes(sha256(b"fast-aead-mac", self.key))
            object.__setattr__(self, "_mac_key_cache", cached)
        return cached

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        mac = hmac.new(self._mac_key(), digestmod=hashlib.sha256)
        mac.update(nonce)
        mac.update(len(aad).to_bytes(8, "big"))
        mac.update(aad)
        mac.update(ciphertext)
        return mac.digest()[:TAG_SIZE]

    @staticmethod
    def _xor(data: bytes, keystream: bytes) -> bytes:
        # Single big-integer XOR: far faster than per-byte loops in Python.
        n = len(data)
        return (
            int.from_bytes(data, "big") ^ int.from_bytes(keystream[:n], "big")
        ).to_bytes(n, "big")

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        if len(nonce) != NONCE_SIZE:
            raise CryptoError("AEAD nonce must be 12 bytes")
        ciphertext = self._xor(plaintext, self._keystream(nonce, len(plaintext)))
        return ciphertext + self._tag(nonce, ciphertext, aad)

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        if len(nonce) != NONCE_SIZE:
            raise CryptoError("AEAD nonce must be 12 bytes")
        if len(sealed) < TAG_SIZE:
            raise VerificationError("sealed box shorter than the tag")
        ciphertext, tag = sealed[:-TAG_SIZE], sealed[-TAG_SIZE:]
        if not constant_time_equal(tag, self._tag(nonce, ciphertext, aad)):
            raise VerificationError("AEAD tag mismatch")
        return self._xor(ciphertext, self._keystream(nonce, len(ciphertext)))

    def __repr__(self) -> str:  # pragma: no cover - never leak key bytes
        return "FastAEADKey(<secret>)"


# The cipher-suite registry used by the ledger format. Suite ids are recorded
# alongside sealed entries so a recovering node knows how to open them.
SUITES = {
    "chacha20poly1305": AEADKey,
    "sha256ctr-hmac": FastAEADKey,
}
DEFAULT_SUITE = "sha256ctr-hmac"


def make_key(suite: str, key_bytes: bytes):
    """Instantiate the AEAD key class registered for ``suite``."""
    try:
        return SUITES[suite](key_bytes)
    except KeyError:
        raise CryptoError(f"unknown AEAD suite {suite!r}") from None
