"""Lightweight certificates — the reproduction's X.509 stand-in.

CCF's identities (Table 1) are X.509 certificates: the service identity used
as the TLS root of trust and for receipt verification, per-node identities,
and the user/member certificates stored in the governance maps (Table 3).
We keep the trust structure (subject, public key, issuer signature chain)
and drop the ASN.1 encoding, which carries no design weight in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ecdsa import SigningKey, VerifyingKey
from repro.errors import VerificationError


def _encode_field(data: bytes) -> bytes:
    return len(data).to_bytes(2, "big") + data


# Bounded memo for certificate reconstruction: the users/members maps store
# certificates as dicts and every authenticated request rebuilds one.
# Certificates are immutable, so reuse also means the VerifyingKey instance
# (and its fastec per-point tables) is shared across requests. Counters are
# exported via repro.obs.metrics as ``fastpath.cert_cache.*``.
_CERT_CACHE: dict[tuple[str, str, str, str], "Certificate"] = {}
_CERT_CACHE_MAX = 4096
CERT_STATS = {"cert_cache.hits": 0, "cert_cache.misses": 0}


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject name to a public key.

    ``issuer`` is the subject name of the signing authority; self-signed
    certificates (service identity, member/user roots) have
    ``issuer == subject``.
    """

    subject: str
    public_key: VerifyingKey
    issuer: str
    signature: bytes

    def to_be_signed(self) -> bytes:
        """The canonical byte string covered by the issuer's signature."""
        return b"".join(
            [
                b"repro-cert-v1",
                _encode_field(self.subject.encode()),
                _encode_field(self.public_key.encode()),
                _encode_field(self.issuer.encode()),
            ]
        )

    def verify(self, issuer_key: VerifyingKey) -> None:
        """Check the issuer's signature; raise :class:`VerificationError`."""
        issuer_key.verify(self.signature, self.to_be_signed())

    @property
    def is_self_signed(self) -> bool:
        return self.subject == self.issuer

    def verify_self_signed(self) -> None:
        """Verify a self-signed certificate against its own key."""
        if not self.is_self_signed:
            raise VerificationError("certificate is not self-signed")
        self.verify(self.public_key)

    def fingerprint(self) -> str:
        """Stable hex identifier for storing the cert in KV maps."""
        from repro.crypto.hashing import sha256

        return sha256(self.to_be_signed()).hex()

    def to_dict(self) -> dict:
        """JSON-safe representation for storage in public maps."""
        return {
            "subject": self.subject,
            "public_key": self.public_key.encode().hex(),
            "issuer": self.issuer,
            "signature": self.signature.hex(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Certificate":
        key = (data["subject"], data["public_key"], data["issuer"], data["signature"])
        try:
            cached = _CERT_CACHE.get(key)
        except TypeError:
            key = None  # unhashable field types: fall through to construction
            cached = None
        if cached is not None:
            CERT_STATS["cert_cache.hits"] += 1
            return cached
        certificate = cls(
            subject=data["subject"],
            public_key=VerifyingKey.decode(bytes.fromhex(data["public_key"])),
            issuer=data["issuer"],
            signature=bytes.fromhex(data["signature"]),
        )
        if key is not None:
            CERT_STATS["cert_cache.misses"] += 1
            if len(_CERT_CACHE) >= _CERT_CACHE_MAX:
                _CERT_CACHE.clear()
            _CERT_CACHE[key] = certificate
        return certificate


def issue(subject: str, public_key: VerifyingKey, issuer: str, issuer_key: SigningKey) -> Certificate:
    """Issue a certificate for ``subject`` signed by ``issuer_key``."""
    unsigned = Certificate(subject=subject, public_key=public_key, issuer=issuer, signature=b"")
    signature = issuer_key.sign(unsigned.to_be_signed())
    return Certificate(subject=subject, public_key=public_key, issuer=issuer, signature=signature)


def self_signed(subject: str, key: SigningKey) -> Certificate:
    """Issue a self-signed certificate (service identity, user/member roots)."""
    return issue(subject, key.public_key, subject, key)


@dataclass(frozen=True)
class Identity:
    """A convenience bundle of a signing key and its certificate.

    Used throughout the simulator for users, members, nodes, and the service
    itself. The private key never appears in serialized state.
    """

    key: SigningKey
    certificate: Certificate

    @classmethod
    def create(cls, subject: str, seed: bytes) -> "Identity":
        key = SigningKey.generate(seed)
        return cls(key=key, certificate=self_signed(subject, key))

    @property
    def subject(self) -> str:
        return self.certificate.subject

    def sign(self, message: bytes) -> bytes:
        return self.key.sign(message)
