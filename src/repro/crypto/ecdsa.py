"""ECDSA over P-256 with deterministic nonces (RFC 6979).

Used for every signature in the system: signature transactions over Merkle
roots (section 3.2), receipts (section 3.5), attestation quotes, certificates
(Table 1), and member-signed governance requests (section 5.1).

Deterministic nonces matter twice over here: they remove the classic
nonce-reuse footgun, and they keep the whole simulation reproducible from a
seed (signing never consumes external randomness).
"""

from __future__ import annotations

import hmac
import hashlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto import ec, fastec
from repro.crypto.hashing import sha256
from repro.errors import CryptoError, VerificationError

SIGNATURE_SIZE = 64  # r || s, 32 bytes each

_DECODE_CACHE: dict[bytes, "VerifyingKey"] = {}

# ----------------------------------------------------------------------
# Verification memo: an LRU over successful verifications, keyed by the
# full (public key, message digest, signature) triple. The common protocol
# shape is N followers and auditors re-verifying the *same* signature
# transaction or receipt; verification is a pure function of the triple, so
# collapsing repeats cannot change any outcome. Only successes are stored —
# a forged signature re-runs the full check every time and can never be
# laundered through the cache. Disable with ``set_verify_memo(False)``
# (chaos differential tests run both ways and require identical traces).
_VERIFY_MEMO: OrderedDict[tuple[bytes, bytes, bytes], None] = OrderedDict()
_VERIFY_MEMO_MAX = 8192
_VERIFY_MEMO_ENABLED = True

MEMO_STATS = {
    "verify_memo.hits": 0,
    "verify_memo.misses": 0,
    "verify_memo.evictions": 0,
    "pubkey_decode.hits": 0,
    "pubkey_decode.misses": 0,
}


def set_verify_memo(enabled: bool) -> bool:
    """Enable/disable the verification memo; returns the previous setting."""
    global _VERIFY_MEMO_ENABLED
    previous = _VERIFY_MEMO_ENABLED
    _VERIFY_MEMO_ENABLED = enabled
    return previous


def clear_verify_memo() -> None:
    """Drop all memoized verifications (test and benchmark isolation)."""
    _VERIFY_MEMO.clear()


def _verify_memo_store(key: tuple[bytes, bytes, bytes]) -> None:
    while len(_VERIFY_MEMO) >= _VERIFY_MEMO_MAX:
        _VERIFY_MEMO.popitem(last=False)
        MEMO_STATS["verify_memo.evictions"] += 1
    _VERIFY_MEMO[key] = None


def _rfc6979_nonce(private_scalar: int, msg_hash: bytes) -> int:
    """Derive the per-signature nonce k per RFC 6979 (HMAC-SHA256 DRBG)."""
    holen = 32
    x = private_scalar.to_bytes(32, "big")
    h1 = msg_hash
    v = b"\x01" * holen
    k = b"\x00" * holen
    k = hmac.new(k, v + b"\x00" + x + h1, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    k = hmac.new(k, v + b"\x01" + x + h1, hashlib.sha256).digest()
    v = hmac.new(k, v, hashlib.sha256).digest()
    while True:
        v = hmac.new(k, v, hashlib.sha256).digest()
        candidate = int.from_bytes(v, "big")
        if 1 <= candidate < ec.N:
            return candidate
        k = hmac.new(k, v + b"\x00", hashlib.sha256).digest()
        v = hmac.new(k, v, hashlib.sha256).digest()


@dataclass(frozen=True)
class VerifyingKey:
    """A P-256 public key used to verify ECDSA signatures."""

    point: ec.Point

    def encode(self) -> bytes:
        """Compressed 33-byte encoding of the public point."""
        return self.point.encode()

    @classmethod
    def decode(cls, data: bytes) -> "VerifyingKey":
        """Decode a compressed public key. Memoized: decompression costs a
        modular square root and the same handful of keys (users, nodes,
        members) is decoded on every request. Returning the *same instance*
        also lets the per-point tables in :mod:`repro.crypto.fastec` reuse
        their precomputation across call sites."""
        cached = _DECODE_CACHE.get(data)
        if cached is None:
            MEMO_STATS["pubkey_decode.misses"] += 1
            cached = cls(ec.decode_point(data))
            if len(_DECODE_CACHE) >= 4096:
                _DECODE_CACHE.clear()
            _DECODE_CACHE[data] = cached
        else:
            MEMO_STATS["pubkey_decode.hits"] += 1
        return cached

    def verify(self, signature: bytes, message: bytes) -> None:
        """Verify ``signature`` over ``message``; raise on failure.

        Raising (rather than returning a bool) forces callers to handle
        failure explicitly — a silent falsy check is how verification
        bypasses happen.
        """
        if len(signature) != SIGNATURE_SIZE:
            raise VerificationError("malformed signature length")
        r = int.from_bytes(signature[:32], "big")
        s = int.from_bytes(signature[32:], "big")
        if not (1 <= r < ec.N and 1 <= s < ec.N):
            raise VerificationError("signature scalar out of range")
        digest = bytes(sha256(message))
        memo_key = (self.encode(), digest, signature)
        if _VERIFY_MEMO_ENABLED and memo_key in _VERIFY_MEMO:
            MEMO_STATS["verify_memo.hits"] += 1
            _VERIFY_MEMO.move_to_end(memo_key)
            return
        MEMO_STATS["verify_memo.misses"] += 1
        e = int.from_bytes(digest, "big") % ec.N
        s_inv = pow(s, -1, ec.N)
        u1 = (e * s_inv) % ec.N
        u2 = (r * s_inv) % ec.N
        point = fastec.double_scalar_mult(u1, u2, self.point)
        if point.is_infinity or (point.x % ec.N) != r:
            raise VerificationError("ECDSA signature verification failed")
        if _VERIFY_MEMO_ENABLED:
            _verify_memo_store(memo_key)

    def is_valid(self, signature: bytes, message: bytes) -> bool:
        """Boolean convenience wrapper around :meth:`verify`."""
        try:
            self.verify(signature, message)
        except VerificationError:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VerifyingKey({self.encode().hex()[:16]}…)"


@dataclass(frozen=True)
class SigningKey:
    """A P-256 private key. Lives only inside (simulated) enclave memory."""

    scalar: int

    @classmethod
    def generate(cls, seed: bytes) -> "SigningKey":
        """Deterministically derive a key from ``seed``.

        The simulator derives all key material from the run's master seed so
        that runs are reproducible; the derivation is a hash, so keys are
        still unlinkable without the seed.
        """
        scalar = int.from_bytes(sha256(b"ecdsa-keygen", seed), "big") % ec.N
        if scalar == 0:
            raise CryptoError("degenerate seed produced zero scalar")
        return cls(scalar)

    @property
    def public_key(self) -> VerifyingKey:
        """The matching verifying key. Cached per instance: the point is a
        pure function of the scalar, and call sites re-derive it freely."""
        cached = self.__dict__.get("_public_key")
        if cached is None:
            cached = VerifyingKey(fastec.generator_mult(self.scalar))
            object.__setattr__(self, "_public_key", cached)
        return cached

    def sign(self, message: bytes) -> bytes:
        """Produce a 64-byte ``r || s`` signature over SHA-256(message)."""
        msg_hash = sha256(message)
        e = int.from_bytes(msg_hash, "big") % ec.N
        while True:
            k = _rfc6979_nonce(self.scalar, bytes(msg_hash))
            point = fastec.generator_mult(k)
            if point.x is None:
                raise CryptoError("signing nonce mapped to the point at infinity")
            r = point.x % ec.N
            if r == 0:
                msg_hash = sha256(bytes(msg_hash))  # pragma: no cover
                continue
            s = (pow(k, -1, ec.N) * (e + r * self.scalar)) % ec.N
            if s == 0:
                msg_hash = sha256(bytes(msg_hash))  # pragma: no cover
                continue
            return r.to_bytes(32, "big") + s.to_bytes(32, "big")

    def __repr__(self) -> str:  # pragma: no cover - never leak the scalar
        return "SigningKey(<secret>)"
