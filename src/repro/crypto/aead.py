"""ChaCha20-Poly1305 AEAD (RFC 8439).

This is the reproduction's stand-in for AES256-GCM: the symmetric
authenticated encryption used by the ledger secret to encrypt updates to
private maps (Table 1, section 3.3) and by the indexer's offloaded storage.
The interface — key, nonce, associated data, ciphertext || tag — is the same
as GCM's, so nothing above this layer knows the difference.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto.chacha20 import KEY_SIZE, NONCE_SIZE, chacha20_block, chacha20_xor
from repro.crypto.hashing import sha256
from repro.crypto.poly1305 import TAG_SIZE, constant_time_equal, poly1305_mac
from repro.errors import CryptoError, VerificationError


def _pad16(data: bytes) -> bytes:
    remainder = len(data) % 16
    return b"\x00" * (16 - remainder) if remainder else b""


def _mac_data(aad: bytes, ciphertext: bytes) -> bytes:
    return (
        aad
        + _pad16(aad)
        + ciphertext
        + _pad16(ciphertext)
        + struct.pack("<QQ", len(aad), len(ciphertext))
    )


@dataclass(frozen=True)
class AEADKey:
    """A 256-bit AEAD key with seal/open operations.

    ``seal`` returns ``ciphertext || tag``; ``open`` verifies the tag before
    returning the plaintext and raises :class:`VerificationError` otherwise.
    """

    key: bytes

    def __post_init__(self) -> None:
        if len(self.key) != KEY_SIZE:
            raise CryptoError("AEAD key must be 32 bytes")

    @classmethod
    def generate(cls, seed: bytes) -> "AEADKey":
        """Derive a key deterministically from ``seed``."""
        return cls(bytes(sha256(b"aead-keygen", seed)))

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        if len(nonce) != NONCE_SIZE:
            raise CryptoError("AEAD nonce must be 12 bytes")
        otk = chacha20_block(self.key, 0, nonce)[:32]
        ciphertext = chacha20_xor(self.key, nonce, plaintext)
        tag = poly1305_mac(otk, _mac_data(aad, ciphertext))
        return ciphertext + tag

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        if len(nonce) != NONCE_SIZE:
            raise CryptoError("AEAD nonce must be 12 bytes")
        if len(sealed) < TAG_SIZE:
            raise VerificationError("sealed box shorter than the tag")
        ciphertext, tag = sealed[:-TAG_SIZE], sealed[-TAG_SIZE:]
        otk = chacha20_block(self.key, 0, nonce)[:32]
        expected = poly1305_mac(otk, _mac_data(aad, ciphertext))
        if not constant_time_equal(tag, expected):
            raise VerificationError("AEAD tag mismatch")
        return chacha20_xor(self.key, nonce, ciphertext)

    def __repr__(self) -> str:  # pragma: no cover - never leak key bytes
        return "AEADKey(<secret>)"


def nonce_from_counter(counter: int, domain: int = 0) -> bytes:
    """Build a 12-byte nonce from a monotonically increasing counter.

    The ledger uses the transaction sequence number as the counter; the
    ``domain`` byte separates nonce spaces (ledger vs indexer vs channels)
    under keys that might otherwise collide.
    """
    if counter < 0 or counter >= 1 << 88:
        raise CryptoError("nonce counter out of range")
    return bytes([domain & 0xFF]) + counter.to_bytes(11, "big")
