"""HKDF-SHA256 (RFC 5869) key derivation.

Used to derive channel keys from X25519 shared secrets and ECIES wrap keys.
"""

from __future__ import annotations

from repro.crypto.hashing import DIGEST_SIZE, hmac_sha256
from repro.errors import CryptoError


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """Extract a pseudorandom key from possibly weak input material."""
    return bytes(hmac_sha256(salt or b"\x00" * DIGEST_SIZE, input_key_material))


def hkdf_expand(pseudo_random_key: bytes, info: bytes, length: int) -> bytes:
    """Expand a PRK into ``length`` bytes of output keyed by ``info``."""
    if length > 255 * DIGEST_SIZE:
        raise CryptoError("HKDF output length too large")
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = bytes(hmac_sha256(pseudo_random_key, block, info, bytes([counter])))
        output += block
        counter += 1
    return output[:length]


def hkdf(input_key_material: bytes, info: bytes, length: int, salt: bytes = b"") -> bytes:
    """One-shot extract-then-expand."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)
