"""Active configurations for atomic reconfiguration (section 4.4).

Each node keeps a sorted list of active configurations: the current
(committed) configuration at the head, followed by any pending ones added
when a reconfiguration transaction was *appended* (not committed). Winning
an election or committing a transaction requires a majority quorum in every
active configuration. When a reconfiguration commits, all earlier
configurations are dropped; when an uncommitted suffix rolls back, its
configurations are removed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConsensusError


@dataclass(frozen=True)
class Configuration:
    """The node set established by the reconfiguration at ``seqno``
    (seqno 0 is the service's initial configuration)."""

    seqno: int
    nodes: frozenset[str]

    def majority(self) -> int:
        return len(self.nodes) // 2 + 1

    def quorum_satisfied(self, acks: set[str]) -> bool:
        return len(acks & self.nodes) >= self.majority()


class ActiveConfigurations:
    """The sorted active-configuration list of one node."""

    def __init__(self, initial_nodes: frozenset[str] | set[str]):
        if not initial_nodes:
            raise ConsensusError("initial configuration cannot be empty")
        self._configs: list[Configuration] = [
            Configuration(seqno=0, nodes=frozenset(initial_nodes))
        ]

    @classmethod
    def resuming_from(cls, seqno: int, nodes: frozenset[str] | set[str]) -> "ActiveConfigurations":
        """Start from a configuration established at ``seqno`` (snapshot join)."""
        configs = cls(nodes)
        configs._configs = [Configuration(seqno=seqno, nodes=frozenset(nodes))]
        return configs

    # ------------------------------------------------------------------

    def add(self, seqno: int, nodes: frozenset[str] | set[str]) -> None:
        """A reconfiguration transaction at ``seqno`` was appended."""
        if seqno <= self._configs[-1].seqno:
            raise ConsensusError(
                f"reconfiguration seqno {seqno} not after "
                f"{self._configs[-1].seqno}"
            )
        if not nodes:
            raise ConsensusError("cannot reconfigure to an empty node set")
        self._configs.append(Configuration(seqno=seqno, nodes=frozenset(nodes)))

    def rollback(self, seqno: int) -> None:
        """Entries after ``seqno`` were rolled back; drop their configs.
        The head (current) configuration can never be rolled back."""
        survivors = [c for c in self._configs if c.seqno <= seqno]
        if not survivors:
            raise ConsensusError("rollback would remove the current configuration")
        self._configs = survivors

    def on_commit(self, commit_seqno: int) -> None:
        """A commit advanced to ``commit_seqno``: every configuration whose
        reconfiguration transaction is now committed supersedes all earlier
        ones."""
        while len(self._configs) > 1 and self._configs[1].seqno <= commit_seqno:
            self._configs.pop(0)

    # ------------------------------------------------------------------

    @property
    def current(self) -> Configuration:
        return self._configs[0]

    @property
    def pending(self) -> list[Configuration]:
        return self._configs[1:]

    def __len__(self) -> int:
        return len(self._configs)

    def all_nodes(self) -> frozenset[str]:
        """Union of node sets across active configurations — the targets of
        request_vote and append_entries."""
        nodes: set[str] = set()
        for config in self._configs:
            nodes |= config.nodes
        return frozenset(nodes)

    def quorum_in_each(self, acks: set[str]) -> bool:
        """True if ``acks`` contains a majority of every active config."""
        return all(config.quorum_satisfied(acks) for config in self._configs)

    def highest_quorum_possible(self, reachable: set[str]) -> bool:
        """Can any quorum still form from ``reachable`` nodes? (Used by the
        primary's step-down check.)"""
        return self.quorum_in_each(reachable)
