"""CCF's consensus layer (section 4).

A Raft-inspired protocol adapted for trusted execution:

- Transactions only *commit* at signature transactions replicated to a
  majority — integrity protection and durability share one mechanism.
- Election up-to-dateness compares the candidate's **last signature
  transaction**, not its last entry; a new primary rolls its ledger back to
  its last signature transaction and opens the view with a fresh one.
- Reconfiguration is a single transaction moving between arbitrary node
  sets, tracked through a list of *active configurations*; elections and
  commits need a majority in **every** active configuration (section 4.4).
- Retirement is two-step: RETIRING (leaves the configuration on commit)
  then RETIRED (safe to shut down) (section 4.5).
"""

from repro.consensus.raft import ConsensusNode, ConsensusConfig, Role
from repro.consensus.configurations import ActiveConfigurations, Configuration
from repro.consensus.state import NodeStatus, ViewHistory

__all__ = [
    "ConsensusNode",
    "ConsensusConfig",
    "Role",
    "ActiveConfigurations",
    "Configuration",
    "NodeStatus",
    "ViewHistory",
]
