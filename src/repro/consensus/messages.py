"""Consensus RPC messages (sections 4.1–4.2).

``append_entries`` replicates ledger entries (and doubles as the heartbeat
when empty); ``request_vote`` drives elections. Every message carries the
sender's view so receivers can synchronize views before processing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ledger.entry import LedgerEntry, TxID


@dataclass(frozen=True)
class AppendEntries:
    """Primary → backup: entries after ``prev_txid``, plus commit point.

    The backup checks ``prev_txid`` against its own ledger before appending;
    this is the induction step that makes ledgers with a shared transaction
    ID share their whole prefix (section 4.1).
    """

    view: int
    leader_id: str
    prev_txid: TxID
    entries: tuple[LedgerEntry, ...] = ()
    leader_commit: int = 0


@dataclass(frozen=True)
class AppendEntriesResponse:
    """Backup → primary. On failure, ``match_hint`` is the backup's guess at
    the latest common point so the primary can rewind its next_index."""

    view: int
    sender: str
    success: bool
    # On success: the highest seqno this append_entries covered (prev +
    # appended entries). Deliberately NOT the backup's ledger length — a
    # stale uncommitted suffix must never count toward match_index.
    last_seqno: int = 0
    match_hint: int = 0  # on failure: guessed latest common seqno


@dataclass(frozen=True)
class RequestVote:
    """Candidate → all nodes: vote solicitation carrying the view and
    sequence number of the candidate's last signature transaction."""

    view: int
    candidate_id: str
    last_signature_txid: TxID


@dataclass(frozen=True)
class RequestVoteResponse:
    """Voter → candidate: whether the vote was granted."""

    view: int
    sender: str
    granted: bool


CONSENSUS_MESSAGE_TYPES = (
    AppendEntries,
    AppendEntriesResponse,
    RequestVote,
    RequestVoteResponse,
)


# ----------------------------------------------------------------------
# Wire codec: consensus messages travel between enclaves through untrusted
# hosts, sealed by the node-to-node channels — which need bytes.

from repro.errors import ConsensusError  # noqa: E402
from repro.kv.serialization import decode_value, encode_value  # noqa: E402


# AppendEntries framing is memoized per message instance: the primary
# shares one message object across every follower at the same next_index
# (see ConsensusNode._send_append_entries), so an entry batch is encoded
# once instead of once per destination. Channel sealing stays per-peer —
# only the plaintext framing is shared. Counters are exported via
# repro.obs.metrics as ``fastpath.ae_encode.*``.
ENCODE_STATS = {"ae_encode.encodes": 0, "ae_encode.reuses": 0}


def encode_message(message: object) -> bytes:
    """Serialize a consensus message to canonical bytes."""
    if isinstance(message, AppendEntries):
        cached = message.__dict__.get("_encoded")
        if cached is not None:
            ENCODE_STATS["ae_encode.reuses"] += 1
            return cached
    data = _encode_message_uncached(message)
    if isinstance(message, AppendEntries):
        ENCODE_STATS["ae_encode.encodes"] += 1
        object.__setattr__(message, "_encoded", data)
    return data


def _encode_message_uncached(message: object) -> bytes:
    if isinstance(message, AppendEntries):
        payload = {
            "t": "ae",
            "view": message.view,
            "leader": message.leader_id,
            "prev": [message.prev_txid.view, message.prev_txid.seqno],
            "entries": [entry.encode() for entry in message.entries],
            "commit": message.leader_commit,
        }
    elif isinstance(message, AppendEntriesResponse):
        payload = {
            "t": "aer",
            "view": message.view,
            "sender": message.sender,
            "success": message.success,
            "last": message.last_seqno,
            "hint": message.match_hint,
        }
    elif isinstance(message, RequestVote):
        payload = {
            "t": "rv",
            "view": message.view,
            "candidate": message.candidate_id,
            "sig": [message.last_signature_txid.view, message.last_signature_txid.seqno],
        }
    elif isinstance(message, RequestVoteResponse):
        payload = {
            "t": "rvr",
            "view": message.view,
            "sender": message.sender,
            "granted": message.granted,
        }
    else:
        raise ConsensusError(f"cannot encode {type(message).__name__}")
    return encode_value(payload)


def decode_message(data: bytes) -> object:
    """Deserialize a consensus message from wire bytes."""
    raw = decode_value(data)
    if not isinstance(raw, dict) or "t" not in raw:
        raise ConsensusError("malformed consensus message")
    kind = raw["t"]
    if kind == "ae":
        return AppendEntries(
            view=raw["view"],
            leader_id=raw["leader"],
            prev_txid=TxID(*raw["prev"]),
            entries=tuple(LedgerEntry.decode(e) for e in raw["entries"]),
            leader_commit=raw["commit"],
        )
    if kind == "aer":
        return AppendEntriesResponse(
            view=raw["view"],
            sender=raw["sender"],
            success=raw["success"],
            last_seqno=raw["last"],
            match_hint=raw["hint"],
        )
    if kind == "rv":
        return RequestVote(
            view=raw["view"],
            candidate_id=raw["candidate"],
            last_signature_txid=TxID(*raw["sig"]),
        )
    if kind == "rvr":
        return RequestVoteResponse(
            view=raw["view"], sender=raw["sender"], granted=raw["granted"]
        )
    raise ConsensusError(f"unknown consensus message kind {kind!r}")
