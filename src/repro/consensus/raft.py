"""The consensus state machine (sections 4.1–4.5).

:class:`ConsensusNode` is a pure protocol engine: it owns views, roles,
votes, replication indices, and the commit rule, and talks to the rest of
the node through a small host interface (:class:`ConsensusHost`). The host
(:mod:`repro.node.node`) owns the ledger and KV store and performs the
actual appends, applies, and rollbacks.

Deviations from vanilla Raft, per the paper:

- commit advances only at *signature transactions* of the current view,
  replicated to a majority of **every** active configuration;
- vote comparison uses the last signature transaction, not the last entry;
- a new primary rolls back to its own last signature transaction and opens
  its view with a fresh signature transaction;
- the primary steps down if it has not heard from a majority of backups
  within a time window (so a partitioned primary cannot grow an
  arbitrarily long uncommittable suffix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.consensus.configurations import ActiveConfigurations
from repro.consensus.messages import (
    AppendEntries,
    AppendEntriesResponse,
    RequestVote,
    RequestVoteResponse,
)
from repro.consensus.state import Role, TxStatus, ViewHistory, transaction_status
from repro.errors import ConsensusError
from repro.ledger.entry import LedgerEntry, TxID
from repro.ledger.ledger import Ledger
from repro.sim.scheduler import EventHandle, Scheduler


class ConsensusHost(Protocol):
    """What consensus needs from the node embedding it."""

    def send_consensus_message(self, to: str, message: object) -> None:
        """Deliver a protocol message to a peer (via secure channel)."""

    def apply_replicated_entry(self, entry: LedgerEntry) -> frozenset[str] | None:
        """Backup path: append ``entry`` to the ledger and apply it to the
        KV store. Returns the new node set if the entry is a
        reconfiguration, else None."""

    def truncate_to(self, seqno: int) -> None:
        """Roll the ledger and KV store back to ``seqno``."""

    def append_signature_entry(self, view: int) -> LedgerEntry:
        """Build, sign, append, and apply a signature transaction."""

    def on_commit(self, seqno: int) -> None:
        """Commit advanced: release responses, persist, handle retirements."""

    def on_become_primary(self) -> None: ...

    def on_lose_primacy(self) -> None: ...


@dataclass(frozen=True)
class ConsensusConfig:
    """Timing and batching knobs (paper-scale defaults)."""

    election_timeout_min: float = 0.15
    election_timeout_max: float = 0.30
    heartbeat_interval: float = 0.03
    max_batch_entries: int = 200
    # The primary steps down if fewer than a majority of backups acked
    # within this window (section 4.2, last paragraph).
    step_down_window: float = 0.45
    # How many max_batch_entries windows to pipeline toward a lagging peer
    # per replication trigger (ack or replicate_now), with next_index
    # advanced optimistically between windows. >1 keeps a catch-up stream
    # full instead of paying one round trip per window, and gives frame
    # coalescing multi-message (sender, peer) batches to amortize seals
    # over. Heartbeats stay single-window: they are liveness probes.
    catch_up_windows: int = 4


class ConsensusNode:
    """One node's consensus engine."""

    def __init__(
        self,
        node_id: str,
        ledger: Ledger,
        scheduler: Scheduler,
        host: ConsensusHost,
        initial_nodes: set[str] | frozenset[str],
        config: ConsensusConfig | None = None,
        config_base_seqno: int = 0,
    ):
        self.node_id = node_id
        self.ledger = ledger
        self.scheduler = scheduler
        self.host = host
        self.config = config if config is not None else ConsensusConfig()

        self.view = 0
        self.role = Role.BACKUP
        self.leader_id: str | None = None
        self.commit_seqno = 0
        self.voted_for: str | None = None
        self.configurations = ActiveConfigurations.resuming_from(
            config_base_seqno, initial_nodes
        )
        self.view_history = ViewHistory()
        # Clock-skew factor applied to this node's election timeouts: a
        # skewed-fast clock (< 1) fires elections early, a skewed-slow one
        # (> 1) fires them late. Chaos schedules perturb this; safety must
        # hold for any positive value (timeouts affect liveness only).
        self.timer_scale = 1.0
        self.last_leader_contact = scheduler.now
        # Nodes that replicate but are not yet in any configuration
        # (joined as PENDING, awaiting governance; section 4.4 / 5).
        self.learners: set[str] = set()
        # Set once this node's own retirement is committed: it stays online
        # to replicate and vote but never seeks election or accepts writes.
        self.writes_frozen = False

        # Primary-only replication state.
        self._next_index: dict[str, int] = {}
        self._match_index: dict[str, int] = {}
        self._last_ack: dict[str, float] = {}
        self._votes: set[str] = set()

        self._election_timer: EventHandle | None = None
        self._heartbeat_timer: EventHandle | None = None
        self._stopped = False

        # Observability counters.
        self.elections_started = 0
        self.times_primary = 0

    # ------------------------------------------------------------------
    # Lifecycle

    def start(self) -> None:
        """Start as a backup, waiting for a primary or an election.

        Views begin at 1: the service's first primary holds view 1 by
        construction (it started the network), so a backup's first election
        increments to view 2 and can never collide with the bootstrap view.
        """
        if self.view == 0:
            self.view = 1
        self._reset_election_timer()

    def start_as_initial_primary(self) -> None:
        """Bootstrap path for the first node of a brand-new service."""
        self.view = 1
        self._become_primary()

    def start_as_recovery_primary(self, view: int) -> None:
        """Bootstrap path for a disaster-recovery node: it resumes the
        replayed ledger in a view strictly greater than any it contains."""
        if view <= self.view:
            raise ConsensusError(
                f"recovery view {view} must exceed replayed view {self.view}"
            )
        self.view = view
        self._become_primary()

    def stop(self) -> None:
        """Node crash or shutdown: cancel all timers, ignore all messages."""
        self._stopped = True
        self._cancel_timer("_election_timer")
        self._cancel_timer("_heartbeat_timer")

    def resume(self) -> None:
        """Resume a stopped engine that kept its state (a stop-failure that
        healed, e.g. a process pause). Note this is NOT crash recovery —
        a crashed CCF node loses its enclave and must rejoin (section 6.2)."""
        self._stopped = False
        self.role = Role.BACKUP
        self._reset_election_timer()

    def _cancel_timer(self, attr: str) -> None:
        handle = getattr(self, attr)
        if handle is not None:
            handle.cancel()
            setattr(self, attr, None)

    # ------------------------------------------------------------------
    # Timers

    def _reset_election_timer(self) -> None:
        self._cancel_timer("_election_timer")
        timeout = self.scheduler.rng.uniform(
            self.config.election_timeout_min, self.config.election_timeout_max
        )
        if self.timer_scale <= 0:
            raise ConsensusError(f"timer_scale must be positive, got {self.timer_scale}")
        self._election_timer = self.scheduler.after(
            timeout * self.timer_scale, self._on_election_timeout
        )

    def _arm_heartbeat(self) -> None:
        self._cancel_timer("_heartbeat_timer")
        self._heartbeat_timer = self.scheduler.after(
            self.config.heartbeat_interval, self._on_heartbeat
        )

    # ------------------------------------------------------------------
    # Elections (section 4.2)

    def _on_election_timeout(self) -> None:
        if self._stopped or self.role is Role.PRIMARY:
            return
        if self.writes_frozen or self.node_id not in self.configurations.all_nodes():
            # A retired node never seeks election (it only votes), and a
            # newly joined node does not participate until the
            # reconfiguration that adds it reaches its ledger (section 4.4).
            self._reset_election_timer()
            return
        self._start_election()

    def _start_election(self) -> None:
        self.view += 1
        self.role = Role.CANDIDATE
        self.leader_id = None
        self.voted_for = self.node_id
        self._votes = {self.node_id}
        self.elections_started += 1
        obs = self.scheduler.obs
        if obs is not None:
            obs.consensus_election(self.node_id, self.view)
        last_signature = self.ledger.last_signature_txid()
        message = RequestVote(
            view=self.view,
            candidate_id=self.node_id,
            last_signature_txid=last_signature,
        )
        for peer in sorted(self.configurations.all_nodes()):
            if peer != self.node_id:
                self.host.send_consensus_message(peer, message)
        self._reset_election_timer()
        self._maybe_become_primary()

    def _maybe_become_primary(self) -> None:
        if self.role is Role.CANDIDATE and self.configurations.quorum_in_each(self._votes):
            self._become_primary()

    def _become_primary(self) -> None:
        self.role = Role.PRIMARY
        self.leader_id = self.node_id
        self.times_primary += 1
        obs = self.scheduler.obs
        if obs is not None:
            obs.consensus_become_primary(self.node_id, self.view)
        self._cancel_timer("_election_timer")
        # Discard any transactions after the last signature transaction —
        # they were never commit-eligible in our view of history.
        last_signature_seqno = self.ledger.last_signature_txid().seqno
        if self.ledger.last_seqno > last_signature_seqno:
            self._rollback(last_signature_seqno)
        # Open the view with a signature transaction (section 4.2).
        opening = self.host.append_signature_entry(self.view)
        self.note_local_append(opening, None)
        # Replication state: start every peer at the opening signature.
        now = self.scheduler.now
        self._next_index = {}
        self._match_index = {}
        self._last_ack = {}
        for peer in self._replication_targets():
            self._next_index[peer] = opening.txid.seqno
            self._match_index[peer] = 0
            self._last_ack[peer] = now
        self.host.on_become_primary()
        self._on_heartbeat()

    def _step_down(self, new_view: int | None = None) -> None:
        was_primary = self.role is Role.PRIMARY
        if new_view is not None and new_view > self.view:
            self.view = new_view
            self.voted_for = None
        self.role = Role.BACKUP
        self._votes = set()
        self._cancel_timer("_heartbeat_timer")
        self._reset_election_timer()
        if was_primary:
            obs = self.scheduler.obs
            if obs is not None:
                obs.consensus_step_down(self.node_id, self.view)
            self.host.on_lose_primacy()

    def on_request_vote(self, message: RequestVote) -> None:
        if self._stopped:
            return
        if message.view < self.view:
            self.host.send_consensus_message(
                message.candidate_id,
                RequestVoteResponse(view=self.view, sender=self.node_id, granted=False),
            )
            return
        if message.view > self.view:
            self._step_down(message.view)
        granted = False
        if self.voted_for in (None, message.candidate_id):
            mine = self.ledger.last_signature_txid()
            theirs = message.last_signature_txid
            up_to_date = theirs.view > mine.view or (
                theirs.view == mine.view and theirs.seqno >= mine.seqno
            )
            if up_to_date:
                granted = True
                self.voted_for = message.candidate_id
                self._reset_election_timer()
        self.host.send_consensus_message(
            message.candidate_id,
            RequestVoteResponse(view=self.view, sender=self.node_id, granted=granted),
        )

    def on_request_vote_response(self, message: RequestVoteResponse) -> None:
        if self._stopped:
            return
        if message.view > self.view:
            self._step_down(message.view)
            return
        if self.role is not Role.CANDIDATE or message.view != self.view:
            return
        if message.granted:
            self._votes.add(message.sender)
            self._maybe_become_primary()

    # ------------------------------------------------------------------
    # Replication (section 4.1)

    def _replication_targets(self) -> list[str]:
        """Peers to replicate to, in sorted order: iteration order feeds
        message emission order, which must be deterministic per seed."""
        targets = set(self.configurations.all_nodes()) | self.learners
        targets.discard(self.node_id)
        return sorted(targets)

    def note_local_append(self, entry: LedgerEntry, new_config: frozenset[str] | None) -> None:
        """The host appended ``entry`` locally (primary execution path)."""
        self.view_history.note_append(entry.txid)
        if new_config is not None:
            self.configurations.add(entry.txid.seqno, new_config)
            for node in new_config:
                self.learners.discard(node)
            # New peers may need replication state.
            for peer in self._replication_targets():
                self._next_index.setdefault(peer, entry.txid.seqno)
                self._match_index.setdefault(peer, 0)
                self._last_ack.setdefault(peer, self.scheduler.now)
        if self.role is Role.PRIMARY and entry.is_signature:
            # A single-node configuration (or one where everyone is already
            # caught up) can commit on its own ack.
            self._try_advance_commit()

    def add_learner(self, node_id: str, next_seqno: int) -> None:
        """Start replicating to a joined-but-untrusted node (section 4.4)."""
        self.learners.add(node_id)
        self._next_index[node_id] = max(1, next_seqno)
        self._match_index[node_id] = 0
        self._last_ack[node_id] = self.scheduler.now

    def note_retiring(self, node_id: str) -> None:
        """A node entered RETIRING: it leaves the configuration when the
        reconfiguration commits, but must keep receiving entries until it is
        RETIRED and shut down (section 4.5) — otherwise it never learns its
        own retirement committed and would keep calling elections."""
        if node_id != self.node_id:
            self.learners.add(node_id)
            self._next_index.setdefault(node_id, self.ledger.last_seqno + 1)
            self._match_index.setdefault(node_id, 0)
            self._last_ack.setdefault(node_id, self.scheduler.now)

    def remove_learner(self, node_id: str) -> None:
        """Stop replicating to a node (it was shut down or became a member)."""
        self.learners.discard(node_id)
        self._next_index.pop(node_id, None)
        self._match_index.pop(node_id, None)
        self._last_ack.pop(node_id, None)

    def freeze_writes(self) -> None:
        """This node's own retirement committed: stop accepting writes and
        never seek election again; keep replicating and voting until shut
        down (section 4.5)."""
        self.writes_frozen = True
        if self.role is Role.PRIMARY:
            self._cancel_timer("_heartbeat_timer")
            self._step_down()

    def _on_heartbeat(self) -> None:
        if self._stopped or self.role is not Role.PRIMARY:
            return
        self._check_step_down()
        if self.role is not Role.PRIMARY:
            return
        shared: dict[int, AppendEntries] = {}
        for peer in self._replication_targets():
            self._send_append_entries(peer, shared)
        self._arm_heartbeat()

    def _check_step_down(self) -> None:
        """Step down if a majority of each active configuration has gone
        quiet — a partitioned primary must not keep growing its ledger."""
        window_start = self.scheduler.now - self.config.step_down_window
        reachable = {self.node_id}
        for peer, acked_at in self._last_ack.items():
            if acked_at >= window_start:
                reachable.add(peer)
        if not self.configurations.quorum_in_each(reachable):
            self._step_down()

    def _send_append_entries(
        self,
        peer: str,
        shared: dict[int, AppendEntries] | None = None,
        windows: int = 1,
    ) -> None:
        """Send up to ``windows`` consecutive append_entries batches to
        ``peer``, advancing ``next_index`` optimistically between them.

        With ``windows > 1`` a lagging peer receives a pipelined burst in
        one event instead of one window per ack round trip; a failure ack
        rewinds ``next_index`` as usual, discarding the optimism. The burst
        is also what frame coalescing feeds on: k windows to one peer in
        one event collapse into one sealed frame.
        """
        for _ in range(max(1, windows)):
            next_seqno = self._next_index.get(peer, self.ledger.last_seqno + 1)
            # A snapshot-based ledger does not hold entries at or below its
            # base; a peer lagging below it cannot be caught up by replication
            # and must re-join from a snapshot (section 4.4). Clamp so we never
            # frame a batch we cannot actually read.
            if next_seqno <= self.ledger.base_seqno:
                next_seqno = self.ledger.base_seqno + 1
                self._next_index[peer] = next_seqno
            # Serialize-once fast path: within one broadcast (heartbeat or
            # replicate_now), peers at the same next_index receive the *same*
            # message object, so the batch framing is encoded once for all of
            # them (encode_message memoizes per instance). The message content
            # and per-peer send order are exactly what per-peer construction
            # produced; only redundant host-side work is dropped.
            message = shared.get(next_seqno) if shared is not None else None
            if message is None:
                prev_txid = self.ledger.txid_at(min(next_seqno - 1, self.ledger.last_seqno))
                last = min(
                    self.ledger.last_seqno, next_seqno + self.config.max_batch_entries - 1
                )
                entries = (
                    tuple(self.ledger.entries(next_seqno, last)) if last >= next_seqno else ()
                )
                message = AppendEntries(
                    view=self.view,
                    leader_id=self.node_id,
                    prev_txid=prev_txid,
                    entries=entries,
                    leader_commit=self.commit_seqno,
                )
                if shared is not None:
                    shared[next_seqno] = message
            obs = self.scheduler.obs
            if obs is not None:
                obs.append_entries_sent(self.node_id, peer, len(message.entries))
            self.host.send_consensus_message(peer, message)
            if not message.entries:
                break
            covered = message.entries[-1].txid.seqno
            if covered >= self.ledger.last_seqno:
                break
            self._next_index[peer] = covered + 1

    def replicate_now(self) -> None:
        """Push new entries to peers immediately (called after the host
        appends user transactions, so writes don't wait for the heartbeat)."""
        if self.role is not Role.PRIMARY:
            return
        shared: dict[int, AppendEntries] = {}
        for peer in self._replication_targets():
            if self._next_index.get(peer, 1) <= self.ledger.last_seqno:
                self._send_append_entries(
                    peer, shared, windows=self.config.catch_up_windows
                )

    def on_append_entries(self, message: AppendEntries) -> None:
        if self._stopped:
            return
        if message.view < self.view:
            self.host.send_consensus_message(
                message.leader_id,
                AppendEntriesResponse(
                    view=self.view, sender=self.node_id, success=False, match_hint=0
                ),
            )
            return
        if message.view > self.view or self.role is not Role.BACKUP:
            self._step_down(message.view)
        self.leader_id = message.leader_id
        self.last_leader_contact = self.scheduler.now
        self._reset_election_timer()

        if not self.ledger.has_txid(message.prev_txid):
            hint = min(self.ledger.last_seqno, max(0, message.prev_txid.seqno - 1))
            self.host.send_consensus_message(
                message.leader_id,
                AppendEntriesResponse(
                    view=self.view, sender=self.node_id, success=False, match_hint=hint
                ),
            )
            return

        # The prefix matches; integrate the entries, deleting conflicts
        # ("the primary's ledger is the ground truth", section 4.2).
        for entry in message.entries:
            seqno = entry.txid.seqno
            if seqno <= self.ledger.last_seqno:
                if self.ledger.entry_at(seqno).txid == entry.txid:
                    continue  # already have this exact entry
                self._rollback(seqno - 1)
            new_config = self.host.apply_replicated_entry(entry)
            self.view_history.note_append(entry.txid)
            if new_config is not None:
                self.configurations.add(seqno, new_config)

        last_covered = (
            message.entries[-1].txid.seqno if message.entries else message.prev_txid.seqno
        )
        new_commit = min(message.leader_commit, last_covered)
        if new_commit < message.leader_commit:
            # Commit only happens at signature transactions (section 4.1).
            # A catching-up backup whose covered prefix ends mid-window must
            # round the leader's commit index down to the last signature it
            # holds — the entries in between are not yet commit-provable
            # here. (Found by the chaos engine: a disk-loss replacement
            # being caught up would otherwise park its commit point on a
            # user transaction.)
            signature = self.ledger.prev_signature_seqno(new_commit)
            new_commit = signature if signature is not None else self.ledger.base_seqno
        if new_commit > self.commit_seqno:
            self._advance_commit(new_commit)

        # Report only the prefix this append_entries actually covered — NOT
        # the backup's total ledger length. The ledger may extend past
        # last_covered with a stale suffix from an older view that this
        # leader never sent; counting it toward match_index would let the
        # leader "commit" entries a majority never received. (Found by the
        # bounded explorer in repro.verification — the reproduction's
        # analog of the paper's TLA+ model checking.)
        self.host.send_consensus_message(
            message.leader_id,
            AppendEntriesResponse(
                view=self.view,
                sender=self.node_id,
                success=True,
                last_seqno=last_covered,
            ),
        )

    def on_append_entries_response(self, message: AppendEntriesResponse) -> None:
        if self._stopped:
            return
        if message.view > self.view:
            self._step_down(message.view)
            return
        if self.role is not Role.PRIMARY or message.view != self.view:
            return
        peer = message.sender
        self._last_ack[peer] = self.scheduler.now
        if message.success:
            advanced = message.last_seqno > self._match_index.get(peer, 0)
            self._match_index[peer] = max(self._match_index.get(peer, 0), message.last_seqno)
            # Optimistic pipelining may already have next_index past this
            # ack's match point; never rewind it on success, or the windows
            # in flight between here and there would be re-sent.
            self._next_index[peer] = max(
                self._next_index.get(peer, 1), self._match_index[peer] + 1
            )
            if advanced:
                self._try_advance_commit()
            if self._next_index[peer] <= self.ledger.last_seqno:
                # Keep catching the peer up, a pipelined burst at a time.
                self._send_append_entries(
                    peer, windows=self.config.catch_up_windows
                )
        else:
            current = self._next_index.get(peer, self.ledger.last_seqno + 1)
            self._next_index[peer] = max(1, min(current - 1, message.match_hint + 1))
            self._send_append_entries(peer)

    # ------------------------------------------------------------------
    # Commit (sections 4.1 & 4.4)

    def _try_advance_commit(self) -> None:
        """Find the highest current-view signature transaction replicated to
        a majority of every active configuration."""
        best = self.commit_seqno
        seqno = self.ledger.next_signature_seqno(self.commit_seqno)
        while seqno is not None:
            entry = self.ledger.entry_at(seqno)
            if entry.txid.view == self.view:
                acks = {self.node_id} | {
                    peer
                    for peer, match in self._match_index.items()
                    if match >= seqno
                }
                if self.configurations.quorum_in_each(acks):
                    best = seqno
                else:
                    break  # higher signatures can't be satisfied either
            seqno = self.ledger.next_signature_seqno(seqno)
        if best > self.commit_seqno:
            self._advance_commit(best)

    def _advance_commit(self, seqno: int) -> None:
        self.commit_seqno = seqno
        obs = self.scheduler.obs
        if obs is not None:
            obs.commit_advanced(self.node_id, self.view, seqno)
        self.configurations.on_commit(seqno)
        self.host.on_commit(seqno)

    # ------------------------------------------------------------------
    # Rollback

    def _rollback(self, seqno: int) -> None:
        if seqno < self.commit_seqno:
            raise ConsensusError(
                f"attempted rollback below commit ({seqno} < {self.commit_seqno})"
            )
        self.host.truncate_to(seqno)
        self.view_history.rollback(seqno)
        self.configurations.rollback(seqno)

    # ------------------------------------------------------------------
    # Queries

    @property
    def is_primary(self) -> bool:
        return self.role is Role.PRIMARY

    @property
    def can_accept_writes(self) -> bool:
        return self.role is Role.PRIMARY and not self.writes_frozen

    def status_of(self, txid: TxID) -> TxStatus:
        return transaction_status(
            txid,
            ledger_has_txid=self.ledger.has_txid(txid),
            last_seqno=self.ledger.last_seqno,
            commit_seqno=self.commit_seqno,
            history=self.view_history,
        )

    def dispatch(self, message: object) -> None:
        """Route a consensus message to its handler."""
        if isinstance(message, AppendEntries):
            self.on_append_entries(message)
        elif isinstance(message, AppendEntriesResponse):
            self.on_append_entries_response(message)
        elif isinstance(message, RequestVote):
            self.on_request_vote(message)
        elif isinstance(message, RequestVoteResponse):
            self.on_request_vote_response(message)
        else:
            raise TypeError(f"not a consensus message: {type(message).__name__}")
