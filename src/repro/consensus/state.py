"""Consensus-adjacent state: node lifecycle statuses, roles, view history,
and transaction status determination (Figures 4 & 6)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConsensusError
from repro.ledger.entry import TxID


class NodeStatus(str, enum.Enum):
    """Governance-level node lifecycle (Figure 6), stored in
    ``public:ccf.gov.nodes.info``."""

    PENDING = "Pending"
    TRUSTED = "Trusted"
    RETIRING = "Retiring"
    RETIRED = "Retired"


class Role(str, enum.Enum):
    """Consensus role within a TRUSTED node (Figure 6's inner states)."""

    BACKUP = "Backup"
    CANDIDATE = "Candidate"
    PRIMARY = "Primary"


class TxStatus(str, enum.Enum):
    """User-visible transaction statuses (Figure 4)."""

    UNKNOWN = "Unknown"
    PENDING = "Pending"
    COMMITTED = "Committed"
    INVALID = "Invalid"


@dataclass(frozen=True)
class ViewStart:
    """One view's first sequence number, per this node's ledger."""

    view: int
    first_seqno: int


class ViewHistory:
    """Each node's record of the start index of every view it has seen in
    its ledger (section 4.3). Used to answer transaction-status queries:
    a transaction is Invalid if a greater view started at a smaller or
    equal sequence number."""

    def __init__(self) -> None:
        self._starts: list[ViewStart] = []

    def note_append(self, txid: TxID) -> None:
        """Record that ``txid`` was appended to the ledger."""
        if not self._starts or txid.view > self._starts[-1].view:
            self._starts.append(ViewStart(view=txid.view, first_seqno=txid.seqno))
        elif txid.view < self._starts[-1].view:
            raise ConsensusError(
                f"append in view {txid.view} after view {self._starts[-1].view}"
            )

    def rollback(self, seqno: int) -> None:
        """Entries after ``seqno`` were discarded."""
        self._starts = [s for s in self._starts if s.first_seqno <= seqno]

    def view_of(self, seqno: int) -> int | None:
        """The view whose range contains ``seqno`` (per this ledger)."""
        result = None
        for start in self._starts:
            if start.first_seqno <= seqno:
                result = start.view
            else:
                break
        return result

    def invalidated(self, txid: TxID) -> bool:
        """True if some greater view started at seqno <= txid.seqno, which
        means this exact transaction can never (re)appear."""
        return any(
            start.view > txid.view and start.first_seqno <= txid.seqno
            for start in self._starts
        )

    def starts(self) -> list[ViewStart]:
        return list(self._starts)


def transaction_status(
    txid: TxID,
    ledger_has_txid: bool,
    last_seqno: int,
    commit_seqno: int,
    history: ViewHistory,
) -> TxStatus:
    """Classify a transaction ID per Figure 4, from one node's perspective."""
    if txid.seqno == 0:
        return TxStatus.COMMITTED  # genesis is trivially committed
    if ledger_has_txid:
        if txid.seqno <= commit_seqno:
            return TxStatus.COMMITTED
        return TxStatus.PENDING
    # Not in our ledger with this exact (view, seqno).
    if txid.seqno <= commit_seqno:
        # Something else committed at that seqno; this ID will never commit.
        return TxStatus.INVALID
    if history.invalidated(txid):
        return TxStatus.INVALID
    if txid.seqno <= last_seqno:
        # A different transaction occupies that seqno but is not committed;
        # the queried ID could still win if views change. From this node's
        # perspective it is unknown.
        return TxStatus.UNKNOWN
    return TxStatus.UNKNOWN
