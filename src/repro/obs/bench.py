"""Traced benchmark: the paper's Figure-7 logging workload with full
observability attached.

Runs a 5-node service under a closed-loop write workload with an
:class:`repro.obs.ObsCollector` attached from before bootstrap, then:

- reports simulated-time throughput and nearest-rank p50/p99 latency;
- profiles where the p99 request's latency went (span-attributed costs);
- verifies that every committed write reconstructs its full causal span
  tree (request -> execute -> ledger.append, plus a closed commit_wait);
- replays the trace's consensus/ledger events through the model-based
  conformance checker.

The result is machine-readable (``BENCH_pr3.json`` in CI) so regressions
in either performance or trace structure show up as data, not vibes.
"""

from __future__ import annotations

import json

from repro.app.logging_app import build_logging_app
from repro.node.config import NodeConfig
from repro.obs.checker import check_trace
from repro.obs.collector import ObsCollector
from repro.obs.profile import profile_spans
from repro.obs.spans import Span, build_tree
from repro.service.client import ClosedLoopClient, ServiceClient
from repro.service.service import CCFService, ServiceSetup
from repro.sim.metrics import LatencyRecorder, ThroughputRecorder

MESSAGE = "payload-20-chars-xyz"  # the paper's 20-character private message


def verify_causal_trees(spans: list[Span]) -> dict:
    """Check that each committed write request's causal tree is complete.

    A committed write is identified by its closed (not rolled back, not
    detach-closed) ``commit_wait`` span. Its tree must contain, under the
    same ``request`` root: an ``execute`` span on the same node, and a
    ``ledger.append`` event for the same seqno beneath that execute span.
    """
    by_id = {span.span_id: span for span in spans}
    children = build_tree(spans)
    committed = 0
    complete = 0
    problems: list[str] = []

    for span in spans:
        if span.name != "commit_wait" or span.end is None:
            continue
        if span.attrs.get("rolled_back") or span.attrs.get("detached"):
            continue
        committed += 1
        seqno = span.attrs.get("seqno")
        root = by_id.get(span.parent_id or "")
        if root is None or root.name != "request":
            problems.append(f"commit_wait seqno={seqno}: no request root")
            continue
        executes = [c for c in children.get(root.span_id, []) if c.name == "execute"]
        appends = [
            grandchild
            for execute in executes
            for grandchild in children.get(execute.span_id, [])
            if grandchild.name == "ledger.append"
            and grandchild.attrs.get("seqno") == seqno
        ]
        if not executes:
            problems.append(f"request {root.trace_id}: no execute span")
        elif not appends:
            problems.append(
                f"request {root.trace_id}: no ledger.append for seqno {seqno}"
            )
        else:
            complete += 1

    return {
        "committed_writes": committed,
        "complete_trees": complete,
        "problems": problems[:10],  # enough to diagnose, bounded output
    }


def run_traced_benchmark(
    seed: int = 7,
    n_nodes: int = 5,
    concurrency: int = 50,
    warmup: float = 0.1,
    window: float = 0.4,
    signature_interval: int = 20,
) -> dict:
    """One traced operating point; returns the machine-readable report."""
    collector = ObsCollector(seed=seed)
    # Fast-path cache counters are process-global; report this run's deltas.
    fastpath_start = dict(collector.export_fastpath_stats())
    setup = ServiceSetup(
        n_nodes=n_nodes,
        node_config=NodeConfig(
            signature_interval=signature_interval,
            signature_flush_time=0.01,
            worker_threads=10,
        ),
        app_factory=build_logging_app,
        seed=seed,
    )
    service = CCFService(setup)
    # Attach before bootstrap: nodes self-wire their ledger/store/enclave
    # at creation, so even genesis appends land in the trace.
    collector.attach_to_service(service)
    service.bootstrap()

    primary = service.primary_node()
    user = service.users[0]
    credentials = {"certificate": user.certificate.to_dict()}
    endpoint = ServiceClient(
        service.scheduler, service.network, name="obs-bench-writer", identity=user
    )
    throughput = ThroughputRecorder()
    latency = LatencyRecorder()

    def factory(i: int):
        return "/app/write_message", {"id": i % 100, "msg": MESSAGE}, credentials

    client = ClosedLoopClient(
        endpoint,
        primary.node_id,
        factory,
        concurrency=concurrency,
        throughput=throughput,
        latency=latency,
        retry_timeout=2.0,
    )
    client.start()
    service.run(warmup)
    start = service.scheduler.now
    service.run(window)
    end = service.scheduler.now
    client.stop()
    service.run(0.1)  # drain in-flight requests so their roots close

    report = profile_spans(collector.spans)
    causal = verify_causal_trees(collector.spans)
    conformance = check_trace(collector.spans)
    fastpath_end = collector.export_fastpath_stats()
    fastpath = {
        name: value - fastpath_start.get(name, 0)
        for name, value in sorted(fastpath_end.items())
    }
    snapshot = collector.registry.snapshot()

    return {
        "bench": "obs-traced-logging",
        "seed": seed,
        "nodes": n_nodes,
        "concurrency": concurrency,
        "window": window,
        "writes_per_second": throughput.throughput(start, end),
        "latency": {
            "count": latency.count,
            "mean": latency.mean(),
            "p50": latency.percentile(50),
            "p99": latency.percentile(99),
        },
        "profile": report.to_dict(),
        "causal_trees": causal,
        "conformance": {
            "ok": conformance.ok,
            "violation": conformance.violation,
            "events_checked": conformance.events_checked,
            "has_gaps": conformance.has_gaps,
        },
        "spans": len(collector.spans),
        "errors": client.errors,
        "fastpath": fastpath,
        "metrics_sample": {
            name: value
            for name, value in snapshot.items()
            if name.startswith(("consensus.append_entries", "ledger.appends"))
        },
    }


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="traced Figure-7 benchmark")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--nodes", type=int, default=5)
    parser.add_argument("--concurrency", type=int, default=50)
    parser.add_argument("--window", type=float, default=0.4)
    parser.add_argument("--out", default="", help="write JSON report here")
    parser.add_argument(
        "--require-cache-hits",
        action="store_true",
        help="fail unless the crypto/serialization fast paths were engaged "
        "(cache-hit counters > 0) during the workload",
    )
    args = parser.parse_args(argv)

    result = run_traced_benchmark(
        seed=args.seed,
        n_nodes=args.nodes,
        concurrency=args.concurrency,
        window=args.window,
    )
    text = json.dumps(result, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(text)

    causal = result["causal_trees"]
    ok = (
        result["conformance"]["ok"]
        and causal["committed_writes"] > 0
        and causal["complete_trees"] == causal["committed_writes"]
    )
    if args.require_cache_hits:
        fastpath = result["fastpath"]
        # The traced workload must actually engage each fast-path layer:
        # comb-based signing, wNAF double-scalar verification, serialize-once
        # AppendEntries batches, and at least one verification-adjacent cache.
        required = {
            "fastec.generator_mults": "comb signing",
            "fastec.double_mults": "wNAF verification",
            "ae_encode.reuses": "serialize-once AppendEntries",
        }
        engaged = True
        for name, what in required.items():
            if fastpath.get(name, 0) <= 0:
                print(f"perf-smoke: fast path not engaged: {what} ({name} == 0)")
                engaged = False
        hit_counters = [
            value
            for name, value in fastpath.items()
            if name.endswith(".hits") or name.endswith(".reuses")
        ]
        if sum(hit_counters) <= 0:
            print("perf-smoke: no cache produced a single hit")
            engaged = False
        ok = ok and engaged
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
