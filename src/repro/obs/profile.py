"""Span-attributed cost profiling: where did a request's latency go?

The cost model (:mod:`repro.perf.costmodel`) charges simulated seconds for
execution, signing, forwarding, and replication; the collector attributes
each charge to the span that incurred it. This module folds a trace into
per-request profiles and answers the paper-evaluation question directly:
"the p99 request spent 61% of its latency waiting on replication and 22%
on signing" (Figures 7–8 are exactly such decompositions).

Categories (charged by the instrumentation sites):

- ``execution``        worker service time for the request
- ``queue_wait``       time queued behind other requests on the worker pool
- ``signing``          signature-transaction cost triggered by this request
- ``replication_wait`` append -> primary-commit wait for the request's seqno
- ``forwarding``       backup -> primary forwarding cost

Anything not covered by a charge (network latency, heartbeat alignment) is
reported as ``uncharged``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import nearest_rank
from repro.obs.spans import Span


@dataclass
class TraceProfile:
    """One completed request: its latency and cost attribution."""

    trace_id: str
    latency: float
    start: float
    costs: dict[str, float] = field(default_factory=dict)
    path: str = ""
    client: str = ""
    status: int = 0
    n_spans: int = 0

    @property
    def charged(self) -> float:
        return sum(self.costs.values())

    @property
    def uncharged(self) -> float:
        return max(0.0, self.latency - self.charged)

    def fractions(self) -> dict[str, float]:
        """category -> fraction of latency, including ``uncharged``."""
        if self.latency <= 0:
            return {}
        out = {
            category: seconds / self.latency
            for category, seconds in sorted(self.costs.items())
        }
        if self.uncharged > 0:
            out["uncharged"] = self.uncharged / self.latency
        return out

    def to_dict(self) -> dict:
        return {
            "trace": self.trace_id,
            "latency": self.latency,
            "start": self.start,
            "costs": dict(sorted(self.costs.items())),
            "path": self.path,
            "status": self.status,
            "spans": self.n_spans,
        }


class ProfileReport:
    """All completed requests of one trace, sorted by latency."""

    def __init__(self, profiles: list[TraceProfile]):
        self.profiles = sorted(profiles, key=lambda p: (p.latency, p.trace_id))
        self._latencies = [p.latency for p in self.profiles]

    @property
    def count(self) -> int:
        return len(self.profiles)

    def mean_latency(self) -> float:
        if not self.profiles:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def percentile(self, p: float) -> float:
        return nearest_rank(self._latencies, p)

    def profile_at(self, p: float) -> TraceProfile | None:
        """The request sitting at the p-th percentile (nearest rank)."""
        if not self.profiles:
            return None
        target = self.percentile(p)
        for profile in self.profiles:
            if profile.latency == target:
                return profile
        return self.profiles[-1]

    def aggregate_costs(self) -> dict[str, float]:
        """Total simulated seconds per category across all requests."""
        totals: dict[str, float] = {}
        for profile in self.profiles:
            for category, seconds in profile.costs.items():
                totals[category] = totals.get(category, 0.0) + seconds
        return dict(sorted(totals.items()))

    def to_dict(self) -> dict:
        p99 = self.profile_at(99)
        return {
            "requests": self.count,
            "latency": {
                "mean": self.mean_latency(),
                "p50": self.percentile(50),
                "p99": self.percentile(99),
                "max": self._latencies[-1] if self._latencies else 0.0,
            },
            "aggregate_costs": self.aggregate_costs(),
            "p99_breakdown": p99.fractions() if p99 is not None else {},
        }

    def format_text(self) -> str:
        lines = [
            f"requests: {self.count}  "
            f"mean {self.mean_latency() * 1e3:.3f}ms  "
            f"p50 {self.percentile(50) * 1e3:.3f}ms  "
            f"p99 {self.percentile(99) * 1e3:.3f}ms"
        ]
        for label, p in (("p50", 50), ("p99", 99)):
            profile = self.profile_at(p)
            if profile is None:
                continue
            parts = ", ".join(
                f"{category} {fraction:.0%}"
                for category, fraction in profile.fractions().items()
            )
            lines.append(
                f"{label} request ({profile.latency * 1e3:.3f}ms, "
                f"{profile.path}): {parts}"
            )
        totals = self.aggregate_costs()
        if totals:
            parts = ", ".join(
                f"{category} {seconds * 1e3:.3f}ms"
                for category, seconds in totals.items()
            )
            lines.append(f"aggregate cost: {parts}")
        return "\n".join(lines)


def profile_spans(spans: list[Span]) -> ProfileReport:
    """Fold a span list into per-request profiles. Only completed ``request``
    roots count; their trace's spans contribute cost charges."""
    costs_by_trace: dict[str, dict[str, float]] = {}
    spans_by_trace: dict[str, int] = {}
    for span in spans:
        bucket = costs_by_trace.setdefault(span.trace_id, {})
        spans_by_trace[span.trace_id] = spans_by_trace.get(span.trace_id, 0) + 1
        for category, seconds in span.costs.items():
            bucket[category] = bucket.get(category, 0.0) + seconds

    profiles = []
    for span in spans:
        if span.name != "request" or not span.is_root or span.end is None:
            continue
        if span.attrs.get("detached"):
            continue  # closed artificially at detach time, not a real latency
        profiles.append(
            TraceProfile(
                trace_id=span.trace_id,
                latency=span.duration,
                start=span.start,
                costs=dict(costs_by_trace.get(span.trace_id, {})),
                path=span.attrs.get("path", ""),
                client=span.attrs.get("client", ""),
                status=span.attrs.get("status", 0),
                n_spans=spans_by_trace.get(span.trace_id, 0),
            )
        )
    return ProfileReport(profiles)
