"""Trace conformance checking: replay an exported trace against the model.

"Smart Casual Verification of CCF" (PAPERS.md) validates live execution
traces against the TLA+ spec. This is the reproduction's version of that
loop: every traced run emits ledger/consensus events (via
:mod:`repro.obs.collector`), and this module folds those events back into
the abstract states of :mod:`repro.verification.model`, checking the model's
safety invariants — election safety, commit agreement, committed-prefix
stability — after every event. A passing chaos run is therefore not just
"nothing crashed" but "every observed state transition was one the spec
allows".

Event vocabulary (span names; all zero-duration events with a ``node``):

- ``ledger.append``   attrs: view, seqno, kind, sig
- ``ledger.truncate`` attrs: seqno
- ``consensus.commit`` attrs: view, seqno
- ``consensus.become_primary`` / ``consensus.step_down`` /
  ``consensus.election`` attrs: view

A trace recorded from mid-run attachment (or from a node that joined via
snapshot) has *log gaps*: the entries below the snapshot base were never
observed. Gapped traces degrade gracefully — election safety is still
checked exactly, while log-prefix invariants (which need the full prefix)
are skipped and reported via ``has_gaps``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.spans import Span, load_jsonl
from repro.verification import model

EVENT_NAMES = frozenset(
    (
        "ledger.append",
        "ledger.truncate",
        "consensus.commit",
        "consensus.become_primary",
        "consensus.step_down",
        "consensus.election",
    )
)


@dataclass
class CheckResult:
    """Outcome of one trace conformance check."""

    violation: str | None = None
    events_checked: int = 0
    states_checked: int = 0
    nodes: list[str] = field(default_factory=list)
    has_gaps: bool = False

    @property
    def ok(self) -> bool:
        return self.violation is None

    def describe(self) -> str:
        if self.ok:
            suffix = " (log invariants skipped: gapped trace)" if self.has_gaps else ""
            return (
                f"conformant: {self.events_checked} events over "
                f"{len(self.nodes)} nodes{suffix}"
            )
        return f"violation after {self.events_checked} events: {self.violation}"


class _NodeFold:
    """One node's abstract state, folded from its trace events."""

    __slots__ = ("view", "role", "log", "commit", "gapped")

    def __init__(self) -> None:
        self.view = 1
        self.role = model.BACKUP
        self.log: list[tuple[int, bool]] = []
        self.commit = 0
        self.gapped = False


class TraceChecker:
    """Feed trace events in order; every fold step is invariant-checked."""

    def __init__(self) -> None:
        self._nodes: dict[str, _NodeFold] = {}
        self._order: list[str] = []  # first-seen order (stable node indexing)
        self._prev_state: model.State | None = None
        self.result = CheckResult()

    def _node(self, node_id: str) -> _NodeFold:
        fold = self._nodes.get(node_id)
        if fold is None:
            fold = _NodeFold()
            self._nodes[node_id] = fold
            self._order.append(node_id)
            self.result.nodes.append(node_id)
            # The node set changed shape: edge checks compare states
            # node-wise, so restart the edge chain from here.
            self._prev_state = None
        return fold

    @property
    def has_gaps(self) -> bool:
        return self.result.has_gaps

    def _abstract_state(self) -> model.State:
        """The current global abstract state. For gapped traces the logs and
        commits are zeroed: election safety still checks exactly, while the
        prefix invariants degrade to trivially-true (reported via has_gaps)."""
        nodes = []
        for node_id in self._order:
            fold = self._nodes[node_id]
            if self.result.has_gaps:
                nodes.append((fold.view, fold.role, (), 0))
            else:
                nodes.append((fold.view, fold.role, tuple(fold.log), fold.commit))
        return tuple(nodes)

    def feed(self, span: Span) -> str | None:
        """Fold one event span; returns a violation description (and records
        it) or None. Non-event spans are ignored."""
        if self.result.violation is not None:
            return self.result.violation
        if span.name not in EVENT_NAMES or span.node is None:
            return None
        fold = self._node(span.node)
        attrs = span.attrs
        self.result.events_checked += 1

        if span.name == "ledger.append":
            seqno, view = attrs["seqno"], attrs["view"]
            expected = len(fold.log) + 1
            if fold.gapped or seqno > expected:
                # Snapshot-based ledger (or mid-run attach): prefix unseen.
                fold.gapped = True
                self.result.has_gaps = True
            elif seqno < expected:
                return self._fail(
                    span,
                    f"append at seqno {seqno} but log already has "
                    f"{len(fold.log)} entries (no truncate observed)",
                )
            else:
                fold.log.append((view, bool(attrs.get("sig", False))))
        elif span.name == "ledger.truncate":
            seqno = attrs["seqno"]
            if not fold.gapped:
                if seqno < fold.commit:
                    return self._fail(
                        span,
                        f"truncate to {seqno} below commit {fold.commit}",
                    )
                del fold.log[seqno:]
        elif span.name == "consensus.commit":
            seqno, view = attrs["seqno"], attrs["view"]
            fold.view = max(fold.view, view)
            if not fold.gapped and seqno > len(fold.log):
                return self._fail(
                    span,
                    f"commit {seqno} beyond observed log length {len(fold.log)}",
                )
            if seqno < fold.commit:
                return self._fail(
                    span, f"commit regressed {fold.commit} -> {seqno}"
                )
            fold.commit = seqno
        elif span.name == "consensus.become_primary":
            fold.role = model.PRIMARY
            fold.view = attrs["view"]
        elif span.name == "consensus.step_down":
            fold.role = model.BACKUP
            fold.view = max(fold.view, attrs["view"])
        elif span.name == "consensus.election":
            fold.role = model.BACKUP  # candidate: not a primary yet
            fold.view = max(fold.view, attrs["view"])

        state = self._abstract_state()
        self.result.states_checked += 1
        violation = model.check_state(state)
        if violation is None and self._prev_state is not None:
            violation = model.check_edge(self._prev_state, state)
        if violation is not None:
            return self._fail(span, violation)
        self._prev_state = state
        return None

    def _fail(self, span: Span, description: str) -> str:
        violation = f"[span {span.index} {span.name} node={span.node}] {description}"
        self.result.violation = violation
        return violation


def check_trace(spans: list[Span]) -> CheckResult:
    """Replay a full trace (span list, creation order) through the checker."""
    checker = TraceChecker()
    for span in sorted(spans, key=lambda s: s.index):
        checker.feed(span)
        if checker.result.violation is not None:
            break
    return checker.result


def check_trace_text(jsonl: str) -> CheckResult:
    """Check a JSONL trace export (as produced by ``export_jsonl``)."""
    return check_trace(load_jsonl(jsonl))
