"""The observability collector: span tracer + metrics registry in one.

One :class:`ObsCollector` observes one simulated run. It is attached to the
scheduler (``collector.attach_to_service(service)``) and from then on every
instrumented layer — scheduler, network, consensus, node frontend, ledger,
KV store, enclave — reports into it through the hook methods below. Every
hook site in the runtime is guarded (``if obs is not None``), so with no
collector attached the whole layer costs one attribute check and allocates
nothing.

Determinism contract (DESIGN.md § determinism discipline):

- the collector never reads a wall clock — all timestamps are
  ``scheduler.now``;
- span ids come from the collector's *own* RNG (seeded from the collector
  seed), never from the scheduler's stream — attaching a collector does not
  change the run it observes;
- process-global counters (request ids) are used only as in-memory
  correlation keys and never exported.

Equal seeds therefore yield byte-identical JSONL exports, which is what the
trace checker (:mod:`repro.obs.checker`) and the replay sanitizer rely on.

Causal model of one write request (the paper's sections 3.1/4.1 lifecycle)::

    request                      (client submit .. client response)
    ├─ execute                   (worker pickup .. handler done)
    │  ├─ ledger.append          (entry framed and appended, seqno bound)
    │  └─ signature_tx           (when this request triggered a signature)
    ├─ commit_wait               (append .. primary commit covers seqno)
    │  └─ consensus.commit       (the commit advance that closed it)
    └─ receipt                   (receipt issued for the seqno)
"""

from __future__ import annotations

import random

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, export_jsonl, sanitize_attrs


def estimate_wire_size(payload: object) -> int:
    """A deterministic byte-size estimate for a simulated network message.

    Sealed channel traffic (the common case) is measured exactly from its
    ciphertext; plain payloads are walked structurally with a small per-field
    overhead, mirroring what a length-prefixed codec would produce.
    """
    # Frame segments are sized before the frame is sealed (sealing happens
    # at event end, after every segment is already in flight), so they are
    # measured from the recorded plaintext size: the segment's payload plus
    # the frame header (sender + counter + AEAD tag) amortized onto the
    # first segment and a small per-segment index overhead after that.
    frame = getattr(payload, "frame", None)
    index = getattr(payload, "index", None)
    if frame is not None and index is not None:
        return frame.payload_sizes[index] + (37 if index == 0 else 5)
    box = getattr(payload, "box", None)
    if isinstance(box, bytes):
        return len(box) + 16  # header: sender + counter
    return _walk_size(payload, depth=0)


def _walk_size(value: object, depth: int) -> int:
    if depth > 6:
        return 8
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, str):
        return len(value)
    if isinstance(value, dict):
        return 2 + sum(
            _walk_size(k, depth + 1) + _walk_size(v, depth + 1)
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple)):
        return 2 + sum(_walk_size(item, depth + 1) for item in value)
    fields = getattr(value, "__dataclass_fields__", None)
    if fields is not None:
        return 2 + sum(
            _walk_size(getattr(value, name), depth + 1) for name in fields
        )
    return 16


class ObsCollector:
    """Spans + metrics for one simulated run."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.registry = MetricsRegistry()
        self.spans: list[Span] = []
        self._id_rng = random.Random(f"repro-obs|{seed}")
        self._scheduler = None
        # Correlation state (in-memory only; never exported).
        self._root_by_request: dict[int, Span] = {}
        self._span_by_id: dict[str, Span] = {}
        self._exec_open: dict[tuple[str, int], Span] = {}
        self._root_by_seqno: dict[int, Span] = {}
        self._commit_open: dict[tuple[str, int], Span] = {}
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    # Attachment

    @property
    def now(self) -> float:
        return self._scheduler.now if self._scheduler is not None else 0.0

    def attach(self, scheduler) -> None:
        """Attach to a scheduler; components that hold the scheduler (net,
        consensus, node frontends) start reporting immediately, and nodes
        created later self-wire their ledger/store/enclave."""
        self._scheduler = scheduler
        scheduler.obs = self

    def attach_to_service(self, service) -> None:
        """Attach to a running service: the scheduler plus every existing
        node's ledger, store, and enclave."""
        self.attach(service.scheduler)
        for node in service.nodes.values():
            node.wire_obs(self)

    def detach_from_service(self, service) -> None:
        """Detach mid-run: close open spans and unhook every component.
        The run continues exactly as it would have (hooks are guarded and
        the collector never touched the scheduler's RNG)."""
        if service.scheduler.obs is self:
            service.scheduler.obs = None
        for node in service.nodes.values():
            node.wire_obs(None)
        now = self.now
        for span in self.spans:
            if span.end is None:
                span.end = now
                span.attrs["detached"] = True
        self._scheduler = None
        self._exec_open.clear()
        self._commit_open.clear()
        self._stack.clear()

    # ------------------------------------------------------------------
    # Span plumbing

    def _new_span(
        self,
        name: str,
        parent: Span | None = None,
        node: str | None = None,
        start: float | None = None,
        **attrs,
    ) -> Span:
        span_id = f"{self._id_rng.getrandbits(64):016x}"
        span = Span(
            index=len(self.spans),
            span_id=span_id,
            name=name,
            start=self.now if start is None else start,
            trace_id=parent.trace_id if parent is not None else span_id,
            parent_id=parent.span_id if parent is not None else None,
            node=node,
            # Attributes cross the trust boundary when traces are exported:
            # byte values (key material, sealed blobs) are redacted here so
            # no caller can accidentally put raw secrets in a span.
            attrs=sanitize_attrs(attrs),
        )
        self.spans.append(span)
        self._span_by_id[span_id] = span
        return span

    def _event(self, name: str, node: str | None = None, **attrs) -> Span:
        """A zero-duration span parented to the current causal context."""
        parent = self._stack[-1] if self._stack else None
        span = self._new_span(name, parent=parent, node=node, **attrs)
        span.end = span.start
        return span

    def export_jsonl(self) -> str:
        """All spans, creation order, one JSON object per line."""
        return export_jsonl(self.spans)

    def export_fastpath_stats(self) -> dict[str, int]:
        """Snapshot the crypto/serialization fast-path cache counters into
        the registry as ``fastpath.*`` counters, and return them.

        The counters live as process-global module state (the caches are
        shared across all simulated nodes — they memoize pure functions, so
        sharing cannot change outcomes) and are *host-side* quantities:
        exporting them records how hard the fast paths worked, not anything
        about simulated time.
        """
        from repro.consensus import messages
        from repro.crypto import certs, ec, ecdsa, fastec
        from repro.node import auth
        from repro.obs.metrics import RUNTIME_STATS

        merged: dict[str, int] = {}
        for stats in (
            fastec.STATS,
            ec.DECODE_STATS,
            ecdsa.MEMO_STATS,
            certs.CERT_STATS,
            messages.ENCODE_STATS,
            auth.AUTH_STATS,
            RUNTIME_STATS.snapshot(),
        ):
            merged.update(stats)
        for name in sorted(merged):
            self.registry.counter(f"fastpath.{name}").value = float(merged[name])
        return merged

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.is_root]

    # ------------------------------------------------------------------
    # Scheduler hooks

    def scheduler_event(self, queue_depth: int) -> None:
        self.registry.counter("scheduler.events").inc()
        self.registry.gauge("scheduler.queue_depth").set(queue_depth)

    # ------------------------------------------------------------------
    # Client hooks (one request's root span)

    def client_submit(self, request, client_name: str, target: str) -> None:
        span = self._new_span(
            "request", client=client_name, target=target, path=request.path
        )
        self._root_by_request[request.request_id] = span
        self.registry.counter("client.requests", client=client_name).inc()

    def client_response(self, request_id: int, status: int) -> None:
        root = self._root_by_request.get(request_id)
        if root is None or root.end is not None:
            return
        root.end = self.now
        root.attrs["status"] = status
        self.registry.counter(
            "client.responses", status=str(status), client=root.attrs.get("client", "")
        ).inc()

    # ------------------------------------------------------------------
    # Node frontend hooks

    def begin_execute(
        self,
        node_id: str,
        request,
        read_only: bool,
        queue_wait: float,
        service_time: float,
        busy_workers: int,
        forwarded: bool = False,
        batched: bool = False,
    ) -> None:
        root = self._root_by_request.get(request.request_id)
        span = self._new_span(
            "execute",
            parent=root,
            node=node_id,
            start=self.now + queue_wait,
            path=request.path,
            read_only=read_only,
        )
        if forwarded:
            span.attrs["forwarded"] = True
        if batched:
            span.attrs["batched"] = True
        span.charge("execution", service_time)
        if queue_wait > 0:
            span.charge("queue_wait", queue_wait)
        self._exec_open[(node_id, request.request_id)] = span
        kind = "read" if read_only else "write"
        self.registry.counter("node.requests", node=node_id, kind=kind).inc()
        self.registry.gauge("node.busy_workers", node=node_id).set(busy_workers)
        self.registry.histogram("node.queue_wait", node=node_id).observe(queue_wait)

    def enter_execute(self, node_id: str, request_id: int) -> None:
        span = self._exec_open.get((node_id, request_id))
        if span is not None:
            self._stack.append(span)

    def finish_execute(
        self, node_id: str, request_id: int, status: int | None = None
    ) -> None:
        span = self._exec_open.pop((node_id, request_id), None)
        if span is None:
            return
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        span.end = self.now
        if status is not None:
            span.attrs["status"] = status

    def request_forwarded(self, node_id: str, request_id: int, cost: float) -> None:
        root = self._root_by_request.get(request_id)
        span = self._event("forward", node=node_id)
        if root is not None:
            span.parent_id = root.span_id
            span.trace_id = root.trace_id
        span.charge("forwarding", cost)
        self.registry.counter("node.forwards", node=node_id).inc()

    def signature_tx(self, node_id: str, view: int, seqno: int, cost: float) -> None:
        span = self._event("signature_tx", node=node_id, view=view, seqno=seqno)
        span.charge("signing", cost)
        self.registry.counter("node.signature_txs", node=node_id).inc()

    # ------------------------------------------------------------------
    # Pipelined-execution hooks (PR 8)

    def pipeline_batch(
        self,
        node_id: str,
        n_requests: int,
        n_bytes: int,
        queue_wait: float,
        service_time: float,
    ) -> None:
        """One execution batch drained on the primary."""
        span = self._event(
            "pipeline.batch", node=node_id, requests=n_requests, bytes=n_bytes
        )
        span.charge("execution", service_time)
        if queue_wait > 0:
            span.charge("queue_wait", queue_wait)
        self.registry.counter("pipeline.batches", node=node_id).inc()
        self.registry.counter("pipeline.batched_requests", node=node_id).inc(
            n_requests
        )
        self.registry.histogram("pipeline.batch_size", node=node_id).observe(
            n_requests
        )
        self.registry.histogram("pipeline.batch_bytes", node=node_id).observe(n_bytes)

    def pipeline_conflict(self, node_id: str, path: str) -> None:
        """A speculative batched execution conflicted with an earlier write
        in its own batch and was rolled back + re-executed serially."""
        self._event("pipeline.conflict", node=node_id, path=path)
        self.registry.counter("pipeline.conflicts", node=node_id).inc()

    def offloaded_read(self, node_id: str, behind: bool) -> None:
        """A read served via read offload (or refused with a typed
        behind/rolled-back error — never silently stale)."""
        kind = "behind" if behind else "served"
        self.registry.counter("pipeline.offloaded_reads", node=node_id, kind=kind).inc()

    # ------------------------------------------------------------------
    # Ledger hooks (wired per node; ``owner`` is the node id)

    def ledger_append(self, owner: str, entry, private_bytes: int) -> None:
        parent = self._stack[-1] if self._stack else None
        span = self._event(
            "ledger.append",
            node=owner,
            view=entry.txid.view,
            seqno=entry.txid.seqno,
            kind=entry.kind.value,
            sig=entry.is_signature,
        )
        self.registry.counter("ledger.appends", node=owner).inc()
        self.registry.histogram("ledger.private_bytes", node=owner).observe(
            private_bytes
        )
        if parent is not None and parent.name == "execute":
            # Primary execution path: bind this seqno to the request's trace
            # and open the replication/commit wait clock for it.
            root = self._root_by_request_span(parent)
            self._root_by_seqno[entry.txid.seqno] = root
            wait = self._new_span(
                "commit_wait", parent=root, node=owner, seqno=entry.txid.seqno
            )
            self._commit_open[(owner, entry.txid.seqno)] = wait

    def _root_by_request_span(self, span: Span) -> Span:
        if span.parent_id is not None:
            return self._span_by_id.get(span.parent_id, span)
        return span

    def ledger_truncate(self, owner: str, seqno: int) -> None:
        self._event("ledger.truncate", node=owner, seqno=seqno)
        self.registry.counter("ledger.truncates", node=owner).inc()
        for key in [k for k in self._commit_open if k[0] == owner and k[1] > seqno]:
            span = self._commit_open.pop(key)
            span.end = self.now
            span.attrs["rolled_back"] = True

    def receipt_issued(self, owner: str, seqno: int, signature_seqno: int) -> None:
        root = self._root_by_seqno.get(seqno)
        span = self._event(
            "receipt", node=owner, seqno=seqno, signature_seqno=signature_seqno
        )
        if root is not None:
            span.parent_id = root.span_id
            span.trace_id = root.trace_id
        self.registry.counter("ledger.receipts", node=owner).inc()

    # ------------------------------------------------------------------
    # Consensus hooks

    def consensus_election(self, node_id: str, view: int) -> None:
        self._event("consensus.election", node=node_id, view=view)
        self.registry.counter("consensus.elections", node=node_id).inc()

    def consensus_become_primary(self, node_id: str, view: int) -> None:
        self._event("consensus.become_primary", node=node_id, view=view)
        self.registry.counter("consensus.primacies", node=node_id).inc()

    def consensus_step_down(self, node_id: str, view: int) -> None:
        self._event("consensus.step_down", node=node_id, view=view)
        self.registry.counter("consensus.step_downs", node=node_id).inc()

    def append_entries_sent(self, node_id: str, peer: str, n_entries: int) -> None:
        self.registry.counter("consensus.append_entries_sent", node=node_id).inc()
        if n_entries:
            self.registry.histogram("consensus.batch_entries", node=node_id).observe(
                n_entries
            )

    def commit_advanced(self, node_id: str, view: int, commit_seqno: int) -> None:
        commit_event = self._event(
            "consensus.commit", node=node_id, view=view, seqno=commit_seqno
        )
        self.registry.gauge("consensus.commit_seqno", node=node_id).set(commit_seqno)
        closable = sorted(
            key for key in self._commit_open
            if key[0] == node_id and key[1] <= commit_seqno
        )
        for key in closable:
            span = self._commit_open.pop(key)
            span.end = self.now
            span.charge("replication_wait", span.duration)
            # The commit event that released the request, in its trace.
            if commit_event.parent_id is None:
                commit_event.parent_id = span.span_id
                commit_event.trace_id = span.trace_id

    # ------------------------------------------------------------------
    # Network hooks

    def message_sent(self, src: str, dst: str, size: int) -> None:
        self.registry.counter("net.messages_sent", node=src).inc()
        self.registry.counter("net.bytes_sent", node=src).inc(size)

    def message_delivered(self, src: str, dst: str) -> None:
        self.registry.counter("net.messages_delivered", node=dst).inc()

    def message_dropped(self, src: str, dst: str) -> None:
        self.registry.counter("net.messages_dropped", node=dst).inc()

    def frame_sealed(self, node_id: str, messages: int, cost: float) -> None:
        """One coalesced frame sealed at event end: ``messages`` payloads
        under a single AEAD seal. ``cost`` is the CostModel's accounting
        estimate — recorded, never scheduled, so observing it cannot perturb
        the run (coalescing on/off must trace identically)."""
        self.registry.counter("net.frames_sealed", node=node_id).inc()
        self.registry.counter("net.frame_messages", node=node_id).inc(messages)
        self.registry.histogram("net.frame_size").observe(float(messages))
        self.registry.counter("net.frame_seal_cost", node=node_id).inc(cost)

    # ------------------------------------------------------------------
    # KV store hooks

    def store_applied(self, owner: str, version: int, n_maps: int) -> None:
        self.registry.counter("kv.write_sets_applied", node=owner).inc()
        self.registry.gauge("kv.version", node=owner).set(version)
        self.registry.gauge("kv.maps", node=owner).set(n_maps)

    def store_rollback(self, owner: str, version: int) -> None:
        self.registry.counter("kv.rollbacks", node=owner).inc()

    def store_compact(self, owner: str, version: int) -> None:
        self.registry.counter("kv.compactions", node=owner).inc()

    # ------------------------------------------------------------------
    # Enclave hooks

    def enclave_transition(self, owner: str, kind: str) -> None:
        self.registry.counter("tee.transitions", node=owner, kind=kind).inc()

    # ------------------------------------------------------------------
    # Disaster-recovery hooks (section 5.2)

    def recovery_event(self, node_id: str, phase: str, **attrs) -> None:
        """One disaster-recovery phase boundary: ``replay``,
        ``awaiting_shares``, ``share_submitted``, ``share_rejected``,
        ``reconstructed``, ``private_recovery``, ``open``. Each becomes a
        ``recovery.<phase>`` span plus a ``recovery.phases`` counter, so a
        trace of a recovered run shows the §5.2 protocol end to end."""
        self._event(f"recovery.{phase}", node=node_id, **attrs)
        self.registry.counter("recovery.phases", node=node_id, phase=phase).inc()

    # ------------------------------------------------------------------
    # Incremental state-transfer hooks (PR 9)

    def snapshot_produced(self, node_id: str, base_seqno: int, stats: dict) -> None:
        """One delta-snapshot production on the primary. ``stats`` carries
        only sizes and counts (chunk payloads are sealed and never reach
        span attributes)."""
        self._event(
            "statetransfer.snapshot", node=node_id, base_seqno=base_seqno, **stats
        )
        self.registry.counter("statetransfer.snapshots", node=node_id).inc()
        self.registry.counter("statetransfer.chunks_built", node=node_id).inc(
            stats.get("chunks_built", 0)
        )
        self.registry.counter("statetransfer.chunks_reused", node=node_id).inc(
            stats.get("chunks_reused", 0)
        )
        self.registry.counter("statetransfer.entries_serialized", node=node_id).inc(
            stats.get("entries_serialized", 0)
        )

    def state_transfer_event(self, node_id: str, phase: str, **attrs) -> None:
        """One chunked-join phase boundary: ``manifest`` (verified, transfer
        planned), ``chunks_served`` (primary side), ``installed`` (store
        assembled), ``fallback`` (transfer abandoned toward full join)."""
        self._event(f"statetransfer.{phase}", node=node_id, **attrs)
        self.registry.counter("statetransfer.events", node=node_id, phase=phase).inc()

    def state_chunks_progress(self, node_id: str, fetched: int, cached: int) -> None:
        """Chunk accounting on the joiner: ``fetched`` came over the wire,
        ``cached`` were satisfied from the local content-addressed cache
        (the dedup win a warm rejoin banks on)."""
        if fetched:
            self.registry.counter(
                "statetransfer.chunks_fetched", node=node_id
            ).inc(fetched)
        if cached:
            self.registry.counter(
                "statetransfer.chunks_cached", node=node_id
            ).inc(cached)
