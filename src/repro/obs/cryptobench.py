"""``python -m repro.obs.cryptobench``: host wall-clock crypto micro-suite.

Measures the reference P-256 paths (the plain double-and-add ladder in
:mod:`repro.crypto.ec`, exactly as the pre-fastec code ran them) against the
fast paths (:mod:`repro.crypto.fastec` comb tables, interleaved wNAF, and
the verification memo), differential-checking every fast result against the
reference **in the same run**, and emits a machine-readable before/after
speedup table (``BENCH_pr4.json`` in CI).

This file measures *host* wall-clock on purpose — it is the one place the
fast-path work is allowed to talk about real time. Simulated-time behaviour
is covered separately: the CostModel charges and per-seed trace digests are
asserted unchanged by the test suite.

``--check`` enforces the PR's acceptance floors: >= 3x on ECDSA verify and
>= 2x on sign.
"""

from __future__ import annotations

import json
# Host wall-clock measurement is this module's entire purpose; it never
# feeds the simulation.
import time  # repro-lint: disable=DET001

from repro.crypto import ct_eq, ec, fastec
from repro.crypto.ecdsa import (
    SigningKey,
    _rfc6979_nonce,
    clear_verify_memo,
    set_verify_memo,
)
from repro.crypto.hashing import sha256
from repro.errors import CryptoError


def _reference_sign(scalar: int, message: bytes) -> bytes:
    """RFC 6979 ECDSA signing on the reference ladder (the pre-fastec path)."""
    msg_hash = sha256(message)
    e = int.from_bytes(msg_hash, "big") % ec.N
    k = _rfc6979_nonce(scalar, bytes(msg_hash))
    point = ec.scalar_mult(k, ec.GENERATOR)
    r = point.x % ec.N
    s = (pow(k, -1, ec.N) * (e + r * scalar)) % ec.N
    return r.to_bytes(32, "big") + s.to_bytes(32, "big")


def _reference_verify(public: ec.Point, signature: bytes, message: bytes) -> bool:
    """ECDSA verification as two full reference ladders (the pre-fastec path)."""
    r = int.from_bytes(signature[:32], "big")
    s = int.from_bytes(signature[32:], "big")
    if not (1 <= r < ec.N and 1 <= s < ec.N):
        return False
    e = int.from_bytes(sha256(message), "big") % ec.N
    s_inv = pow(s, -1, ec.N)
    u1 = (e * s_inv) % ec.N
    u2 = (r * s_inv) % ec.N
    point = ec.point_add(ec.scalar_mult(u1, ec.GENERATOR), ec.scalar_mult(u2, public))
    return (not point.is_infinity) and point.x % ec.N == r


def _time_per_call(fn, iterations: int) -> float:
    start = time.perf_counter()  # repro-lint: disable=DET001
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations  # repro-lint: disable=DET001


def run_crypto_bench(iterations: int = 40) -> dict:
    """Run the before/after micro-suite; returns the report dict."""
    key = SigningKey.generate(b"cryptobench")
    public = key.public_key
    messages = [f"merkle-root-{i}".encode() for i in range(iterations)]
    signatures = [key.sign(m) for m in messages]

    # Differential check first: every fast output must be bit-identical to
    # the reference before any timing is worth reporting.
    for message, signature in zip(messages[:8], signatures[:8]):
        if not ct_eq(_reference_sign(key.scalar, message), signature):
            raise CryptoError("fast sign diverged from the reference ladder")
        if not _reference_verify(public.point, signature, message):
            raise CryptoError("reference verify rejected a fast signature")
    for k in (1, 2, 12345, ec.N - 1):
        if fastec.generator_mult(k) != ec.scalar_mult(k, ec.GENERATOR):
            raise CryptoError("comb diverged from the reference ladder")

    results: dict[str, dict] = {}

    def record(name: str, reference_s: float, fast_s: float) -> None:
        results[name] = {
            "reference_s": reference_s,
            "fast_s": fast_s,
            "speedup": reference_s / fast_s if fast_s > 0 else float("inf"),
        }

    # Fixed-base scalar multiplication (signing/keygen shape).
    scalar = int.from_bytes(sha256(b"cryptobench-scalar"), "big") % ec.N
    record(
        "scalar_mult_base",
        _time_per_call(lambda: ec.scalar_mult(scalar, ec.GENERATOR), iterations),
        _time_per_call(lambda: fastec.generator_mult(scalar), iterations),
    )

    # Arbitrary-point scalar multiplication (warm wNAF/comb tables: push
    # the point past comb promotion so the one-time table build is not
    # inside the timing loop — steady state is what the hot path runs).
    point = ec.scalar_mult(7777, ec.GENERATOR)
    for _ in range(fastec.PROMOTE_AFTER + 1):
        fastec.wnaf_mult(scalar, point)
    record(
        "scalar_mult_point",
        _time_per_call(lambda: ec.scalar_mult(scalar, point), iterations),
        _time_per_call(lambda: fastec.wnaf_mult(scalar, point), iterations),
    )

    # ECDSA sign (RFC 6979 nonce + k*G).
    counter = iter(range(10_000_000))
    record(
        "ecdsa_sign",
        _time_per_call(
            lambda: _reference_sign(key.scalar, b"ref-%d" % next(counter)), iterations
        ),
        _time_per_call(lambda: key.sign(b"fast-%d" % next(counter)), iterations),
    )

    # ECDSA verify, memo-miss path: distinct signatures against one hot key
    # (the follower/auditor shape; the per-key comb is warm, the memo never
    # hits because every message is new).
    previous = set_verify_memo(False)
    try:
        # Warm the public key past comb promotion (the hot-key steady state).
        for i in range(fastec.PROMOTE_AFTER + 1):
            public.verify(signatures[i % len(signatures)], messages[i % len(messages)])
        verify_iter = iter(range(iterations * 4))
        record(
            "ecdsa_verify",
            _time_per_call(
                lambda: _reference_verify(
                    public.point, *_pick(signatures, messages, next(verify_iter))
                ),
                iterations,
            ),
            _time_per_call(
                lambda: public.verify(*_pick(signatures, messages, next(verify_iter))),
                iterations,
            ),
        )
    finally:
        set_verify_memo(previous)

    # ECDSA verify, memo-hit path: the same signature transaction checked
    # over and over (N followers re-verifying the primary's signature).
    clear_verify_memo()
    public.verify(signatures[0], messages[0])  # populate
    record(
        "ecdsa_verify_memoized",
        results["ecdsa_verify"]["reference_s"],
        _time_per_call(lambda: public.verify(signatures[0], messages[0]), iterations),
    )

    return {
        "bench": "fastec-micro",
        "iterations": iterations,
        "results": results,
        "floors": {"ecdsa_verify": 3.0, "ecdsa_sign": 2.0},
    }


def _pick(signatures: list[bytes], messages: list[bytes], i: int) -> tuple[bytes, bytes]:
    j = i % len(signatures)
    return signatures[j], messages[j]


def check_floors(report: dict) -> list[str]:
    """Return a list of floor violations (empty means all floors met)."""
    problems = []
    for name, floor in report["floors"].items():
        speedup = report["results"][name]["speedup"]
        if speedup < floor:
            problems.append(f"{name}: {speedup:.2f}x < required {floor:.1f}x")
    return problems


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="crypto fast-path micro-suite")
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--out", default="", help="write JSON report here")
    parser.add_argument(
        "--check", action="store_true", help="fail below the speedup floors"
    )
    args = parser.parse_args(argv)

    report = run_crypto_bench(iterations=args.iterations)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    print(text)
    for name, row in sorted(report["results"].items()):
        print(
            f"{name:24s} reference {row['reference_s'] * 1e3:8.3f} ms   "
            f"fast {row['fast_s'] * 1e3:8.3f} ms   {row['speedup']:6.2f}x"
        )

    if args.check:
        problems = check_floors(report)
        for problem in problems:
            print(f"cryptobench: FLOOR MISSED: {problem}")
        return 1 if problems else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
