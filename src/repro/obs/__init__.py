"""Observability for the simulated service: causal span tracing, a metrics
registry, span-attributed cost profiling, and trace conformance checking.

Everything here obeys the determinism rules (DESIGN.md): simulated time
only, span ids from a dedicated seeded RNG, and no-op hooks when no
collector is attached — tracing a run never changes it.
"""

from repro.obs.collector import ObsCollector
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank,
)
from repro.obs.profile import ProfileReport, TraceProfile, profile_spans
from repro.obs.spans import (
    Span,
    build_tree,
    export_jsonl,
    load_jsonl,
    redact,
    sanitize_attrs,
)

# The trace checker imports repro.verification (and through it the
# consensus package); importing it eagerly here would close an import
# cycle, since repro.sim.metrics -> repro.obs is itself imported while
# repro.consensus is still initializing. PEP 562 lazy exports break it.
_CHECKER_EXPORTS = ("CheckResult", "TraceChecker", "check_trace", "check_trace_text")


def __getattr__(name: str):
    if name in _CHECKER_EXPORTS:
        from repro.obs import checker

        return getattr(checker, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CheckResult",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsCollector",
    "ProfileReport",
    "Span",
    "TraceChecker",
    "TraceProfile",
    "build_tree",
    "check_trace",
    "check_trace_text",
    "export_jsonl",
    "load_jsonl",
    "nearest_rank",
    "profile_spans",
    "redact",
    "sanitize_attrs",
]
