"""``python -m repro.obs``: run the traced benchmark (see bench.py)."""

from repro.obs.bench import main

raise SystemExit(main())
