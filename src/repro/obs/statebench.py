"""``python -m repro.obs.statebench``: incremental state transfer benchmark
(PR 9).

Two sweeps, both in the *simulated* cost model (machine-independent, like
every other benchmark here):

- **Snapshot cost vs dirty fraction**: a fixed store (many maps, many rows)
  is snapshotted once in full, then delta-snapshotted after touching a
  varying fraction of its maps. The dirty-map tracker means the delta only
  serializes and seals the dirty maps, so the production cost — charged per
  serialized entry by the :class:`~repro.perf.costmodel.CostModel` — must
  fall with the dirty fraction instead of staying flat at O(state).
- **Join time vs transfer mode**: a three-node service is loaded to ~10k
  committed entries, then a node joins under each transfer mode and the
  simulated time from ``request_join`` to an active consensus engine is
  measured. ``full_replay`` withholds snapshots entirely (raft catch-up
  streams the whole ledger); ``chunked_cold`` transfers the manifest plus
  every chunk; ``dedup_warm`` re-joins with a disk that already caches all
  the chunks (a prior joiner's storage), so only the manifest travels.

``--check`` enforces the regression floors from ``perf-budget.json``:
the delta snapshot at 10% dirty must cost at most
``snapshot_dirty_cost_ratio_max`` of the full serialize, and the warm
dedup re-join must be at least ``join_dedup_speedup_min`` times faster
than the full ledger replay.
"""

from __future__ import annotations

import json

from repro.app.logging_app import build_logging_app
from repro.errors import ConfigurationError
from repro.kv.store import KVStore
from repro.kv.tx import WriteSet
from repro.ledger import statetransfer
from repro.ledger.secrets import LedgerSecret
from repro.node.config import NodeConfig
from repro.node.node import CCFNode
from repro.perf.costmodel import CostModel
from repro.service.client import ClosedLoopClient, ServiceClient
from repro.service.service import CCFService, ServiceSetup
from repro.sim.metrics import ThroughputRecorder

DIRTY_FRACTIONS = (0.0, 0.1, 0.25, 0.5, 1.0)
CHECKED_DIRTY_FRACTION = 0.1
N_MAPS = 50
ROWS_PER_MAP = 200
JOIN_STATE_ENTRIES = 10_000
MESSAGE = "payload-20-chars-xyz"


# ----------------------------------------------------------------------
# Sweep 1: snapshot production cost vs dirty fraction


def _build_store(n_maps: int, rows_per_map: int) -> tuple[KVStore, int]:
    store = KVStore()
    version = 0
    for m in range(n_maps):
        ws = WriteSet()
        for r in range(rows_per_map):
            ws.put(f"map{m:03d}", f"key{r:05d}", {"value": r, "map": m})
        version += 1
        store.apply_write_set(ws, version)
    return store, version


def run_snapshot_sweep(
    n_maps: int = N_MAPS, rows_per_map: int = ROWS_PER_MAP
) -> list[dict]:
    """Delta snapshot cost at each dirty fraction, as a ratio of the full
    serialize. The cost metric is the CostModel's per-serialized-entry
    charge, so the rows are exact and deterministic."""
    cost = CostModel()
    secret = LedgerSecret.generate(b"statebench")
    store, version = _build_store(n_maps, rows_per_map)

    full = statetransfer.build_chunked_snapshot(
        store,
        version,
        secret,
        {"base_seqno": version},
        chunk_bytes=NodeConfig().snapshot_chunk_bytes,
    )
    full_cost = cost.snapshot_production_cost(full.stats["entries_serialized"])
    rows = []
    for fraction in DIRTY_FRACTIONS:
        baseline = full.baseline(store.map_table_at(version))
        dirty_maps = max(0, round(n_maps * fraction))
        working = store
        working_version = version
        for m in range(dirty_maps):
            ws = WriteSet()
            ws.put(f"map{m:03d}", "key00000", {"value": "touched"})
            working_version += 1
            working.apply_write_set(ws, working_version)
        delta = statetransfer.build_chunked_snapshot(
            working,
            working_version,
            secret,
            {"base_seqno": working_version},
            chunk_bytes=NodeConfig().snapshot_chunk_bytes,
            baseline=baseline,
        )
        delta_cost = cost.snapshot_production_cost(delta.stats["entries_serialized"])
        rows.append(
            {
                "dirty_fraction": fraction,
                "maps_dirty": delta.stats["maps_dirty"],
                "entries_serialized": delta.stats["entries_serialized"],
                "entries_total": delta.stats["entries_total"],
                "chunks_reused": delta.stats["chunks_reused"],
                "cost_ratio_vs_full": round(delta_cost / full_cost, 4)
                if full_cost
                else 0.0,
            }
        )
        # Rebuild pristine state for the next fraction (the touches above
        # mutated the store's version history).
        store, version = _build_store(n_maps, rows_per_map)
        full = statetransfer.build_chunked_snapshot(
            store,
            version,
            secret,
            {"base_seqno": version},
            chunk_bytes=NodeConfig().snapshot_chunk_bytes,
        )
    return rows


# ----------------------------------------------------------------------
# Sweep 2: join time vs transfer mode


def _loaded_service(
    seed: int, entries: int, snapshots: bool
) -> tuple[CCFService, int]:
    """A three-node service with ``entries`` committed writes."""
    config = NodeConfig(
        signature_interval=100,
        snapshot_interval=2000 if snapshots else 0,
        batch_execution=True,
    )
    service = CCFService(
        ServiceSetup(
            n_nodes=3,
            node_config=config,
            app_factory=build_logging_app,
            seed=seed,
        )
    )
    service.bootstrap()
    primary = service.primary_node()
    user = service.users[0]
    credentials = {"certificate": user.certificate.to_dict()}
    endpoint = ServiceClient(
        service.scheduler, service.network, name="statebench-writer", identity=user
    )
    throughput = ThroughputRecorder()
    client = ClosedLoopClient(
        endpoint,
        primary.node_id,
        lambda i: ("/app/write_message", {"id": i, "msg": MESSAGE}, credentials),
        concurrency=50,
        throughput=throughput,
        retry_timeout=2.0,
    )
    client.start()
    service.run_until(lambda: throughput.count >= entries, timeout=60.0)
    client.stop()
    service.run(0.1)  # drain in-flight requests and the signature flush
    return service, throughput.count


def _measure_join(service: CCFService, node_id: str, storage=None) -> dict:
    """Join one node and return the simulated join time plus transfer
    accounting (chunks fetched vs served from the local cache)."""
    primary = service.primary_node()
    joiner = CCFNode(
        node_id=node_id,
        scheduler=service.scheduler,
        network=service.network,
        hardware=service.hardware,
        app=service._app_factory(),
        config=service.setup.node_config,
        code_id=service.code_id,
    )
    if storage is not None:
        joiner.storage = storage
    stats = {"fetched": 0, "cached": 0}
    original = joiner._complete_chunked_install

    def spying_install():
        transfer = joiner._pending_state_transfer
        stats["fetched"] = transfer["fetched"]
        stats["cached"] = transfer["cached"]
        original()

    joiner._complete_chunked_install = spying_install
    # Joined means *caught up*: an active consensus engine AND the ledger
    # streamed (or snapshot-installed) up to the service's commit point —
    # otherwise full replay would stop the clock before the entries travel.
    target_seqno = primary.consensus.commit_seqno
    start = service.scheduler.now
    joiner.request_join(primary.node_id, primary.service_certificate)
    service.run_until(
        lambda: joiner.consensus is not None
        and joiner.ledger.last_seqno >= target_seqno,
        timeout=60.0,
    )
    elapsed = service.scheduler.now - start
    service.nodes[node_id] = joiner
    return {
        "node_id": node_id,
        "join_seconds": elapsed,
        "chunks_fetched": stats["fetched"],
        "chunks_cached": stats["cached"],
        "base_seqno": joiner.ledger.base_seqno,
        "_storage": joiner.storage,
    }


def run_join_sweep(entries: int = JOIN_STATE_ENTRIES, seed: int = 42) -> list[dict]:
    """Join time under each transfer mode at the same state size."""
    rows = []

    # Full ledger replay: no snapshot ever produced, so the joiner streams
    # the entire ledger through raft catch-up.
    service, committed = _loaded_service(seed, entries, snapshots=False)
    row = _measure_join(service, "statebench-full")
    row.pop("_storage")
    row.update(mode="full_replay", committed_entries=committed)
    if row["base_seqno"] != 0:
        raise ConfigurationError("full replay must not have used a snapshot")
    rows.append(row)

    # Chunked transfer: one service serves both the cold join (every chunk
    # travels) and the warm dedup re-join (a disk that already caches the
    # chunks — only the manifest travels).
    service, committed = _loaded_service(seed, entries, snapshots=True)
    cold = _measure_join(service, "statebench-cold")
    warm = _measure_join(
        service, "statebench-warm", storage=cold.pop("_storage").clone()
    )
    warm.pop("_storage")
    cold.update(mode="chunked_cold", committed_entries=committed)
    warm.update(mode="dedup_warm", committed_entries=committed)
    if cold["base_seqno"] <= 0:
        raise ConfigurationError("chunked join must have installed a snapshot")
    if warm["chunks_fetched"] != 0:
        raise ConfigurationError("warm re-join must fetch nothing")
    rows.append(cold)
    rows.append(warm)
    return rows


# ----------------------------------------------------------------------
# Report, floors, CLI


def run_matrix(entries: int = JOIN_STATE_ENTRIES) -> dict:
    snapshot_sweep = run_snapshot_sweep()
    for row in snapshot_sweep:
        print(
            f"statebench: dirty={row['dirty_fraction']:<5} "
            f"serialized={row['entries_serialized']:>6}/{row['entries_total']} "
            f"cost_ratio={row['cost_ratio_vs_full']}"
        )
    join_sweep = run_join_sweep(entries=entries)
    for row in join_sweep:
        print(
            f"statebench: {row['mode']:<13} join={row['join_seconds'] * 1e3:8.2f}ms "
            f"fetched={row['chunks_fetched']:>3} cached={row['chunks_cached']:>3} "
            f"base_seqno={row['base_seqno']}"
        )
    return {
        "workload": "logging app, 3 nodes, sim cost model",
        "snapshot_store": {"maps": N_MAPS, "rows_per_map": ROWS_PER_MAP},
        "join_state_entries": entries,
        "snapshot_sweep": snapshot_sweep,
        "join_sweep": join_sweep,
    }


def check_report(
    report: dict, speedup_floor: float, dirty_ratio_max: float
) -> list[str]:
    """Regression gates over a BENCH_pr9 report; returns violations."""
    problems: list[str] = []
    by_fraction = {row["dirty_fraction"]: row for row in report["snapshot_sweep"]}
    checked = by_fraction[CHECKED_DIRTY_FRACTION]
    report["snapshot_cost_ratio_at_checked_fraction"] = checked["cost_ratio_vs_full"]
    if checked["cost_ratio_vs_full"] > dirty_ratio_max:
        problems.append(
            f"delta snapshot at {CHECKED_DIRTY_FRACTION:.0%} dirty costs "
            f"{checked['cost_ratio_vs_full']}x the full serialize; ceiling is "
            f"{dirty_ratio_max}x"
        )
    by_mode = {row["mode"]: row for row in report["join_sweep"]}
    full = by_mode["full_replay"]["join_seconds"]
    warm = by_mode["dedup_warm"]["join_seconds"]
    speedup = full / warm if warm else 0.0
    report["join_dedup_speedup"] = round(speedup, 2)
    if speedup < speedup_floor:
        problems.append(
            f"warm dedup re-join is only {speedup:.2f}x faster than full "
            f"replay ({warm * 1e3:.2f}ms vs {full * 1e3:.2f}ms); floor is "
            f"{speedup_floor}x"
        )
    if by_mode["dedup_warm"]["chunks_fetched"]:
        problems.append(
            "warm dedup re-join fetched "
            f"{by_mode['dedup_warm']['chunks_fetched']} chunks; dedup must "
            "serve them all from the local cache"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="incremental state transfer benchmark (BENCH_pr9)"
    )
    parser.add_argument("--out", help="write the JSON report here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the dirty-cost ceiling and the dedup join-speedup floor",
    )
    parser.add_argument("--budget", default="perf-budget.json")
    parser.add_argument("--entries", type=int, default=JOIN_STATE_ENTRIES)
    args = parser.parse_args(argv)

    report = run_matrix(entries=args.entries)

    problems: list[str] = []
    if args.check:
        with open(args.budget, encoding="utf-8") as handle:
            budget = json.load(handle)
        problems = check_report(
            report,
            float(budget["join_dedup_speedup_min"]),
            float(budget["snapshot_dirty_cost_ratio_max"]),
        )
        if not problems:
            print(
                f"statebench: OK — {report['join_dedup_speedup']}x warm "
                f"re-join speedup (floor {budget['join_dedup_speedup_min']}x), "
                f"{report['snapshot_cost_ratio_at_checked_fraction']}x snapshot "
                f"cost at {CHECKED_DIRTY_FRACTION:.0%} dirty (ceiling "
                f"{budget['snapshot_dirty_cost_ratio_max']}x)"
            )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"statebench: report written to {args.out}")
    for problem in problems:
        print(f"statebench: FLOOR VIOLATION: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
