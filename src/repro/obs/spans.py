"""Causal spans: the unit of the request-lifecycle trace.

A :class:`Span` is one timed step of one request's journey (queue, execute,
ledger append, replication wait, signature, commit, receipt), linked to its
parent by id so an exported trace reconstructs the full causal tree. Span
ids come from a dedicated RNG seeded independently of the scheduler's —
recording a trace never consumes a draw from the simulation's stream, so a
traced run is byte-identical to the untraced run it observes.

Exports are JSONL: one span per line, in creation order, serialized with
sorted keys — equal seeds produce byte-identical files. Process-global
counters (request ids, client ids) are deliberately *not* exported; span
and trace ids are the stable correlation handles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field


def redact(value):
    """Replace byte strings with a length + digest-prefix placeholder.

    Span attributes and metrics labels are exported to the untrusted host,
    so raw bytes — the representation of every key, share, and sealed blob
    in this codebase — must never appear in them. The placeholder keeps
    traces debuggable (equal secrets redact equally, lengths survive)
    without revealing the bytes. Non-bytes values pass through untouched;
    containers are redacted recursively.
    """
    if isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        digest = hashlib.sha256(raw).hexdigest()[:8]
        return f"[redacted {len(raw)}B sha256:{digest}]"
    if isinstance(value, dict):
        return {k: redact(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        out = [redact(v) for v in value]
        return tuple(out) if isinstance(value, tuple) else out
    return value


def sanitize_attrs(attrs: dict) -> dict:
    """Redact every value of a span-attribute / label mapping."""
    return {key: redact(value) for key, value in attrs.items()}


@dataclass
class Span:
    """One timed, attributed step in a causal trace."""

    index: int  # creation order within the collector (total order)
    span_id: str
    name: str
    start: float  # simulated seconds
    trace_id: str  # span_id of the root span of this tree
    parent_id: str | None = None
    end: float | None = None
    node: str | None = None
    attrs: dict = field(default_factory=dict)
    costs: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    @property
    def is_root(self) -> bool:
        return self.parent_id is None

    def charge(self, category: str, seconds: float) -> None:
        """Attribute ``seconds`` of cost-model time to this span."""
        self.costs[category] = self.costs.get(category, 0.0) + seconds

    def to_dict(self) -> dict:
        out: dict = {
            "i": self.index,
            "id": self.span_id,
            "trace": self.trace_id,
            "name": self.name,
            "start": self.start,
        }
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        if self.end is not None:
            out["end"] = self.end
        if self.node is not None:
            out["node"] = self.node
        if self.attrs:
            # Defense in depth: attrs are sanitized at creation, but any
            # bytes smuggled in by direct mutation are redacted at export.
            out["attrs"] = sanitize_attrs(dict(sorted(self.attrs.items())))
        if self.costs:
            out["costs"] = dict(sorted(self.costs.items()))
        return out


def span_to_json(span: Span) -> str:
    return json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))


def span_from_json(line: str) -> Span:
    data = json.loads(line)
    return Span(
        index=data["i"],
        span_id=data["id"],
        trace_id=data["trace"],
        name=data["name"],
        start=data["start"],
        parent_id=data.get("parent"),
        end=data.get("end"),
        node=data.get("node"),
        attrs=data.get("attrs", {}),
        costs=data.get("costs", {}),
    )


def export_jsonl(spans: list[Span]) -> str:
    """Serialize spans (creation order) to a deterministic JSONL document."""
    return "".join(span_to_json(span) + "\n" for span in spans)


def load_jsonl(text: str) -> list[Span]:
    return [span_from_json(line) for line in text.splitlines() if line.strip()]


def build_tree(spans: list[Span]) -> dict[str, list[Span]]:
    """parent span_id -> children (creation order); roots under ``\"\"``."""
    children: dict[str, list[Span]] = {"": []}
    for span in spans:
        children.setdefault(span.span_id, [])
        key = span.parent_id if span.parent_id is not None else ""
        children.setdefault(key, []).append(span)
    return children
