"""``python -m repro.obs.kvbench``: host wall-clock hot-write-path suite
(PR 10).

Measures the batched write path as the node runs it — ``apply_write_set``
plus the periodic snapshot serialize — with the PR 10 fast paths (transient
CHAMP builders, memoized per-map encodings) against the pre-PR10 shape
(persistent per-write applies, full re-encode of every map per snapshot),
differential-checking that both produce byte-identical snapshots **in the
same run** before any timing is reported. A second sweep measures AEAD seal
amortization: per-message seals vs coalesced frames over the same payload
stream.

Like :mod:`repro.obs.cryptobench`, this file measures *host* wall-clock on
purpose — it is the one place the write-path work talks about real time.
Simulated-time behaviour (trace digests, ledger bytes on/off) is pinned by
the test suite instead.

``--check`` enforces the floors from ``perf-budget.json``:
``kv_batch_apply_speedup_min`` on the batched write path and
``frame_seal_amortization_min`` on coalesced sealing.
"""

from __future__ import annotations

import json
import random
# Host wall-clock measurement is this module's entire purpose; it never
# feeds the simulation.
import time  # repro-lint: disable=DET001

from repro.errors import KVError
from repro.kv.serialization import encode_value
from repro.kv.store import KVStore, set_transient_apply
from repro.kv.tx import WriteSet
from repro.obs.metrics import RUNTIME_STATS

# Write-path workload shape: many maps, few dirty per snapshot interval —
# the CCF steady state (section 3.3: app tables plus rarely-written
# governance/system maps share one store).
N_MAPS = 16
ROWS_PER_MAP = 1500
BATCHES = 48
WRITES_PER_BATCH = 256
SNAPSHOT_EVERY = 4
REPEATS = 3

# Seal workload shape: consensus acks/heartbeats are small; frames carry a
# scheduler event's worth of messages for one peer.
SEAL_PAYLOADS = 2048
SEAL_PAYLOAD_BYTES = 64
FRAME_SIZE = 16


# ----------------------------------------------------------------------
# Sweep 1: batched write path (apply + periodic snapshot serialize)


def _reference_serialize(store: KVStore) -> bytes:
    """The pre-PR10 snapshot path: one full ``encode_value`` of the whole
    map table, re-walking every entry of every map, memoizing nothing."""
    return encode_value(
        {
            "version": store.version,
            "maps": {
                name: [
                    [key, value]
                    for key, value in sorted(
                        champ.items(), key=lambda item: encode_value(item[0])
                    )
                ]
                for name, champ in store._maps.items()
            },
        }
    )


def _seed_store() -> KVStore:
    store = KVStore()
    ws = WriteSet(
        updates={
            f"public:table{m:02d}": {
                f"key{r:05d}": r * (m + 1) for r in range(ROWS_PER_MAP)
            }
            for m in range(N_MAPS)
        }
    )
    store.apply_write_set(ws, 1)
    return store


def _write_batches(seed: int = 5) -> list[WriteSet]:
    """Each batch hits two of the maps; over the run every map is written,
    but between any two snapshots most maps stay clean."""
    rng = random.Random(seed)
    batches = []
    for i in range(BATCHES):
        hot = (i % N_MAPS, (i + 7) % N_MAPS)
        batches.append(
            WriteSet(
                updates={
                    f"public:table{m:02d}": {
                        f"key{rng.randrange(ROWS_PER_MAP):05d}": rng.randrange(10**9)
                        for _ in range(WRITES_PER_BATCH // 2)
                    }
                    for m in hot
                }
            )
        )
    return batches


def _run_write_path(fast: bool, batches: list[WriteSet]) -> float:
    """One full pass: apply every batch, snapshotting every
    ``SNAPSHOT_EVERY`` batches. Returns elapsed seconds only — the
    snapshot bytes (private state) never leave this function."""
    previous = set_transient_apply(fast)
    try:
        store = _seed_store()
        if fast:
            store.serialize()  # a prior snapshot's memo, as in steady state
        start = time.perf_counter()  # repro-lint: disable=DET001
        seqno = store.version
        for i, ws in enumerate(batches):
            seqno += 1
            store.apply_write_set(ws, seqno)
            if (i + 1) % SNAPSHOT_EVERY == 0:
                store.serialize() if fast else _reference_serialize(store)
        return time.perf_counter() - start  # repro-lint: disable=DET001
    finally:
        set_transient_apply(previous)


def _check_write_path_bytes(batches: list[WriteSet]) -> None:
    """Differential gate before any timing: both paths must produce the
    same snapshot bytes, or the speedup is meaningless. The compared
    bytes stay local; only the verdict escapes."""

    def final_snapshot(fast: bool) -> bytes:
        previous = set_transient_apply(fast)
        try:
            store = _seed_store()
            seqno = store.version
            for ws in batches:
                seqno += 1
                store.apply_write_set(ws, seqno)
            return store.serialize() if fast else _reference_serialize(store)
        finally:
            set_transient_apply(previous)

    if final_snapshot(True) != final_snapshot(False):
        raise KVError("fast write path diverged from the reference bytes")


def run_write_path_bench() -> dict:
    batches = _write_batches()
    _check_write_path_bytes(batches)

    RUNTIME_STATS.reset()
    fast_s = min(_run_write_path(True, batches) for _ in range(REPEATS))
    hits = RUNTIME_STATS.get("kv.map_encode.hits")
    misses = RUNTIME_STATS.get("kv.map_encode.misses")
    slow_s = min(_run_write_path(False, batches) for _ in range(REPEATS))
    return {
        "workload": {
            "maps": N_MAPS,
            "rows_per_map": ROWS_PER_MAP,
            "batches": BATCHES,
            "writes_per_batch": WRITES_PER_BATCH,
            "snapshot_every": SNAPSHOT_EVERY,
        },
        "baseline_s": slow_s,
        "fast_s": fast_s,
        "speedup": slow_s / fast_s if fast_s > 0 else float("inf"),
        "encode_memo": {
            "hits": hits,
            "misses": misses,
            "hit_ratio": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        },
    }


# ----------------------------------------------------------------------
# Sweep 2: AEAD seal amortization (per-message vs coalesced frames)


def _channel_pair(tag: bytes):
    from repro.crypto.x25519 import DHPrivateKey
    from repro.net.channels import NodeChannels

    a = NodeChannels("alpha", DHPrivateKey.generate(b"kvbench-a-" + tag))
    b = NodeChannels("beta", DHPrivateKey.generate(b"kvbench-b-" + tag))
    a.establish("beta", b.public)
    b.establish("alpha", a.public)
    return a, b


def run_seal_bench() -> dict:
    payloads = [bytes([i % 256]) * SEAL_PAYLOAD_BYTES for i in range(SEAL_PAYLOADS)]

    # Differential check: a framed roundtrip must hand back the exact
    # payload sequence the per-message path would.
    a, b = _channel_pair(b"diff")
    sealed = a.seal_frame("beta", payloads[:FRAME_SIZE])
    if b.open_frame("alpha", sealed.counter, sealed.box) != payloads[:FRAME_SIZE]:
        raise KVError("framed roundtrip diverged from the payload stream")

    per_message_s = float("inf")
    framed_s = float("inf")
    for repeat in range(REPEATS):
        a, b = _channel_pair(b"m%d" % repeat)
        start = time.perf_counter()  # repro-lint: disable=DET001
        for payload in payloads:
            b.open(a.seal("beta", payload))
        per_message_s = min(
            per_message_s, time.perf_counter() - start  # repro-lint: disable=DET001
        )
        a, b = _channel_pair(b"f%d" % repeat)
        start = time.perf_counter()  # repro-lint: disable=DET001
        for i in range(0, len(payloads), FRAME_SIZE):
            sealed = a.seal_frame("beta", payloads[i:i + FRAME_SIZE])
            b.open_frame("alpha", sealed.counter, sealed.box)
        framed_s = min(
            framed_s, time.perf_counter() - start  # repro-lint: disable=DET001
        )
    return {
        "workload": {
            "payloads": SEAL_PAYLOADS,
            "payload_bytes": SEAL_PAYLOAD_BYTES,
            "frame_size": FRAME_SIZE,
        },
        "per_message_s": per_message_s,
        "framed_s": framed_s,
        "amortization": per_message_s / framed_s if framed_s > 0 else float("inf"),
    }


# ----------------------------------------------------------------------
# Report, floors, CLI


def run_matrix() -> dict:
    write_path = run_write_path_bench()
    print(
        f"kvbench: write path baseline={write_path['baseline_s'] * 1e3:8.2f}ms "
        f"fast={write_path['fast_s'] * 1e3:8.2f}ms "
        f"speedup={write_path['speedup']:.2f}x "
        f"(encode memo hit ratio {write_path['encode_memo']['hit_ratio']})"
    )
    seal = run_seal_bench()
    print(
        f"kvbench: sealing per-message={seal['per_message_s'] * 1e3:8.2f}ms "
        f"framed={seal['framed_s'] * 1e3:8.2f}ms "
        f"amortization={seal['amortization']:.2f}x"
    )
    return {"bench": "hot-write-path", "write_path": write_path, "sealing": seal}


def check_report(
    report: dict, apply_speedup_floor: float, seal_amortization_floor: float
) -> list[str]:
    """Regression gates over a BENCH_pr10 report; returns violations."""
    problems: list[str] = []
    speedup = report["write_path"]["speedup"]
    if speedup < apply_speedup_floor:
        problems.append(
            f"batched write path is only {speedup:.2f}x the pre-PR10 "
            f"baseline; floor is {apply_speedup_floor}x"
        )
    amortization = report["sealing"]["amortization"]
    if amortization < seal_amortization_floor:
        problems.append(
            f"coalesced sealing amortizes only {amortization:.2f}x over "
            f"per-message seals; floor is {seal_amortization_floor}x"
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="hot write path benchmark (BENCH_pr10)"
    )
    parser.add_argument("--out", help="write the JSON report here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the write-path speedup and seal amortization floors",
    )
    parser.add_argument("--budget", default="perf-budget.json")
    args = parser.parse_args(argv)

    report = run_matrix()

    problems: list[str] = []
    if args.check:
        with open(args.budget, encoding="utf-8") as handle:
            budget = json.load(handle)
        problems = check_report(
            report,
            float(budget["kv_batch_apply_speedup_min"]),
            float(budget["frame_seal_amortization_min"]),
        )
        if not problems:
            print(
                f"kvbench: OK — {report['write_path']['speedup']:.2f}x write "
                f"path (floor {budget['kv_batch_apply_speedup_min']}x), "
                f"{report['sealing']['amortization']:.2f}x seal amortization "
                f"(floor {budget['frame_seal_amortization_min']}x)"
            )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"kvbench: report written to {args.out}")
    for problem in problems:
        print(f"kvbench: FLOOR VIOLATION: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
