"""``python -m repro.obs.pipebench``: pipelined-execution benchmark (PR 8).

Measures batched vs serial throughput in the *simulated* cost model — the
same machine-independent numbers as every other benchmark here — over the
two sweeps the paper's experiments hinge on:

- **Signature-interval sweep** (Figure 8's axis): write-only workload at
  signature intervals 1 / 20 / 100, serial vs batched. Batching amortizes
  the fixed per-request pipeline overhead (``batch_overhead_fraction`` of
  the write service time, paid once per batch) and folds one replication
  hand-off per batch, so the gap widens as signatures stop dominating.
- **Read-ratio sweep** (Figure 7's axis): batched + read-offload total
  throughput at read ratios 0% / 50% / 95%, with reads spread across all
  nodes and served from each node's last-committed snapshot. Serial
  counterparts at the same ratios for reference.

``--check`` enforces the regression floors: batched write throughput at
signature interval 100 must be at least ``pipeline_write_speedup_min``
times serial (from ``perf-budget.json``), and total batched+offload
throughput must scale monotonically with the read ratio.

The workload is the closed-loop logging app driven exactly like
``benchmarks/harness.py``; concurrency is sized to saturate the batched
pipeline (batching trades queueing latency for throughput, so it needs a
deeper closed loop than serial to reach capacity).
"""

from __future__ import annotations

import json

from repro.app.logging_app import build_logging_app
from repro.node.config import NodeConfig
from repro.service.client import ClosedLoopClient, ServiceClient
from repro.service.service import CCFService, ServiceSetup
from repro.sim.metrics import LatencyRecorder, ThroughputRecorder

MESSAGE = "payload-20-chars-xyz"
KEY_SPACE = 1000
SIGNATURE_INTERVALS = (1, 20, 100)
READ_RATIOS = (0.0, 0.5, 0.95)
CHECKED_SIGNATURE_INTERVAL = 100


def run_cell(
    signature_interval: int,
    batch_execution: bool,
    read_ratio: float,
    n_nodes: int = 3,
    concurrency: int = 800,
    warmup: float = 0.05,
    window: float = 0.1,
    seed: int = 42,
) -> dict:
    """Measure one operating point; returns a plain-JSON row."""
    config = NodeConfig(
        signature_interval=signature_interval,
        batch_execution=batch_execution,
        read_offload=batch_execution,
    )
    service = CCFService(
        ServiceSetup(
            n_nodes=n_nodes,
            node_config=config,
            app_factory=build_logging_app,
            seed=seed,
        )
    )
    service.bootstrap()
    primary = service.primary_node()
    user = service.users[0]
    credentials = {"certificate": user.certificate.to_dict()}

    # Pre-populate the read key grid so reads always hit.
    read_stride = max(1, KEY_SPACE // 50)
    seeder = ServiceClient(
        service.scheduler, service.network, name="pipebench-seeder", identity=user
    )
    for key in range(0, KEY_SPACE, read_stride):
        seeder.call(
            primary.node_id,
            "/app/write_message",
            {"id": key, "msg": MESSAGE},
            credentials=credentials,
        )
    # Settle past the signature flush so the whole grid is *committed*
    # before clients start: offloaded reads serve the committed snapshot,
    # and an uncommitted grid key would (correctly) 403 as missing.
    service.run(0.12)

    writes = ThroughputRecorder()
    reads = ThroughputRecorder()
    write_latency = LatencyRecorder()
    read_latency = LatencyRecorder()
    clients: list[ClosedLoopClient] = []

    def make_factory(kind: str, salt: int):
        def factory(i: int):
            key = (i * 7 + salt) % KEY_SPACE
            if kind == "write":
                return "/app/write_message", {"id": key, "msg": MESSAGE}, credentials
            read_key = (key // read_stride) * read_stride
            return "/app/read_message", {"id": read_key}, credentials

        return factory

    if read_ratio < 1.0:
        endpoint = ServiceClient(
            service.scheduler, service.network, name="pipebench-writer", identity=user
        )
        clients.append(
            ClosedLoopClient(
                endpoint,
                primary.node_id,
                make_factory("write", 0),
                concurrency=max(1, int(concurrency * (1 - read_ratio))),
                throughput=writes,
                latency=write_latency,
                retry_timeout=2.0,
            )
        )
    if read_ratio > 0.0:
        # Reads spread over every node — the offload path serves them from
        # each node's last-committed snapshot (the paper's read scaling).
        targets = [n.node_id for n in service.nodes.values() if not n.stopped]
        per_node = max(1, int(concurrency * read_ratio) // len(targets))
        for index, target in enumerate(targets):
            endpoint = ServiceClient(
                service.scheduler,
                service.network,
                name=f"pipebench-reader-{index}",
                identity=user,
            )
            clients.append(
                ClosedLoopClient(
                    endpoint,
                    target,
                    make_factory("read", index + 1),
                    concurrency=per_node,
                    throughput=reads,
                    latency=read_latency,
                    retry_timeout=2.0,
                )
            )

    for client in clients:
        client.start()
    service.run(warmup)
    start = service.scheduler.now
    service.run(window)
    end = service.scheduler.now
    for client in clients:
        client.stop()

    return {
        "signature_interval": signature_interval,
        "batch_execution": batch_execution,
        "read_ratio": read_ratio,
        "concurrency": concurrency,
        "writes_per_second": round(writes.throughput(start, end), 1),
        "reads_per_second": round(reads.throughput(start, end), 1),
        "total_per_second": round(
            writes.throughput(start, end) + reads.throughput(start, end), 1
        ),
        "write_p50_ms": round(write_latency.percentile(50) * 1e3, 3),
        "errors": sum(client.errors for client in clients),
    }


def run_matrix(
    concurrency: int = 800, warmup: float = 0.05, window: float = 0.1
) -> dict:
    """The full BENCH_pr8 matrix: signature sweep + read-ratio sweep."""
    signature_sweep = []
    for interval in SIGNATURE_INTERVALS:
        for batched in (False, True):
            row = run_cell(
                interval,
                batched,
                read_ratio=0.0,
                concurrency=concurrency,
                warmup=warmup,
                window=window,
            )
            signature_sweep.append(row)
            print(
                f"pipebench: sig={interval:<3} "
                f"{'batched' if batched else 'serial '} "
                f"writes/s={row['writes_per_second']:>10,.0f} "
                f"p50={row['write_p50_ms']}ms errors={row['errors']}"
            )
    read_sweep = []
    for ratio in READ_RATIOS:
        for batched in (False, True):
            row = run_cell(
                CHECKED_SIGNATURE_INTERVAL,
                batched,
                read_ratio=ratio,
                concurrency=concurrency,
                warmup=warmup,
                window=window,
            )
            read_sweep.append(row)
            print(
                f"pipebench: ratio={int(ratio * 100):<3} "
                f"{'batched+offload' if batched else 'serial         '} "
                f"total/s={row['total_per_second']:>10,.0f} errors={row['errors']}"
            )
    return {
        "workload": "logging app, closed loop, 3 nodes, sim cost model",
        "concurrency": concurrency,
        "signature_sweep": signature_sweep,
        "read_ratio_sweep": read_sweep,
    }


def check_report(report: dict, speedup_floor: float) -> list[str]:
    """Regression gates over a BENCH_pr8 report; returns violations."""
    problems: list[str] = []
    by_key = {
        (row["signature_interval"], row["batch_execution"]): row
        for row in report["signature_sweep"]
    }
    serial = by_key[(CHECKED_SIGNATURE_INTERVAL, False)]["writes_per_second"]
    batched = by_key[(CHECKED_SIGNATURE_INTERVAL, True)]["writes_per_second"]
    speedup = batched / serial if serial else 0.0
    report["write_speedup_at_checked_interval"] = round(speedup, 2)
    if speedup < speedup_floor:
        problems.append(
            f"batched write throughput at signature interval "
            f"{CHECKED_SIGNATURE_INTERVAL} is only {speedup:.2f}x serial "
            f"({batched:,.0f}/s vs {serial:,.0f}/s); floor is "
            f"{speedup_floor}x"
        )
    batched_totals = [
        row["total_per_second"]
        for row in report["read_ratio_sweep"]
        if row["batch_execution"]
    ]
    for earlier, later in zip(batched_totals, batched_totals[1:]):
        if later <= earlier:
            problems.append(
                "batched+offload total throughput must scale monotonically "
                f"with read ratio; got {batched_totals}"
            )
            break
    errors = sum(
        row["errors"]
        for rows in (report["signature_sweep"], report["read_ratio_sweep"])
        for row in rows
    )
    if errors:
        problems.append(f"benchmark workload saw {errors} request errors")
    return problems


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="pipelined execution benchmark (BENCH_pr8)"
    )
    parser.add_argument("--out", help="write the JSON report here")
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the speedup floor and read-ratio monotonicity",
    )
    parser.add_argument("--budget", default="perf-budget.json")
    parser.add_argument("--concurrency", type=int, default=800)
    parser.add_argument("--warmup", type=float, default=0.05)
    parser.add_argument("--window", type=float, default=0.1)
    args = parser.parse_args(argv)

    report = run_matrix(
        concurrency=args.concurrency, warmup=args.warmup, window=args.window
    )

    problems: list[str] = []
    if args.check:
        with open(args.budget, encoding="utf-8") as handle:
            budget = json.load(handle)
        floor = float(budget["pipeline_write_speedup_min"])
        problems = check_report(report, floor)
        if not problems:
            print(
                f"pipebench: OK — "
                f"{report['write_speedup_at_checked_interval']}x batched "
                f"write speedup (floor {floor}x), read-ratio scaling "
                f"monotone"
            )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"pipebench: report written to {args.out}")
    for problem in problems:
        print(f"pipebench: FLOOR VIOLATION: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
