"""The metrics registry: counters, gauges, and simulated-time histograms.

Benchmarks and chaos runs used to collect numbers in ad-hoc lists scattered
over the harness; this module replaces those with one deterministic registry
keyed by ``(metric name, sorted label pairs)``. Labels carry the node id so
per-node breakdowns (queue depths, elections, bytes on the wire) come for
free, and every export is sorted so equal runs produce byte-identical
snapshots.

Nothing here reads a clock or draws randomness: all observed values are
simulated-time quantities supplied by the instrumentation sites, which keeps
the registry compatible with the determinism discipline (DESIGN.md) — a run
with metrics attached is the same run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

LabelPairs = tuple[tuple[str, str], ...]


def nearest_rank(sorted_values: list[float], p: float) -> float:
    """The p-th percentile of ``sorted_values`` by the nearest-rank method.

    ``p`` is in [0, 100]. Nearest-rank is the textbook definition: the
    percentile is the smallest value such that at least ``p``% of samples
    are <= it — always an actual sample, never an interpolation, and free
    of the banker's-rounding ambiguity that ``round()`` introduces (p50 of
    two samples is the *first*, deterministically).
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= p <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {p}")
    if p == 0.0:
        return sorted_values[0]
    rank = math.ceil(p / 100.0 * len(sorted_values))  # 1-based
    return sorted_values[rank - 1]


@dataclass
class Counter:
    """A monotonically increasing count (events, messages, bytes)."""

    name: str
    labels: LabelPairs = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time level (queue depth, version, open spans)."""

    name: str
    labels: LabelPairs = ()
    value: float = 0.0
    max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)


@dataclass
class Histogram:
    """A distribution of simulated-time samples (latencies, batch sizes).

    Samples are kept raw and sorted lazily, so ``observe`` is O(1) on the
    hot path and all statistics are exact (nearest-rank percentiles over
    the actual samples, not bucket approximations).
    """

    name: str
    labels: LabelPairs = ()
    samples: list[float] = field(default_factory=list)
    _sorted: list[float] | None = field(default=None, repr=False)

    def observe(self, value: float) -> None:
        self.samples.append(value)
        self._sorted = None

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0

    def _sorted_samples(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        return self._sorted

    def percentile(self, p: float) -> float:
        return nearest_rank(self._sorted_samples(), p)

    def min(self) -> float:
        values = self._sorted_samples()
        return values[0] if values else 0.0

    def max(self) -> float:
        values = self._sorted_samples()
        return values[-1] if values else 0.0

    def buckets(self, width: float) -> dict[float, int]:
        """Fixed-width bucket counts (bucket floor -> count), sorted."""
        if width <= 0:
            raise ConfigurationError("bucket width must be positive")
        counts: dict[float, int] = {}
        for value in self.samples:
            # ``value // width`` floors 0.03/0.01 = 2.999… into the wrong
            # bucket; round the quotient to 9 decimals before flooring so
            # exact multiples land on their own boundary.
            index = math.floor(round(value / width, 9))
            key = round(index * width, 9)
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.max(),
        }


def _label_key(labels: dict[str, str]) -> LabelPairs:
    # Labels appear verbatim in exported snapshots, which the untrusted
    # host can read: byte values (key material) are redacted, never
    # str()'d into the label.
    from repro.obs.spans import redact

    return tuple(sorted((str(k), str(redact(v))) for k, v in labels.items()))


def format_metric(name: str, labels: LabelPairs) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """All metrics of one run, keyed by (name, labels).

    ``counter`` / ``gauge`` / ``histogram`` create on first use and return
    the same instrument afterwards; a name cannot change kinds. Export is
    sorted by the rendered metric name, so two equal runs snapshot to the
    same dict (and the same JSON bytes).
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelPairs], Counter | Gauge | Histogram] = {}

    def _get(self, kind: type, name: str, labels: dict[str, str]):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(name=name, labels=key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, kind):
            raise ConfigurationError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._metrics)

    def collect(self, prefix: str = "") -> dict[str, Counter | Gauge | Histogram]:
        """Instruments whose name starts with ``prefix``, keyed by rendered
        name, in sorted order."""
        out = {
            format_metric(name, labels): metric
            for (name, labels), metric in self._metrics.items()
            if name.startswith(prefix)
        }
        return dict(sorted(out.items()))

    def snapshot(self) -> dict[str, object]:
        """A deterministic, JSON-ready dump of every instrument."""
        out: dict[str, object] = {}
        for rendered, metric in self.collect().items():
            if isinstance(metric, Counter):
                out[rendered] = metric.value
            elif isinstance(metric, Gauge):
                out[rendered] = {"value": metric.value, "max": metric.max_value}
            else:
                out[rendered] = metric.summary()
        return out


class RuntimeStats:
    """Process-global *host-side* counters for fast-path instrumentation.

    These count wall-clock work the host actually performed — cache hits,
    AEAD seals, frames coalesced — never simulated-time quantities, and
    nothing in the simulation may branch on them (they are observability
    only, so a run with different counter values is still the same run).

    They used to live as ad-hoc module-global dicts next to each fast path
    (e.g. ``repro.net.channels.CHANNEL_STATS``), which bled across tests and
    across the two halves of a differential chaos replay. This registry
    keeps them in one place with an explicit :meth:`reset`, called at the
    start of every chaos schedule, traced benchmark run, and test (see
    ``tests/conftest.py``) so counts are attributable to one run.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> dict[str, int]:
        return dict(sorted(self._counts.items()))

    def reset(self) -> None:
        self._counts.clear()


RUNTIME_STATS = RuntimeStats()


def reset_runtime_stats() -> None:
    """Zero every process-global runtime counter (start of a run)."""
    RUNTIME_STATS.reset()
