"""``python -m repro.obs.perfguard``: wall-clock regression guard for CI.

Compares measured durations against the stored budgets in
``perf-budget.json``. Two budgets exist today: the tier-1 pytest suite and
the static-analysis pass (lint + taint over src/). Each budget carries
generous slack (~3x the measured baseline) so it only trips on genuine
regressions — an accidentally disabled fast path, a quadratic loop, a taint
fixpoint that stopped converging — not on CI host noise.

Update a budget deliberately (edit ``perf-budget.json`` with a fresh
baseline and the same slack factor) when the guarded step legitimately
grows.
"""

from __future__ import annotations

import json

# kind -> key prefix in perf-budget.json (``<prefix>_seconds_max`` is the
# limit, ``<prefix>_seconds_baseline`` the documented measurement).
BUDGET_KINDS = {
    "tier1": "tier1",
    "analysis": "analysis",
}


def check_budget(measured_seconds: float, budget: dict, kind: str = "tier1") -> list[str]:
    """Return violations (empty list means within budget)."""
    prefix = BUDGET_KINDS[kind]
    limit = float(budget[f"{prefix}_seconds_max"])
    if measured_seconds > limit:
        return [
            f"{kind} took {measured_seconds:.1f}s, budget is {limit:.1f}s "
            f"(baseline {budget.get(f'{prefix}_seconds_baseline', '?')}s; "
            f"see {budget.get('note', '')})"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="wall-clock regression guard")
    parser.add_argument(
        "--tier1-seconds",
        type=float,
        help="measured wall-clock duration of the tier-1 pytest run",
    )
    parser.add_argument(
        "--analysis-seconds",
        type=float,
        help="measured wall-clock duration of the static-analysis pass",
    )
    parser.add_argument("--budget", default="perf-budget.json")
    args = parser.parse_args(argv)

    measured = {
        "tier1": args.tier1_seconds,
        "analysis": args.analysis_seconds,
    }
    if all(value is None for value in measured.values()):
        parser.error("pass at least one of --tier1-seconds / --analysis-seconds")

    with open(args.budget, encoding="utf-8") as handle:
        budget = json.load(handle)

    problems: list[str] = []
    for kind, seconds in measured.items():
        if seconds is None:
            continue
        kind_problems = check_budget(seconds, budget, kind=kind)
        problems.extend(kind_problems)
        if not kind_problems:
            limit = float(budget[f"{BUDGET_KINDS[kind]}_seconds_max"])
            print(f"perfguard: {kind} {seconds:.1f}s within {limit:.1f}s budget")
    for problem in problems:
        print(f"perfguard: BUDGET EXCEEDED: {problem}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
