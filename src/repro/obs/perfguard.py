"""``python -m repro.obs.perfguard``: wall-clock regression guard for CI.

Compares a measured tier-1 suite duration against the stored budget in
``perf-budget.json``. The budget carries generous slack (~3x the measured
baseline) so it only trips on genuine regressions — an accidentally disabled
fast path, a quadratic loop — not on CI host noise.

Update the budget deliberately (edit ``perf-budget.json`` with a fresh
baseline and the same slack factor) when the suite legitimately grows.
"""

from __future__ import annotations

import json


def check_budget(measured_seconds: float, budget: dict) -> list[str]:
    """Return violations (empty list means within budget)."""
    limit = float(budget["tier1_seconds_max"])
    if measured_seconds > limit:
        return [
            f"tier-1 suite took {measured_seconds:.1f}s, budget is {limit:.1f}s "
            f"(baseline {budget.get('tier1_seconds_baseline', '?')}s; see {budget.get('note', '')})"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="wall-clock regression guard")
    parser.add_argument(
        "--tier1-seconds",
        type=float,
        required=True,
        help="measured wall-clock duration of the tier-1 pytest run",
    )
    parser.add_argument("--budget", default="perf-budget.json")
    args = parser.parse_args(argv)

    with open(args.budget, encoding="utf-8") as handle:
        budget = json.load(handle)

    problems = check_budget(args.tier1_seconds, budget)
    for problem in problems:
        print(f"perfguard: BUDGET EXCEEDED: {problem}")
    if not problems:
        print(
            f"perfguard: tier-1 {args.tier1_seconds:.1f}s within "
            f"{float(budget['tier1_seconds_max']):.1f}s budget"
        )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
