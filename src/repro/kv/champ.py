"""An immutable CHAMP map (Compressed Hash-Array Mapped Prefix-tree).

CCF's map implementation is based on CHAMP (Steindorfer & Vinju, cited in
section 7): a persistent hash trie with bitmap-compressed nodes that
separates inline key-value entries from sub-node references. Persistence
(structural sharing) is what makes CCF's snapshots and rollbacks cheap — an
old version of a map shares almost all of its nodes with the new one — and
we rely on the same property for the store's version history.

Keys must be hashable; values are arbitrary. All operations are
non-destructive: ``set``/``remove`` return a new map.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import KVError

_BITS = 5
_FANOUT = 1 << _BITS  # 32-way branching
_MASK = _FANOUT - 1
_HASH_BITS = 32


def _hash(key: Any) -> int:
    """A stable 32-bit hash. Python's ``hash`` is salted for str/bytes across
    processes, which would make trie shapes nondeterministic between runs —
    so we hash strings/bytes with FNV-1a instead, and reject key types with
    no content-derived hash rather than fall back to the salted builtin."""
    if isinstance(key, (str, bytes)):
        data = key.encode() if isinstance(key, str) else key
        h = 0x811C9DC5
        for byte in data:
            h = ((h ^ byte) * 0x01000193) & 0xFFFFFFFF
        return h
    if isinstance(key, bool):
        return 1 if key else 0
    if isinstance(key, int):
        return key & 0xFFFFFFFF
    if isinstance(key, tuple):
        h = 0x345678
        for item in key:
            h = ((h ^ _hash(item)) * 0x01000193) & 0xFFFFFFFF
        return h
    if key is None:
        return 0x9E3779B9
    if isinstance(key, (frozenset, set)):
        # Element hashes are salted for str members — trie shape would vary
        # across processes even though the set compares equal.
        raise KVError("set-like keys hash nondeterministically; use a sorted tuple")
    hash_fn = type(key).__hash__
    if hash_fn is not None and hash_fn is not object.__hash__:
        # A user-defined __hash__ is content-derived by contract (the default
        # object.__hash__ is an address and is rejected below).
        # repro-lint: disable=DET003
        return hash(key) & 0xFFFFFFFF
    raise KVError(
        f"{type(key).__name__} keys have no deterministic hash; use "
        "str/bytes/int/bool/tuple/None keys or define a content-derived __hash__"
    )


class _Node:
    """One CHAMP node: ``data_map`` marks slots holding inline (k, v) pairs,
    ``node_map`` marks slots holding child nodes. The ``content`` array
    stores data entries from the left and child nodes from the right, per
    the CHAMP paper's layout.

    ``owner`` is the transient-builder ownership token (see
    :class:`TransientChampMap`): ``None`` on every node reachable from a
    persistent map, and the builder's private token object on nodes the
    builder created itself — the only nodes it may mutate in place.
    """

    __slots__ = ("data_map", "node_map", "content", "owner")

    def __init__(self, data_map: int, node_map: int, content, owner=None):
        # ``content`` is a flat sequence (tuple or list — owned transient
        # nodes hold lists so slot writes are O(1); frozen nodes may keep
        # their lists, which is safe because nothing mutates unowned nodes).
        self.data_map = data_map
        self.node_map = node_map
        self.content = content
        self.owner = owner

    def _data_index(self, bit: int) -> int:
        return (self.data_map & (bit - 1)).bit_count()

    def _node_index(self, bit: int) -> int:
        return len(self.content) - 1 - (self.node_map & (bit - 1)).bit_count()

    def get(self, key: Any, key_hash: int, shift: int, default: Any) -> Any:
        bit = 1 << ((key_hash >> shift) & _MASK)
        if self.data_map & bit:
            idx = self._data_index(bit) * 2
            if self.content[idx] == key:
                return self.content[idx + 1]
            return default
        if self.node_map & bit:
            child = self.content[self._node_index(bit)]
            if isinstance(child, _Collision):
                return child.get(key, default)
            return child.get(key, key_hash, shift + _BITS, default)
        return default

    def set(self, key: Any, value: Any, key_hash: int, shift: int) -> tuple["_Node", bool]:
        """Returns (new node, added) where added is False on overwrite.

        Copies go through ``list(self.content)`` + an in-place edit — one
        allocation instead of slice-concatenation chains, and agnostic to
        whether the source array is a tuple or a (frozen transient) list.
        """
        bit = 1 << ((key_hash >> shift) & _MASK)
        if self.data_map & bit:
            idx = self._data_index(bit) * 2
            existing_key = self.content[idx]
            if existing_key == key:
                if self.content[idx + 1] is value:
                    return self, False
                content = list(self.content)
                content[idx + 1] = value
                return _Node(self.data_map, self.node_map, content), False
            # Hash collision at this level: push both entries down a level.
            existing_hash = _hash(existing_key)
            child = _merge_two(
                existing_key, self.content[idx + 1], existing_hash,
                key, value, key_hash, shift + _BITS,
            )
            node_idx = self._node_index(bit)
            content = list(self.content)
            del content[idx:idx + 2]
            content.insert(node_idx - 1, child)
            return _Node(self.data_map ^ bit, self.node_map | bit, content), True
        if self.node_map & bit:
            node_idx = self._node_index(bit)
            child = self.content[node_idx]
            if isinstance(child, _Collision):
                new_child, added = child.set(key, value)
            else:
                new_child, added = child.set(key, value, key_hash, shift + _BITS)
            if new_child is child:
                return self, added
            content = list(self.content)
            content[node_idx] = new_child
            return _Node(self.data_map, self.node_map, content), added
        # Empty slot: insert inline.
        idx = self._data_index(bit) * 2
        content = list(self.content)
        content[idx:idx] = (key, value)
        return _Node(self.data_map | bit, self.node_map, content), True

    def remove(self, key: Any, key_hash: int, shift: int) -> tuple["_Node | None", bool]:
        """Returns (new node or None if emptied, removed)."""
        bit = 1 << ((key_hash >> shift) & _MASK)
        if self.data_map & bit:
            idx = self._data_index(bit) * 2
            if self.content[idx] != key:
                return self, False
            if len(self.content) == 2:
                return None, True
            content = list(self.content)
            del content[idx:idx + 2]
            return _Node(self.data_map ^ bit, self.node_map, content), True
        if self.node_map & bit:
            node_idx = self._node_index(bit)
            child = self.content[node_idx]
            if isinstance(child, _Collision):
                new_child, removed = child.remove(key)
            else:
                new_child, removed = child.remove(key, key_hash, shift + _BITS)
            if not removed:
                return self, False
            if new_child is None:
                if len(self.content) == 1:
                    return None, True
                content = list(self.content)
                del content[node_idx]
                return _Node(self.data_map, self.node_map ^ bit, content), True
            # Collapse single-entry children back inline (canonical form).
            if isinstance(new_child, _Node) and new_child.node_map == 0 and \
                    new_child.data_map.bit_count() == 1:
                inline_key, inline_value = new_child.content
                data_idx = self._data_index(bit) * 2
                content = list(self.content)
                del content[node_idx]
                content[data_idx:data_idx] = (inline_key, inline_value)
                return _Node(self.data_map | bit, self.node_map ^ bit, content), True
            content = list(self.content)
            content[node_idx] = new_child
            return _Node(self.data_map, self.node_map, content), True
        return self, False

    def items(self) -> Iterator[tuple[Any, Any]]:
        data_count = self.data_map.bit_count()
        for i in range(data_count):
            yield self.content[2 * i], self.content[2 * i + 1]
        for child in self.content[2 * data_count:]:
            yield from child.items()


class _Collision:
    """A bucket of entries whose 32-bit hashes fully collide."""

    __slots__ = ("entries", "owner")

    def __init__(self, entries, owner=None):
        self.entries = entries  # flat (k, v, k, v, ...) sequence
        self.owner = owner

    def get(self, key: Any, default: Any) -> Any:
        for i in range(0, len(self.entries), 2):
            if self.entries[i] == key:
                return self.entries[i + 1]
        return default

    def set(self, key: Any, value: Any) -> tuple["_Collision", bool]:
        for i in range(0, len(self.entries), 2):
            if self.entries[i] == key:
                entries = list(self.entries)
                entries[i + 1] = value
                return _Collision(entries), False
        entries = list(self.entries)
        entries.extend((key, value))
        return _Collision(entries), True

    def remove(self, key: Any) -> tuple["_Collision | None", bool]:
        for i in range(0, len(self.entries), 2):
            if self.entries[i] == key:
                if len(self.entries) == 2:
                    return None, True
                entries = list(self.entries)
                del entries[i:i + 2]
                return _Collision(entries), True
        return self, False

    def items(self) -> Iterator[tuple[Any, Any]]:
        for i in range(0, len(self.entries), 2):
            yield self.entries[i], self.entries[i + 1]


def _merge_two(key_a, value_a, hash_a, key_b, value_b, hash_b, shift, owner=None):
    """Build the minimal subtree distinguishing two colliding entries.

    Freshly built nodes are unshared by construction, so a transient builder
    passes its token as ``owner`` and may keep mutating them in place.
    """
    if shift >= _HASH_BITS:
        return _Collision([key_a, value_a, key_b, value_b], owner)
    frag_a = (hash_a >> shift) & _MASK
    frag_b = (hash_b >> shift) & _MASK
    if frag_a == frag_b:
        child = _merge_two(
            key_a, value_a, hash_a, key_b, value_b, hash_b, shift + _BITS, owner
        )
        return _Node(0, 1 << frag_a, [child], owner)
    if frag_a < frag_b:
        return _Node(
            (1 << frag_a) | (1 << frag_b), 0, [key_a, value_a, key_b, value_b], owner
        )
    return _Node(
        (1 << frag_a) | (1 << frag_b), 0, [key_b, value_b, key_a, value_a], owner
    )


_EMPTY_NODE = _Node(0, 0, ())
_SENTINEL = object()


class ChampMap:
    """The public persistent-map interface.

    ``_canon`` memoizes the map's canonical serialized form (rows sorted by
    encoded key, plus their encoding) — see
    :meth:`repro.kv.store.KVStore.canonical_map_rows`. It is safe to cache on
    the instance because a ChampMap's contents never change after
    construction: persistent ops return new maps, and transient builders can
    never mutate a frozen map's nodes (their ownership tokens are retired at
    freeze time).
    """

    __slots__ = ("_root", "_size", "_canon")

    def __init__(self, root: _Node = _EMPTY_NODE, size: int = 0):
        self._root = root
        self._size = size
        self._canon = None

    @classmethod
    def empty(cls) -> "ChampMap":
        return _EMPTY

    @classmethod
    def from_dict(cls, items: dict) -> "ChampMap":
        return cls.from_items(items.items())

    @classmethod
    def from_items(cls, pairs) -> "ChampMap":
        """Bulk-build from (key, value) pairs via a transient builder: one
        ownership token for the whole build, so every trie path is mutated
        in place instead of path-copied per insert."""
        builder = _EMPTY.transient()
        for key, value in pairs:
            builder.set(key, value)
        return builder.freeze()

    def transient(self) -> "TransientChampMap":
        """A mutable builder seeded with this map's contents. The builder
        copies nodes on first touch (this map is never modified) and mutates
        its own copies in place thereafter; ``freeze()`` returns a persistent
        map and invalidates the builder."""
        return TransientChampMap(self)

    def get(self, key: Any, default: Any = None) -> Any:
        return self._root.get(key, _hash(key), 0, default)

    def __getitem__(self, key: Any) -> Any:
        value = self._root.get(key, _hash(key), 0, _SENTINEL)
        if value is _SENTINEL:
            raise KeyError(key)
        return value

    def __contains__(self, key: Any) -> bool:
        return self._root.get(key, _hash(key), 0, _SENTINEL) is not _SENTINEL

    def set(self, key: Any, value: Any) -> "ChampMap":
        root, added = self._root.set(key, value, _hash(key), 0)
        if root is self._root:
            return self
        return ChampMap(root, self._size + (1 if added else 0))

    def remove(self, key: Any) -> "ChampMap":
        root, removed = self._root.remove(key, _hash(key), 0)
        if not removed:
            return self
        return ChampMap(root if root is not None else _EMPTY_NODE, self._size - 1)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Any]:
        for key, _value in self._root.items():
            yield key

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self._root.items()

    def keys(self) -> Iterator[Any]:
        return iter(self)

    def values(self) -> Iterator[Any]:
        for _key, value in self._root.items():
            yield value

    def to_dict(self) -> dict:
        return dict(self.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChampMap):
            return NotImplemented
        return len(self) == len(other) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(f"{k!r}: {v!r}" for k, v in list(self.items())[:4])
        suffix = ", …" if len(self) > 4 else ""
        return f"ChampMap({{{preview}{suffix}}}, size={len(self)})"


class TransientChampMap:
    """A mutable CHAMP builder for batch writes (transient discipline).

    The builder holds a private *ownership token* (a fresh object). A node
    whose ``owner`` is this token was created by this builder and is
    reachable from no persistent map, so the builder mutates it in place;
    any other node (``owner`` is ``None`` or a retired token) is copied on
    first touch. The result is the classic persistent/transient contract:

    - the source map is never observably modified;
    - a batch of N writes copies each trie path at most once instead of
      once per write;
    - ``freeze()`` is O(1): it retires the token (sets it to ``None``) and
      wraps the root. Retirement alone is enough — no node walk — because
      a later builder always mints a *new* token, which can never compare
      identical to the retired one, so frozen nodes are immutable forever.

    Mutation after ``freeze()`` raises :class:`KVError`: with the token
    retired, the builder could otherwise mistake shared persistent nodes
    (``owner is None``) for its own.

    The write algorithms mirror the persistent ``set``/``remove`` branch for
    branch — including the inline→collision pushdown and the single-entry
    collapse on remove — so a frozen transient is structure- and
    byte-identical to the equivalent sequence of persistent operations
    (enforced by the randomized differential oracle in
    ``tests/kv/test_transient.py``).
    """

    __slots__ = ("_owner", "_root", "_size", "_source", "_mutated")

    def __init__(self, source: ChampMap):
        self._owner = object()
        self._root = source._root
        self._size = source._size
        self._source = source
        self._mutated = False

    # ------------------------------------------------------------------
    # Reads (valid until freeze)

    def get(self, key: Any, default: Any = None) -> Any:
        return self._root.get(key, _hash(key), 0, default)

    def __contains__(self, key: Any) -> bool:
        return self._root.get(key, _hash(key), 0, _SENTINEL) is not _SENTINEL

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Writes

    def set(self, key: Any, value: Any) -> "TransientChampMap":
        self._check_live()
        root = self._owned(self._root)
        if self._set_in(root, key, value, _hash(key), 0):
            self._size += 1
        if self._mutated:
            self._root = root
        return self

    def remove(self, key: Any) -> "TransientChampMap":
        self._check_live()
        root = self._owned(self._root)
        removed, replacement = self._remove_in(root, key, _hash(key), 0)
        if removed:
            self._size -= 1
            self._root = replacement if replacement is not None else _EMPTY_NODE
        return self

    def freeze(self) -> ChampMap:
        """Retire the ownership token and return a persistent map. O(1).
        If no write actually changed the contents, the original source map
        is returned unchanged — preserving the persistent path's identity
        semantics (no-op batches keep the same map object, which the delta
        snapshot dirtiness check relies on)."""
        self._check_live()
        self._owner = None
        if not self._mutated:
            return self._source
        return ChampMap(self._root, self._size)

    # ------------------------------------------------------------------
    # Internals

    def _check_live(self) -> None:
        if self._owner is None:
            raise KVError("transient map already frozen")

    def _owned(self, node):
        """``node``, if this builder owns it; else a copy it does own.

        Copies take a fresh *list* content array: owned nodes are mutated
        in place with O(1) slot writes, so they must never share their
        content with an unowned (potentially frozen/shared) node."""
        owner = self._owner
        if node.owner is owner:
            return node
        if isinstance(node, _Collision):
            return _Collision(list(node.entries), owner)
        return _Node(node.data_map, node.node_map, list(node.content), owner)

    def _set_in(self, node: _Node, key, value, key_hash: int, shift: int) -> bool:
        """Set within owned ``node``; returns True when a new key was added.
        Mirrors ``_Node.set`` branch for branch, but edits the owned node's
        list content in place — no array rebuild per write."""
        bit = 1 << ((key_hash >> shift) & _MASK)
        if node.data_map & bit:
            idx = node._data_index(bit) * 2
            existing_key = node.content[idx]
            if existing_key == key:
                if node.content[idx + 1] is value:
                    return False
                node.content[idx + 1] = value
                self._mutated = True
                return False
            # Hash collision at this level: push both entries down a level.
            existing_hash = _hash(existing_key)
            child = _merge_two(
                existing_key, node.content[idx + 1], existing_hash,
                key, value, key_hash, shift + _BITS, owner=self._owner,
            )
            node_idx = node._node_index(bit)
            del node.content[idx:idx + 2]
            node.content.insert(node_idx - 1, child)
            node.data_map ^= bit
            node.node_map |= bit
            self._mutated = True
            return True
        if node.node_map & bit:
            node_idx = node._node_index(bit)
            child = node.content[node_idx]
            owned = self._owned(child)
            if owned is not child:
                node.content[node_idx] = owned
            if isinstance(owned, _Collision):
                return self._set_collision(owned, key, value)
            return self._set_in(owned, key, value, key_hash, shift + _BITS)
        # Empty slot: insert inline.
        idx = node._data_index(bit) * 2
        node.content[idx:idx] = (key, value)
        node.data_map |= bit
        self._mutated = True
        return True

    def _set_collision(self, node: _Collision, key, value) -> bool:
        entries = node.entries
        for i in range(0, len(entries), 2):
            if entries[i] == key:
                entries[i + 1] = value
                self._mutated = True
                return False
        entries.extend((key, value))
        self._mutated = True
        return True

    def _remove_in(self, node: _Node, key, key_hash: int, shift: int):
        """Remove within owned ``node``. Returns ``(removed, replacement)``
        where replacement is ``None`` when the subtree emptied, else the
        node to keep in the slot. Mirrors ``_Node.remove`` exactly,
        including the canonical single-entry collapse."""
        bit = 1 << ((key_hash >> shift) & _MASK)
        if node.data_map & bit:
            idx = node._data_index(bit) * 2
            if node.content[idx] != key:
                return False, node
            self._mutated = True
            if len(node.content) == 2:
                return True, None
            del node.content[idx:idx + 2]
            node.data_map ^= bit
            return True, node
        if node.node_map & bit:
            node_idx = node._node_index(bit)
            child = node.content[node_idx]
            owned = self._owned(child)
            if owned is not child:
                node.content[node_idx] = owned
            if isinstance(owned, _Collision):
                removed, new_child = self._remove_collision(owned, key)
            else:
                removed, new_child = self._remove_in(owned, key, key_hash, shift + _BITS)
            if not removed:
                return False, node
            if new_child is None:
                if len(node.content) == 1:
                    return True, None
                del node.content[node_idx]
                node.node_map ^= bit
                return True, node
            # Collapse single-entry children back inline (canonical form).
            if isinstance(new_child, _Node) and new_child.node_map == 0 and \
                    new_child.data_map.bit_count() == 1:
                inline_key, inline_value = new_child.content
                data_idx = node._data_index(bit) * 2
                del node.content[node_idx]
                node.content[data_idx:data_idx] = (inline_key, inline_value)
                node.data_map |= bit
                node.node_map ^= bit
                return True, node
            if new_child is not node.content[node_idx]:
                node.content[node_idx] = new_child
            return True, node
        return False, node

    def _remove_collision(self, node: _Collision, key):
        entries = node.entries
        for i in range(0, len(entries), 2):
            if entries[i] == key:
                self._mutated = True
                if len(entries) == 2:
                    return True, None
                del entries[i:i + 2]
                return True, node
        return False, node


_EMPTY = ChampMap()
