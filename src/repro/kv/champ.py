"""An immutable CHAMP map (Compressed Hash-Array Mapped Prefix-tree).

CCF's map implementation is based on CHAMP (Steindorfer & Vinju, cited in
section 7): a persistent hash trie with bitmap-compressed nodes that
separates inline key-value entries from sub-node references. Persistence
(structural sharing) is what makes CCF's snapshots and rollbacks cheap — an
old version of a map shares almost all of its nodes with the new one — and
we rely on the same property for the store's version history.

Keys must be hashable; values are arbitrary. All operations are
non-destructive: ``set``/``remove`` return a new map.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import KVError

_BITS = 5
_FANOUT = 1 << _BITS  # 32-way branching
_MASK = _FANOUT - 1
_HASH_BITS = 32


def _hash(key: Any) -> int:
    """A stable 32-bit hash. Python's ``hash`` is salted for str/bytes across
    processes, which would make trie shapes nondeterministic between runs —
    so we hash strings/bytes with FNV-1a instead, and reject key types with
    no content-derived hash rather than fall back to the salted builtin."""
    if isinstance(key, (str, bytes)):
        data = key.encode() if isinstance(key, str) else key
        h = 0x811C9DC5
        for byte in data:
            h = ((h ^ byte) * 0x01000193) & 0xFFFFFFFF
        return h
    if isinstance(key, bool):
        return 1 if key else 0
    if isinstance(key, int):
        return key & 0xFFFFFFFF
    if isinstance(key, tuple):
        h = 0x345678
        for item in key:
            h = ((h ^ _hash(item)) * 0x01000193) & 0xFFFFFFFF
        return h
    if key is None:
        return 0x9E3779B9
    if isinstance(key, (frozenset, set)):
        # Element hashes are salted for str members — trie shape would vary
        # across processes even though the set compares equal.
        raise KVError("set-like keys hash nondeterministically; use a sorted tuple")
    hash_fn = type(key).__hash__
    if hash_fn is not None and hash_fn is not object.__hash__:
        # A user-defined __hash__ is content-derived by contract (the default
        # object.__hash__ is an address and is rejected below).
        # repro-lint: disable=DET003
        return hash(key) & 0xFFFFFFFF
    raise KVError(
        f"{type(key).__name__} keys have no deterministic hash; use "
        "str/bytes/int/bool/tuple/None keys or define a content-derived __hash__"
    )


class _Node:
    """One CHAMP node: ``data_map`` marks slots holding inline (k, v) pairs,
    ``node_map`` marks slots holding child nodes. The ``content`` array
    stores data entries from the left and child nodes from the right, per
    the CHAMP paper's layout."""

    __slots__ = ("data_map", "node_map", "content")

    def __init__(self, data_map: int, node_map: int, content: tuple):
        self.data_map = data_map
        self.node_map = node_map
        self.content = content

    def _data_index(self, bit: int) -> int:
        return bin(self.data_map & (bit - 1)).count("1")

    def _node_index(self, bit: int) -> int:
        return len(self.content) - 1 - bin(self.node_map & (bit - 1)).count("1")

    def get(self, key: Any, key_hash: int, shift: int, default: Any) -> Any:
        bit = 1 << ((key_hash >> shift) & _MASK)
        if self.data_map & bit:
            idx = self._data_index(bit) * 2
            if self.content[idx] == key:
                return self.content[idx + 1]
            return default
        if self.node_map & bit:
            child = self.content[self._node_index(bit)]
            if isinstance(child, _Collision):
                return child.get(key, default)
            return child.get(key, key_hash, shift + _BITS, default)
        return default

    def set(self, key: Any, value: Any, key_hash: int, shift: int) -> tuple["_Node", bool]:
        """Returns (new node, added) where added is False on overwrite."""
        bit = 1 << ((key_hash >> shift) & _MASK)
        if self.data_map & bit:
            idx = self._data_index(bit) * 2
            existing_key = self.content[idx]
            if existing_key == key:
                if self.content[idx + 1] is value:
                    return self, False
                content = self.content[:idx + 1] + (value,) + self.content[idx + 2:]
                return _Node(self.data_map, self.node_map, content), False
            # Hash collision at this level: push both entries down a level.
            existing_hash = _hash(existing_key)
            child = _merge_two(
                existing_key, self.content[idx + 1], existing_hash,
                key, value, key_hash, shift + _BITS,
            )
            data_idx = self._data_index(bit) * 2
            node_idx = self._node_index(bit)
            content = (
                self.content[:data_idx]
                + self.content[data_idx + 2:node_idx + 1]
                + (child,)
                + self.content[node_idx + 1:]
            )
            return _Node(self.data_map ^ bit, self.node_map | bit, content), True
        if self.node_map & bit:
            node_idx = self._node_index(bit)
            child = self.content[node_idx]
            if isinstance(child, _Collision):
                new_child, added = child.set(key, value)
            else:
                new_child, added = child.set(key, value, key_hash, shift + _BITS)
            if new_child is child:
                return self, added
            content = self.content[:node_idx] + (new_child,) + self.content[node_idx + 1:]
            return _Node(self.data_map, self.node_map, content), added
        # Empty slot: insert inline.
        idx = self._data_index(bit) * 2
        content = self.content[:idx] + (key, value) + self.content[idx:]
        return _Node(self.data_map | bit, self.node_map, content), True

    def remove(self, key: Any, key_hash: int, shift: int) -> tuple["_Node | None", bool]:
        """Returns (new node or None if emptied, removed)."""
        bit = 1 << ((key_hash >> shift) & _MASK)
        if self.data_map & bit:
            idx = self._data_index(bit) * 2
            if self.content[idx] != key:
                return self, False
            content = self.content[:idx] + self.content[idx + 2:]
            if not content:
                return None, True
            return _Node(self.data_map ^ bit, self.node_map, content), True
        if self.node_map & bit:
            node_idx = self._node_index(bit)
            child = self.content[node_idx]
            if isinstance(child, _Collision):
                new_child, removed = child.remove(key)
            else:
                new_child, removed = child.remove(key, key_hash, shift + _BITS)
            if not removed:
                return self, False
            if new_child is None:
                content = self.content[:node_idx] + self.content[node_idx + 1:]
                if not content:
                    return None, True
                return _Node(self.data_map, self.node_map ^ bit, content), True
            # Collapse single-entry children back inline (canonical form).
            if isinstance(new_child, _Node) and new_child.node_map == 0 and \
                    bin(new_child.data_map).count("1") == 1:
                inline_key, inline_value = new_child.content
                data_idx = self._data_index(bit) * 2
                content = (
                    self.content[:data_idx]
                    + (inline_key, inline_value)
                    + self.content[data_idx:node_idx]
                    + self.content[node_idx + 1:]
                )
                return _Node(self.data_map | bit, self.node_map ^ bit, content), True
            content = self.content[:node_idx] + (new_child,) + self.content[node_idx + 1:]
            return _Node(self.data_map, self.node_map, content), True
        return self, False

    def items(self) -> Iterator[tuple[Any, Any]]:
        data_count = bin(self.data_map).count("1")
        for i in range(data_count):
            yield self.content[2 * i], self.content[2 * i + 1]
        for child in self.content[2 * data_count:]:
            yield from child.items()


class _Collision:
    """A bucket of entries whose 32-bit hashes fully collide."""

    __slots__ = ("entries",)

    def __init__(self, entries: tuple):
        self.entries = entries  # flat (k, v, k, v, ...) tuple

    def get(self, key: Any, default: Any) -> Any:
        for i in range(0, len(self.entries), 2):
            if self.entries[i] == key:
                return self.entries[i + 1]
        return default

    def set(self, key: Any, value: Any) -> tuple["_Collision", bool]:
        for i in range(0, len(self.entries), 2):
            if self.entries[i] == key:
                entries = self.entries[:i + 1] + (value,) + self.entries[i + 2:]
                return _Collision(entries), False
        return _Collision(self.entries + (key, value)), True

    def remove(self, key: Any) -> tuple["_Collision | None", bool]:
        for i in range(0, len(self.entries), 2):
            if self.entries[i] == key:
                entries = self.entries[:i] + self.entries[i + 2:]
                return (_Collision(entries) if entries else None), True
        return self, False

    def items(self) -> Iterator[tuple[Any, Any]]:
        for i in range(0, len(self.entries), 2):
            yield self.entries[i], self.entries[i + 1]


def _merge_two(key_a, value_a, hash_a, key_b, value_b, hash_b, shift):
    """Build the minimal subtree distinguishing two colliding entries."""
    if shift >= _HASH_BITS:
        return _Collision((key_a, value_a, key_b, value_b))
    frag_a = (hash_a >> shift) & _MASK
    frag_b = (hash_b >> shift) & _MASK
    if frag_a == frag_b:
        child = _merge_two(key_a, value_a, hash_a, key_b, value_b, hash_b, shift + _BITS)
        return _Node(0, 1 << frag_a, (child,))
    if frag_a < frag_b:
        return _Node((1 << frag_a) | (1 << frag_b), 0, (key_a, value_a, key_b, value_b))
    return _Node((1 << frag_a) | (1 << frag_b), 0, (key_b, value_b, key_a, value_a))


_EMPTY_NODE = _Node(0, 0, ())
_SENTINEL = object()


class ChampMap:
    """The public persistent-map interface."""

    __slots__ = ("_root", "_size")

    def __init__(self, root: _Node = _EMPTY_NODE, size: int = 0):
        self._root = root
        self._size = size

    @classmethod
    def empty(cls) -> "ChampMap":
        return _EMPTY

    @classmethod
    def from_dict(cls, items: dict) -> "ChampMap":
        result = _EMPTY
        for key, value in items.items():
            result = result.set(key, value)
        return result

    def get(self, key: Any, default: Any = None) -> Any:
        return self._root.get(key, _hash(key), 0, default)

    def __getitem__(self, key: Any) -> Any:
        value = self._root.get(key, _hash(key), 0, _SENTINEL)
        if value is _SENTINEL:
            raise KeyError(key)
        return value

    def __contains__(self, key: Any) -> bool:
        return self._root.get(key, _hash(key), 0, _SENTINEL) is not _SENTINEL

    def set(self, key: Any, value: Any) -> "ChampMap":
        root, added = self._root.set(key, value, _hash(key), 0)
        if root is self._root:
            return self
        return ChampMap(root, self._size + (1 if added else 0))

    def remove(self, key: Any) -> "ChampMap":
        root, removed = self._root.remove(key, _hash(key), 0)
        if not removed:
            return self
        return ChampMap(root if root is not None else _EMPTY_NODE, self._size - 1)

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Any]:
        for key, _value in self._root.items():
            yield key

    def items(self) -> Iterator[tuple[Any, Any]]:
        return self._root.items()

    def keys(self) -> Iterator[Any]:
        return iter(self)

    def values(self) -> Iterator[Any]:
        for _key, value in self._root.items():
            yield value

    def to_dict(self) -> dict:
        return dict(self.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChampMap):
            return NotImplemented
        return len(self) == len(other) and self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(f"{k!r}: {v!r}" for k, v in list(self.items())[:4])
        suffix = ", …" if len(self) > 4 else ""
        return f"ChampMap({{{preview}{suffix}}}, size={len(self)})"


_EMPTY = ChampMap()
