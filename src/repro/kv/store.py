"""The versioned key-value store (section 3.3).

A :class:`KVStore` is the in-enclave state of one CCF node: a collection of
named CHAMP maps plus a version counter equal to the sequence number of the
last applied transaction. Because CHAMP maps are persistent, the store keeps
a *version history* — a snapshot of the map table at every applied version —
at negligible cost, which is what lets consensus roll uncommitted suffixes
back after an election (section 4.2). History below the commit point is
pruned via :meth:`compact`.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.errors import KVError, TransactionConflictError
from repro.kv.champ import ChampMap
from repro.kv.serialization import (
    decode_value,
    encode_dict_from_encoded,
    encode_value,
    freeze_key,
)
from repro.kv.tx import REMOVED, Transaction, WriteSet

# Batched writes go through a transient CHAMP builder (one path copy per
# batch instead of one per write). The persistent per-write path remains as
# the differential-testing oracle; flipping this off routes every apply
# through it (used by tests and repro.obs.kvbench to prove byte-identical
# results and to measure the speedup).
TRANSIENT_APPLY = True


def set_transient_apply(enabled: bool) -> bool:
    """Toggle the transient apply fast path; returns the previous setting."""
    global TRANSIENT_APPLY
    previous = TRANSIENT_APPLY
    TRANSIENT_APPLY = bool(enabled)
    return previous


class KVStore:
    """Named maps + version counter + rollback history."""

    def __init__(self) -> None:
        self._maps: dict[str, ChampMap] = {}
        self.version = 0
        # version -> map-table snapshot (shallow dict of persistent maps).
        self._history: dict[int, dict[str, ChampMap]] = {0: {}}
        self._history_order: list[int] = [0]
        # Optional observability wiring (set by the owning node).
        self.obs = None
        self.obs_owner = ""

    # ------------------------------------------------------------------
    # Transactions

    def begin(self) -> Transaction:
        """Start a transaction against the current state."""
        return Transaction(dict(self._maps), self.version)

    def snapshot_view(self) -> tuple[dict[str, ChampMap], int]:
        """The current map table + version, shared (persistent maps are
        immutable) — the base snapshot for speculative batch execution."""
        return dict(self._maps), self.version

    def earliest_retained_version(self) -> int:
        """The oldest version rollback history still covers."""
        return self._history_order[0]

    def begin_at(self, version: int) -> Transaction:
        """Start a read-only view transaction against retained ``version``.

        Used by read offload to serve from the last-committed snapshot while
        later (uncommitted, speculative) versions are already applied.
        Raises :class:`KVError` if the version is not retained.
        """
        if version == self.version:
            return self.begin()
        snapshot = self._history.get(version)
        if snapshot is None:
            raise KVError(f"no retained state at version {version}")
        return Transaction(dict(snapshot), version)

    def commit(self, tx: Transaction, seqno: int | None = None) -> WriteSet:
        """Validate ``tx``'s reads and apply its write set at ``seqno``.

        ``seqno`` defaults to ``version + 1``. Raises
        :class:`TransactionConflictError` if any value the transaction read
        has changed since it began (optimistic concurrency control).
        """
        if tx.read_version != self.version:
            for map_name, key, value_seen in tx.reads():
                current_map = self._maps.get(map_name)
                current = current_map.get(key) if current_map is not None else None
                if current != value_seen:
                    raise TransactionConflictError(
                        f"read of {map_name}[{key!r}] invalidated by concurrent write"
                    )
        if seqno is None:
            seqno = self.version + 1
        self.apply_write_set(tx.write_set, seqno)
        return tx.write_set

    def apply_write_set(self, write_set: WriteSet, seqno: int) -> None:
        """Apply a write set atomically, advancing the version to ``seqno``.

        Used both for locally executed transactions and for replaying
        ledger entries received from the primary or read from disk.
        """
        if seqno <= self.version:
            raise KVError(
                f"write set seqno {seqno} is not ahead of version {self.version}"
            )
        for map_name, entries in write_set.updates.items():
            current = self._maps.get(map_name, ChampMap.empty())
            if TRANSIENT_APPLY and len(entries) > 1:
                # Transient fast path: one ownership token for the whole
                # per-map batch, so shared trie paths are copied once and
                # then mutated in place. freeze() returns the identical map
                # object for all-no-op batches, matching the persistent
                # path's identity semantics (delta-snapshot dirtiness is an
                # object-identity check).
                builder = current.transient()
                for key, value in entries.items():
                    if value is REMOVED:
                        builder.remove(key)
                    else:
                        builder.set(key, value)
                current = builder.freeze()
            else:
                for key, value in entries.items():
                    if value is REMOVED:
                        current = current.remove(key)
                    else:
                        current = current.set(key, value)
            self._maps[map_name] = current
        self.version = seqno
        self._history[seqno] = dict(self._maps)
        self._history_order.append(seqno)
        if self.obs is not None:
            self.obs.store_applied(self.obs_owner, seqno, len(self._maps))

    # ------------------------------------------------------------------
    # Direct reads (used by read-only endpoints and internal lookups)

    def get(self, map_name: str, key: Any, default: Any = None) -> Any:
        current = self._maps.get(map_name)
        return current.get(key, default) if current is not None else default

    def items(self, map_name: str) -> Iterator[tuple[Any, Any]]:
        current = self._maps.get(map_name)
        if current is not None:
            yield from current.items()

    def map_names(self) -> list[str]:
        return sorted(self._maps)

    def map_size(self, map_name: str) -> int:
        current = self._maps.get(map_name)
        return len(current) if current is not None else 0

    # ------------------------------------------------------------------
    # Rollback & compaction (driven by consensus)

    def rollback_to(self, version: int) -> None:
        """Discard all state after ``version`` (post-election rollback)."""
        if version == self.version:
            return
        snapshot = self._history.get(version)
        if snapshot is None:
            raise KVError(f"no retained state at version {version}")
        self._maps = dict(snapshot)
        self.version = version
        for stale in [v for v in self._history_order if v > version]:
            del self._history[stale]
        self._history_order = [v for v in self._history_order if v <= version]
        if self.obs is not None:
            self.obs.store_rollback(self.obs_owner, version)

    def compact(self, version: int) -> None:
        """Drop rollback history strictly below ``version`` (commit point);
        committed state can never be rolled back (section 4.4)."""
        keep_from = 0
        for i, v in enumerate(self._history_order):
            if v >= version:
                keep_from = i
                break
        else:
            keep_from = len(self._history_order) - 1
        for stale in self._history_order[:keep_from]:
            if stale != self._history_order[keep_from]:
                del self._history[stale]
        self._history_order = self._history_order[keep_from:]
        if self.obs is not None:
            self.obs.store_compact(self.obs_owner, version)

    # ------------------------------------------------------------------
    # Snapshot serialization (section 4.4: nodes may join from a snapshot)

    def serialize(self) -> bytes:
        """Canonical encoding of the full store state at this version."""
        return self._serialize_maps(self._maps, self.version)

    def serialize_at(self, version: int) -> bytes:
        """Canonical encoding of the store as of retained ``version`` —
        used to snapshot at the commit point while later (uncommitted)
        transactions are already applied."""
        snapshot = self._history.get(version)
        if snapshot is None:
            raise KVError(f"no retained state at version {version}")
        return self._serialize_maps(snapshot, version)

    @staticmethod
    def _serialize_maps(maps: dict[str, ChampMap], version: int) -> bytes:
        # Assemble the snapshot from memoized per-map encodings: a map that
        # did not change since its last serialization (same ChampMap object,
        # same cached bytes) is spliced in without re-walking a single
        # entry. Byte-identical to encoding the equivalent plain dict —
        # tests/kv/test_transient.py checks this against a reference
        # implementation.
        maps_encoding = encode_dict_from_encoded(
            [
                (encode_value(name), KVStore.encoded_map_rows(champ))
                for name, champ in maps.items()
            ]
        )
        return encode_dict_from_encoded(
            [
                (encode_value("version"), encode_value(version)),
                (encode_value("maps"), maps_encoding),
            ]
        )

    def map_table_at(self, version: int) -> dict[str, ChampMap]:
        """The (shared) map table as of retained ``version``.

        Delta snapshots hold on to this table as the dirty-detection
        baseline: persistent maps mean an untouched map is literally the
        *same object* across versions, so "changed since the last snapshot"
        is an O(#maps) identity comparison, exact for untouched maps and
        conservative (a fresh equal object) for touched-and-reverted ones.
        """
        if version == self.version:
            return dict(self._maps)
        snapshot = self._history.get(version)
        if snapshot is None:
            raise KVError(f"no retained state at version {version}")
        return dict(snapshot)

    def changed_map_names(
        self, version: int, baseline: dict[str, ChampMap]
    ) -> set[str]:
        """Names of maps whose state at ``version`` is not (identically) the
        map recorded in ``baseline`` — the dirty set for a delta snapshot.
        Maps present only in ``baseline`` (since emptied away) also count."""
        table = self.map_table_at(version)
        changed = {
            name for name, champ in table.items() if baseline.get(name) is not champ
        }
        changed.update(name for name in baseline if name not in table)
        return changed

    @staticmethod
    def canonical_map_rows(champ: ChampMap) -> list[list[Any]]:
        """One map's entries in canonical (encoded-key) order — the unit of
        per-map chunk serialization. Matches ``_serialize_maps`` row order
        so full and chunked snapshots agree byte-for-byte per map.

        Memoized on the map instance (``ChampMap._canon``), keyed by nothing
        but identity: a ChampMap's contents are fixed at construction, so
        the cache can never go stale, and the delta-snapshot dirtiness unit
        (same object = clean) is exactly the memo's validity unit. Callers
        must treat the returned rows as read-only.
        """
        rows, _encoded = KVStore._canonical(champ)
        return rows

    @staticmethod
    def encoded_map_rows(champ: ChampMap) -> bytes:
        """``encode_value`` of :meth:`canonical_map_rows`, memoized alongside
        it — the per-map splice unit for ``_serialize_maps``."""
        _rows, encoded = KVStore._canonical(champ)
        return encoded

    @staticmethod
    def _canonical(champ: ChampMap) -> tuple[list[list[Any]], bytes]:
        from repro.obs.metrics import RUNTIME_STATS

        cached = champ._canon
        if cached is not None:
            RUNTIME_STATS.inc("kv.map_encode.hits")
            return cached
        RUNTIME_STATS.inc("kv.map_encode.misses")
        rows = [
            [key, value]
            for key, value in sorted(
                champ.items(), key=lambda item: encode_value(item[0])
            )
        ]
        cached = (rows, encode_value(rows))
        champ._canon = cached
        return cached

    @classmethod
    def from_map_rows(
        cls, maps: dict[str, list[list[Any]]], version: int
    ) -> "KVStore":
        """Rebuild a store from per-map canonical rows (chunked install).
        Maps are bulk-built through a transient builder — install cost is
        one in-place trie build per map, not a path copy per row. Row keys
        pass through ``freeze_key``: tuple keys decode from the wire as
        lists (rows are list-encoded, so the decoder's own key freezing
        never sees them)."""
        store = cls()
        for name, rows in maps.items():
            store._maps[name] = ChampMap.from_items(
                (freeze_key(key), value) for key, value in rows
            )
        store.version = version
        store._history = {version: dict(store._maps)}
        store._history_order = [version]
        return store

    @classmethod
    def deserialize(cls, data: bytes) -> "KVStore":
        state = decode_value(data)
        if not isinstance(state, dict) or "version" not in state or "maps" not in state:
            raise KVError("malformed store snapshot")
        store = cls()
        for name, rows in state["maps"].items():
            store._maps[name] = ChampMap.from_items(
                (freeze_key(key), value) for key, value in rows
            )
        store.version = state["version"]
        store._history = {store.version: dict(store._maps)}
        store._history_order = [store.version]
        return store
