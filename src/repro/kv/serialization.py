"""Canonical serialization of keys, values, and write sets.

The ledger must be byte-identical across nodes (its Merkle root is signed),
so everything that reaches it needs a deterministic encoding. We use a small
canonical binary format (a CBOR-lite): type tag + big-endian length + body,
with map keys sorted by their encoded bytes. Supported types are the
JSON-ish set apps need: ``None``, ``bool``, ``int``, ``str``, ``bytes``,
``list``/``tuple``, and ``dict``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import KVError

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT_POS = 0x03
_TAG_INT_NEG = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08

# Nesting bound for the decoder. Encoded input comes off the wire and off
# disk, so an adversarial blob of nested one-element lists must fail with a
# typed error instead of exhausting the interpreter's recursion stack.
MAX_DECODE_DEPTH = 128


def _encode_length(value: int) -> bytes:
    return value.to_bytes(4, "big")


def encode_value(value: Any) -> bytes:
    """Encode ``value`` into canonical bytes. Raises :class:`KVError` for
    unsupported types so nondeterministic objects never reach the ledger."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _encode_into(out: bytearray, value: Any) -> None:
    """Append the canonical encoding of ``value`` to ``out``.

    Scalars and lists write straight into the shared accumulator; only dict
    entries take a per-item scratch buffer, because canonical form sorts
    entries by their encoded bytes before emission.
    """
    if value is None:
        out.append(_TAG_NONE)
        return
    if value is True:
        out.append(_TAG_TRUE)
        return
    if value is False:
        out.append(_TAG_FALSE)
        return
    if isinstance(value, int):
        magnitude = value if value >= 0 else -value - 1
        body = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        out.append(_TAG_INT_POS if value >= 0 else _TAG_INT_NEG)
        out += _encode_length(len(body))
        out += body
        return
    if isinstance(value, str):
        body = value.encode()
        out.append(_TAG_STR)
        out += _encode_length(len(body))
        out += body
        return
    if isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        out += _encode_length(len(value))
        out += value
        return
    if isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out += _encode_length(len(value))
        for item in value:
            _encode_into(out, item)
        return
    if isinstance(value, dict):
        pairs = []
        for key, val in value.items():
            key_buf = bytearray()
            _encode_into(key_buf, key)
            val_buf = bytearray()
            _encode_into(val_buf, val)
            pairs.append((bytes(key_buf), bytes(val_buf)))
        pairs.sort()
        out.append(_TAG_DICT)
        out += _encode_length(len(pairs))
        for key_bytes, val_bytes in pairs:
            out += key_bytes
            out += val_bytes
        return
    raise KVError(f"cannot serialize {type(value).__name__} values")


def encode_dict_from_encoded(pairs: list[tuple[bytes, bytes]]) -> bytes:
    """Assemble a canonical dict encoding from already-encoded
    ``(key bytes, value bytes)`` pairs.

    Byte-identical to ``encode_value`` of the equivalent dict: canonical
    form sorts entries by their encoded bytes, which this reproduces on the
    pre-encoded pairs. This is what lets the store splice *memoized* per-map
    encodings into a snapshot without re-encoding clean maps — the whole
    point of the memo is skipping ``encode_value``, so the enclosing dict
    must be assembled from cached bytes rather than re-walked.
    """
    out = bytearray()
    out.append(_TAG_DICT)
    out += _encode_length(len(pairs))
    for key_bytes, val_bytes in sorted(pairs):
        out += key_bytes
        out += val_bytes
    return bytes(out)


def decode_value(data: bytes) -> Any:
    """Decode canonical bytes back into a value."""
    value, offset = _decode(data, 0, 0)
    if offset != len(data):
        raise KVError("trailing bytes after encoded value")
    return value


def _decode(data: bytes, offset: int, depth: int) -> tuple[Any, int]:
    if depth > MAX_DECODE_DEPTH:
        raise KVError(
            f"encoded value nests deeper than {MAX_DECODE_DEPTH} levels"
        )
    if offset >= len(data):
        raise KVError("truncated encoding")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag in (_TAG_INT_POS, _TAG_INT_NEG, _TAG_STR, _TAG_BYTES, _TAG_LIST, _TAG_DICT):
        if offset + 4 > len(data):
            raise KVError("truncated length field")
        length = int.from_bytes(data[offset : offset + 4], "big")
        offset += 4
        if tag in (_TAG_INT_POS, _TAG_INT_NEG):
            if offset + length > len(data):
                raise KVError("truncated integer body")
            magnitude = int.from_bytes(data[offset : offset + length], "big")
            offset += length
            return (magnitude if tag == _TAG_INT_POS else -magnitude - 1), offset
        if tag == _TAG_STR:
            if offset + length > len(data):
                raise KVError("truncated string body")
            return data[offset : offset + length].decode(), offset + length
        if tag == _TAG_BYTES:
            if offset + length > len(data):
                raise KVError("truncated bytes body")
            return data[offset : offset + length], offset + length
        if tag == _TAG_LIST:
            items = []
            for _ in range(length):
                item, offset = _decode(data, offset, depth + 1)
                items.append(item)
            return items, offset
        result: dict = {}
        for _ in range(length):
            key, offset = _decode(data, offset, depth + 1)
            value, offset = _decode(data, offset, depth + 1)
            result[_freeze_key(key)] = value
        return result, offset
    raise KVError(f"unknown type tag 0x{tag:02x}")


def freeze_key(key: Any) -> Any:
    """Dict keys must be hashable; lists decode to tuples in key position."""
    if isinstance(key, list):
        return tuple(freeze_key(item) for item in key)
    return key


_freeze_key = freeze_key  # internal alias used by the decoder


def json_safe_key(key: Any) -> str:
    """Render a dict key as a collision-free JSON object key.

    ``str(key)`` conflates distinct keys — ``1`` and ``"1"`` both become
    ``"1"`` and one entry silently vanishes from a ledger excerpt. Non-string
    keys get a type tag instead, and the rare string that *looks* tagged is
    escaped, so the mapping is injective and mechanically reversible.
    """
    if isinstance(key, str):
        if key.startswith("__") and "__:" in key:
            return f"__str__:{key}"
        return key
    if key is None:
        return "__none__:"
    if key is True:
        return "__bool__:true"
    if key is False:
        return "__bool__:false"
    if isinstance(key, int):
        return f"__int__:{key}"
    if isinstance(key, (bytes, bytearray)):
        return f"__bytes__:{bytes(key).hex()}"
    if isinstance(key, tuple):
        return f"__tuple__:{encode_value(list(key)).hex()}"
    raise KVError(f"cannot render {type(key).__name__} dict keys")


def json_safe(value: Any) -> Any:
    """Convert a value into a JSON-serializable shape (bytes become hex
    strings tagged for reversibility). Used for ledger excerpt printing."""
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, dict):
        return {json_safe_key(key): json_safe(val) for key, val in value.items()}
    return value
