"""Canonical serialization of keys, values, and write sets.

The ledger must be byte-identical across nodes (its Merkle root is signed),
so everything that reaches it needs a deterministic encoding. We use a small
canonical binary format (a CBOR-lite): type tag + big-endian length + body,
with map keys sorted by their encoded bytes. Supported types are the
JSON-ish set apps need: ``None``, ``bool``, ``int``, ``str``, ``bytes``,
``list``/``tuple``, and ``dict``.
"""

from __future__ import annotations

from typing import Any

from repro.errors import KVError

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT_POS = 0x03
_TAG_INT_NEG = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08


def _encode_length(value: int) -> bytes:
    return value.to_bytes(4, "big")


def encode_value(value: Any) -> bytes:
    """Encode ``value`` into canonical bytes. Raises :class:`KVError` for
    unsupported types so nondeterministic objects never reach the ledger."""
    if value is None:
        return bytes([_TAG_NONE])
    if value is True:
        return bytes([_TAG_TRUE])
    if value is False:
        return bytes([_TAG_FALSE])
    if isinstance(value, int):
        magnitude = value if value >= 0 else -value - 1
        body = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        tag = _TAG_INT_POS if value >= 0 else _TAG_INT_NEG
        return bytes([tag]) + _encode_length(len(body)) + body
    if isinstance(value, str):
        body = value.encode()
        return bytes([_TAG_STR]) + _encode_length(len(body)) + body
    if isinstance(value, (bytes, bytearray)):
        body = bytes(value)
        return bytes([_TAG_BYTES]) + _encode_length(len(body)) + body
    if isinstance(value, (list, tuple)):
        parts = [encode_value(item) for item in value]
        body = b"".join(parts)
        return bytes([_TAG_LIST]) + _encode_length(len(parts)) + body
    if isinstance(value, dict):
        encoded_items = sorted(
            (encode_value(key), encode_value(val)) for key, val in value.items()
        )
        body = b"".join(k + v for k, v in encoded_items)
        return bytes([_TAG_DICT]) + _encode_length(len(encoded_items)) + body
    raise KVError(f"cannot serialize {type(value).__name__} values")


def decode_value(data: bytes) -> Any:
    """Decode canonical bytes back into a value."""
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise KVError("trailing bytes after encoded value")
    return value


def _decode(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise KVError("truncated encoding")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag in (_TAG_INT_POS, _TAG_INT_NEG, _TAG_STR, _TAG_BYTES, _TAG_LIST, _TAG_DICT):
        if offset + 4 > len(data):
            raise KVError("truncated length field")
        length = int.from_bytes(data[offset : offset + 4], "big")
        offset += 4
        if tag in (_TAG_INT_POS, _TAG_INT_NEG):
            if offset + length > len(data):
                raise KVError("truncated integer body")
            magnitude = int.from_bytes(data[offset : offset + length], "big")
            offset += length
            return (magnitude if tag == _TAG_INT_POS else -magnitude - 1), offset
        if tag == _TAG_STR:
            if offset + length > len(data):
                raise KVError("truncated string body")
            return data[offset : offset + length].decode(), offset + length
        if tag == _TAG_BYTES:
            if offset + length > len(data):
                raise KVError("truncated bytes body")
            return data[offset : offset + length], offset + length
        if tag == _TAG_LIST:
            items = []
            for _ in range(length):
                item, offset = _decode(data, offset)
                items.append(item)
            return items, offset
        result: dict = {}
        for _ in range(length):
            key, offset = _decode(data, offset)
            value, offset = _decode(data, offset)
            result[_freeze_key(key)] = value
        return result, offset
    raise KVError(f"unknown type tag 0x{tag:02x}")


def freeze_key(key: Any) -> Any:
    """Dict keys must be hashable; lists decode to tuples in key position."""
    if isinstance(key, list):
        return tuple(freeze_key(item) for item in key)
    return key


_freeze_key = freeze_key  # internal alias used by the decoder


def json_safe(value: Any) -> Any:
    """Convert a value into a JSON-serializable shape (bytes become hex
    strings tagged for reversibility). Used for ledger excerpt printing."""
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): json_safe(val) for key, val in value.items()}
    return value
