"""The transactional key-value store (section 3.3).

The store is a set of named *maps*; each map is an immutable CHAMP trie
(Compressed Hash-Array Mapped Prefix-tree, the structure the real CCF uses,
section 7). Maps whose names start with ``public:`` are written to the
ledger in plain text; all other maps are *private* and their updates are
encrypted with the ledger secret before leaving the (simulated) TEE.

Transactions execute against a snapshot of the store and produce a
*write set* which is applied atomically and appended to the ledger.
"""

from repro.kv.champ import ChampMap
from repro.kv.store import KVStore
from repro.kv.tx import Transaction, WriteSet, REMOVED
from repro.kv.serialization import encode_value, decode_value

__all__ = [
    "ChampMap",
    "KVStore",
    "Transaction",
    "WriteSet",
    "REMOVED",
    "encode_value",
    "decode_value",
]
