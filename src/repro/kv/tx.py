"""Transactions and write sets (section 3.3).

Each endpoint invocation executes in a :class:`Transaction` over a snapshot
of the store. Reads are tracked for optimistic validation; writes accumulate
in a :class:`WriteSet` — the unit that is applied atomically to the maps and
appended to the ledger. Updates are subdivided into public-map updates
(written in plain text) and private-map updates (encrypted with the ledger
secret) by the map-name convention: names starting ``public:`` are public.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import KVError
from repro.kv.serialization import decode_value, encode_value, freeze_key

PUBLIC_PREFIX = "public:"


class _Removed:
    """Sentinel marking a key removal inside a write set."""

    _instance: "_Removed | None" = None

    def __new__(cls) -> "_Removed":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<removed>"


REMOVED = _Removed()


def is_public_map(name: str) -> bool:
    """Public maps go to the ledger unencrypted (auditability); everything
    else is encrypted under the ledger secret (confidentiality)."""
    return name.startswith(PUBLIC_PREFIX)


@dataclass
class WriteSet:
    """The atomic effect of one transaction: per-map key updates/removals."""

    updates: dict[str, dict[Any, Any]] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not any(self.updates.values())

    def put(self, map_name: str, key: Any, value: Any) -> None:
        self.updates.setdefault(map_name, {})[key] = value

    def remove(self, map_name: str, key: Any) -> None:
        self.updates.setdefault(map_name, {})[key] = REMOVED

    def maps(self) -> Iterator[str]:
        return iter(self.updates)

    def split(self) -> tuple["WriteSet", "WriteSet"]:
        """Partition into (public, private) write sets for ledger framing."""
        public = WriteSet()
        private = WriteSet()
        for map_name, entries in self.updates.items():
            target = public if is_public_map(map_name) else private
            target.updates[map_name] = dict(entries)
        return public, private

    def merge(self, other: "WriteSet") -> None:
        """Fold ``other`` into this write set (used when reassembling the
        public and private halves of a decoded ledger entry)."""
        for map_name, entries in other.updates.items():
            self.updates.setdefault(map_name, {}).update(entries)

    def encode(self) -> bytes:
        """Canonical encoding; identical write sets encode identically."""
        shaped = {
            map_name: [
                [key, value is not REMOVED, None if value is REMOVED else value]
                for key, value in sorted(
                    entries.items(), key=lambda item: encode_value(item[0])
                )
            ]
            for map_name, entries in self.updates.items()
            if entries
        }
        return encode_value(shaped)

    @classmethod
    def decode(cls, data: bytes) -> "WriteSet":
        shaped = decode_value(data)
        if not isinstance(shaped, dict):
            raise KVError("malformed write set encoding")
        write_set = cls()
        for map_name, rows in shaped.items():
            entries: dict[Any, Any] = {}
            for key, has_value, value in rows:
                entries[freeze_key(key)] = value if has_value else REMOVED
            write_set.updates[map_name] = entries
        return write_set


class Transaction:
    """A read-write transaction over a consistent snapshot of the store.

    The transaction sees its own writes (read-your-writes within the tx) and
    records every read for optimistic validation at commit time. CCF nodes
    execute requests serially so conflicts do not arise in normal operation,
    but the validation keeps the store safe under any embedding.
    """

    def __init__(self, snapshot: dict, version: int):
        self._snapshot = snapshot  # map name -> ChampMap, frozen at begin
        self.read_version = version
        self.write_set = WriteSet()
        self._reads: list[tuple[str, Any, Any]] = []  # (map, key, value seen)
        self._scans: set[str] = set()  # maps read via full iteration

    def get(self, map_name: str, key: Any, default: Any = None) -> Any:
        local = self.write_set.updates.get(map_name)
        if local is not None and key in local:
            value = local[key]
            return default if value is REMOVED else value
        underlying = self._snapshot.get(map_name)
        value = underlying.get(key, default) if underlying is not None else default
        self._reads.append((map_name, key, value))
        return value

    def has(self, map_name: str, key: Any) -> bool:
        sentinel = object()
        return self.get(map_name, key, sentinel) is not sentinel

    def put(self, map_name: str, key: Any, value: Any) -> None:
        # Round-trip through the canonical codec up front, so type errors
        # surface at the call site instead of at ledger-append time.
        encode_value(key)
        encode_value(value)
        self.write_set.put(map_name, key, value)

    def remove(self, map_name: str, key: Any) -> None:
        self.write_set.remove(map_name, key)

    def items(self, map_name: str) -> Iterator[tuple[Any, Any]]:
        """Iterate the map as this transaction sees it (snapshot + local
        writes). Full scans record a map-level read for validation."""
        self._scans.add(map_name)
        local = self.write_set.updates.get(map_name, {})
        underlying = self._snapshot.get(map_name)
        seen = set()
        if underlying is not None:
            for key, value in underlying.items():
                seen.add(key)
                if key in local:
                    if local[key] is not REMOVED:
                        yield key, local[key]
                else:
                    yield key, value
        for key, value in local.items():
            if key not in seen and value is not REMOVED:
                yield key, value

    def reads(self) -> list[tuple[str, Any, Any]]:
        return list(self._reads)

    def scanned_maps(self) -> set[str]:
        """Maps this transaction iterated in full (``items``). Speculative
        batch execution treats any write to a scanned map as a conflict,
        since per-key read tracking cannot cover a scan."""
        return set(self._scans)

    @property
    def is_read_only(self) -> bool:
        return self.write_set.is_empty()
