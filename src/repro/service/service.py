"""Service bootstrap and orchestration for simulations.

:class:`CCFService` performs the full, realistic startup dance of a CCF
network (Figure 1): the first node creates the service and its genesis
state; every other node joins with a verified attestation quote, becomes
PENDING, and is promoted to TRUSTED through member governance; finally a
member proposal opens the service to users. Everything runs through the
same endpoints and governance machinery a real deployment would use.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable

from repro.app.application import Application
from repro.app.context import RequestContext
from repro.crypto.certs import Identity
from repro.crypto.ecies import EncryptionKeyPair
from repro.errors import CCFError
from repro.governance.proposals import build_governance_app
from repro.ledger.secrets import LedgerSecretStore
from repro.net.network import LinkConfig, Network
from repro.node import maps
from repro.node.config import NodeConfig
from repro.node.node import CCFNode
from repro.recovery.shares import provision_recovery_shares
from repro.service.client import ServiceClient
from repro.sim.scheduler import Scheduler
from repro.tee.attestation import HardwareRoot
from repro.tee.enclave import code_id_for


@dataclass
class MemberHandle:
    """A consortium member: signing identity + encryption key pair."""

    identity: Identity
    encryption: EncryptionKeyPair
    client: ServiceClient | None = None

    @property
    def subject(self) -> str:
        return self.identity.subject


@dataclass
class ServiceSetup:
    """Parameters of a simulated service."""

    n_nodes: int = 3
    n_members: int = 3
    n_users: int = 1
    node_config: NodeConfig = field(default_factory=NodeConfig)
    app_factory: Callable[[], Application] | None = None
    constitution: dict = field(default_factory=lambda: {"kind": "default"})
    recovery_threshold: int = 2
    code_name: str = "ccf-app"
    code_version: int = 1
    service_subject: str = "ccf-service"
    link: LinkConfig = field(default_factory=LinkConfig)
    seed: int = 42


class CCFService:
    """A fully bootstrapped simulated CCF service."""

    def __init__(self, setup: ServiceSetup):
        self.setup = setup
        self.scheduler = Scheduler(seed=setup.seed)
        self.network = Network(self.scheduler, setup.link)
        self.hardware = HardwareRoot(seed=b"hw|%d" % setup.seed)
        self.code_id = code_id_for(setup.code_name, setup.code_version)
        self.nodes: dict[str, CCFNode] = {}
        self.members: list[MemberHandle] = []
        self.users: list[Identity] = []
        self.user_clients: list[ServiceClient] = []
        self._next_node_index = 0

        app_factory = setup.app_factory
        if app_factory is None:
            from repro.app.logging_app import build_logging_app

            app_factory = build_logging_app
        self._app_factory = app_factory

        for i in range(setup.n_members):
            identity = Identity.create(f"m{i}", b"member|%d|%d" % (setup.seed, i))
            encryption = EncryptionKeyPair.generate(b"member-enc|%d|%d" % (setup.seed, i))
            self.members.append(MemberHandle(identity=identity, encryption=encryption))
        for i in range(setup.n_users):
            self.users.append(Identity.create(f"u{i}", b"user|%d|%d" % (setup.seed, i)))

    # ------------------------------------------------------------------
    # Node construction

    def _make_node(self, node_id: str) -> CCFNode:
        node = CCFNode(
            node_id=node_id,
            scheduler=self.scheduler,
            network=self.network,
            hardware=self.hardware,
            app=self._app_factory(),
            config=self.setup.node_config,
            code_id=self.code_id,
            governance_app=build_governance_app(),
        )
        self.nodes[node_id] = node
        return node

    def new_node_id(self) -> str:
        node_id = f"n{self._next_node_index}"
        self._next_node_index += 1
        return node_id

    # ------------------------------------------------------------------
    # Bootstrap

    def _genesis(self, ctx: RequestContext) -> None:
        """The genesis transaction's governance state."""
        for member in self.members:
            ctx.put(
                maps.MEMBERS_CERTS,
                member.subject,
                {"certificate": member.identity.certificate.to_dict(), "data": {}},
            )
            ctx.put(
                maps.MEMBERS_KEYS,
                member.subject,
                {"public_key": member.encryption.public.hex()},
            )
        for user in self.users:
            ctx.put(
                maps.USERS_CERTS,
                user.subject,
                {"certificate": user.certificate.to_dict(), "data": {}},
            )
        ctx.put(maps.CONSTITUTION, "constitution", dict(self.setup.constitution))
        ctx.put(maps.NODES_CODE_IDS, self.code_id, "AllowedToJoin")
        # Recovery shares for the initial ledger secret (section 5.2).
        node0 = self.nodes["n0"]
        secrets: LedgerSecretStore = node0.enclave.memory.get("ledger_secrets")
        provision_recovery_shares(
            ctx,
            secrets.current(),
            {m.subject: m.encryption.public for m in self.members},
            self.setup.recovery_threshold,
            self.scheduler.rng,
        )

    def bootstrap(self, open_service: bool = True) -> None:
        """Run the full startup sequence to a service open for users."""
        node0 = self._make_node(self.new_node_id())
        node0.start_new_service(self.setup.service_subject, self._genesis)

        for member in self.members:
            member.client = ServiceClient(
                self.scheduler, self.network,
                name=f"member:{member.subject}", identity=member.identity,
            )
        for user in self.users:
            self.user_clients.append(
                ServiceClient(
                    self.scheduler, self.network,
                    name=f"user:{user.subject}", identity=user,
                )
            )

        for _ in range(1, self.setup.n_nodes):
            self.add_node()

        if open_service:
            self.open_service()
        # Don't declare the service ready until every node has learned that
        # the bootstrap reconfigurations committed (its active-configuration
        # list collapsed to one entry). Killing the primary inside that
        # window would leave stale configurations requiring dead nodes for
        # quorum — the reconfiguration window of vulnerability the paper
        # aims to minimize (section 6.3).
        self.run_until(self._configurations_settled, timeout=5.0)

    def _configurations_settled(self) -> bool:
        primary = self.primary_node()
        if primary is None:
            return False
        if primary._txs_since_signature > 0:
            # Nudge a signature so bootstrap converges even under configs
            # with very long signature intervals / disabled flushing.
            primary._request_signature_soon()
            return False
        target = primary.ledger.last_seqno
        for node in self.nodes.values():
            if node.stopped or node.consensus is None:
                continue
            if len(node.consensus.configurations) != 1:
                return False
            if node.consensus.commit_seqno < target:
                return False
        return True

    def add_node(self, node_config: NodeConfig | None = None) -> CCFNode:
        """Start a new node, join it, and promote it to TRUSTED through
        governance (the section 4.4 / Figure 9 path)."""
        node_id = self.new_node_id()
        node = self._make_node(node_id)
        if node_config is not None:
            node.config = node_config
        primary = self.primary_node()
        if primary is None:
            raise CCFError("no primary to join through")
        node.request_join(primary.node_id, primary.service_certificate)
        self.run_until(lambda: node.consensus is not None, timeout=5.0)
        self.run_governance(
            [{"name": "transition_node_to_trusted", "args": {"node_id": node_id}}]
        )
        self.run_until(
            lambda: node_id in self.primary_node().consensus.configurations.current.nodes,
            timeout=5.0,
        )
        return node

    def open_service(self) -> None:
        self.run_governance([{"name": "transition_service_to_open", "args": {}}])
        self.run_until(
            lambda: (self.primary_node().store.get(maps.SERVICE_INFO, "service") or {})
            .get("status") == maps.SERVICE_OPEN,
            timeout=5.0,
        )

    # ------------------------------------------------------------------
    # Governance driving

    def _require_primary(self) -> CCFNode:
        primary = self.primary_node()
        if primary is None:
            raise CCFError("no primary available")
        return primary

    def run_governance(self, actions: list[dict], timeout: float = 5.0) -> str:
        """Submit a proposal as m0 and vote with members until accepted."""
        primary = self._require_primary()
        proposer = self.members[0]
        response = proposer.client.call(
            primary.node_id, "/gov/propose", {"actions": actions}, signed=True,
            timeout=timeout,
        )
        if response.ok:
            proposal_id = response.body["proposal_id"]
            state = response.body["state"]
        else:
            # Proposal ids are content-derived, so a retry after a lost
            # response collides with the proposal that did land — resume
            # voting on it instead of failing.
            match = re.search(r"duplicate proposal ([0-9a-f]+)", response.error or "")
            if match is None:
                raise CCFError(f"proposal failed: {response.error}")
            proposal_id = match.group(1)
            status = proposer.client.call(
                self._require_primary().node_id, "/gov/proposal",
                {"proposal_id": proposal_id}, timeout=timeout,
            )
            if not status.ok:
                raise CCFError(f"proposal failed: {response.error}")
            state = status.body["info"]["state"]
        for member in self.members[1:]:
            if state == "Accepted":
                break
            vote = member.client.call(
                self._require_primary().node_id,
                "/gov/vote",
                {"proposal_id": proposal_id, "ballot": {"approve": True}},
                signed=True,
                timeout=timeout,
            )
            if not vote.ok:
                raise CCFError(f"ballot failed: {vote.error}")
            state = vote.body["state"]
        if state != "Accepted":
            raise CCFError(f"proposal {proposal_id} ended {state}")
        return proposal_id

    # ------------------------------------------------------------------
    # Simulation helpers

    def run(self, seconds: float) -> None:
        self.scheduler.run_until(self.scheduler.now + seconds)

    def run_until(self, predicate: Callable[[], bool], timeout: float = 5.0) -> None:
        deadline = self.scheduler.now + timeout
        while not predicate():
            if self.scheduler.now >= deadline:
                raise CCFError(f"condition not reached within {timeout}s (sim time)")
            if not self.scheduler.step():
                raise CCFError("scheduler drained before the condition held")

    def primary_node(self) -> CCFNode | None:
        primaries = [
            node
            for node in self.nodes.values()
            if not node.stopped and node.consensus is not None and node.consensus.is_primary
        ]
        if not primaries:
            return None
        return max(primaries, key=lambda node: node.consensus.view)

    def backup_nodes(self) -> list[CCFNode]:
        primary = self.primary_node()
        return [
            node
            for node in self.nodes.values()
            if not node.stopped and node is not primary and node.consensus is not None
        ]

    def any_user_client(self) -> ServiceClient:
        return self.user_clients[0]

    def kill_node(self, node_id: str) -> None:
        self.nodes[node_id].crash()
