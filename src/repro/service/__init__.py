"""Service-level orchestration: bootstrap, clients, members, operators."""

from repro.service.service import CCFService, ServiceSetup
from repro.service.client import ServiceClient
from repro.service.operator import Operator

__all__ = ["CCFService", "ServiceSetup", "ServiceClient", "Operator"]
