"""Simulated clients: users, members, and closed-loop load generators.

A :class:`ServiceClient` is one network endpoint that sends requests to CCF
nodes and correlates the responses. Users retry against other nodes when
their node fails (section 4.3); sessions give session consistency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable

from repro.app.context import Request, Response
from repro.crypto.certs import Identity
from repro.crypto.cose import sign_request
from repro.errors import CCFError, LostWriteError, ServiceIdentityChangedError
from repro.net.network import Network
from repro.node.wire import ClientRequest, ClientResponse
from repro.sim.metrics import LatencyRecorder, ThroughputRecorder
from repro.sim.scheduler import Scheduler

_client_ids = itertools.count(1)


class ServiceClient:
    """A user or member endpoint on the simulated network."""

    def __init__(
        self,
        scheduler: Scheduler,
        network: Network,
        name: str | None = None,
        identity: Identity | None = None,
    ):
        self.client_id = name or f"client-{next(_client_ids)}"
        self.scheduler = scheduler
        self.network = network
        self.identity = identity
        self.responses: dict[int, Response] = {}
        self._callbacks: dict[int, Callable[[Response], None]] = {}
        network.register(self.client_id, self._on_message)

    def _on_message(self, src: str, payload: object) -> None:
        if isinstance(payload, ClientResponse):
            response = payload.response
            obs = self.scheduler.obs
            if obs is not None:
                obs.client_response(response.request_id, response.status)
            self.responses[response.request_id] = response
            callback = self._callbacks.pop(response.request_id, None)
            if callback is not None:
                callback(response)

    # ------------------------------------------------------------------

    def credentials_for_cert_auth(self) -> dict:
        if self.identity is None:
            return {}
        return {"certificate": self.identity.certificate.to_dict()}

    def send(
        self,
        node_id: str,
        path: str,
        body: dict | None = None,
        credentials: dict | None = None,
        session_id: str = "",
        on_response: Callable[[Response], None] | None = None,
        after_txid: str = "",
    ) -> int:
        """Fire a request; returns the request id for correlation.

        ``after_txid`` sets a read-offload freshness floor: a node serving
        the read must prove its snapshot includes that committed TxID, or
        reply with a typed retryable "behind" error (never silently stale).
        """
        request = Request(
            path=path,
            body=body or {},
            credentials=credentials if credentials is not None else self.credentials_for_cert_auth(),
            session_id=session_id or self.client_id,
            after_txid=after_txid,
        )
        if on_response is not None:
            self._callbacks[request.request_id] = on_response
        obs = self.scheduler.obs
        if obs is not None:
            obs.client_submit(request, self.client_id, node_id)
        self.network.send(self.client_id, node_id, ClientRequest(request))
        return request.request_id

    def send_signed(
        self,
        node_id: str,
        path: str,
        body: dict,
        on_response: Callable[[Response], None] | None = None,
    ) -> int:
        """Send a member/user-signed request (governance traffic)."""
        if self.identity is None:
            raise ValueError("signing requires an identity")
        envelope = sign_request(self.identity, body, headers={"path": path})
        return self.send(
            node_id,
            path,
            body=body,
            credentials={"signed_request": envelope.to_dict()},
            on_response=on_response,
        )

    def call(self, node_id: str, path: str, body: dict | None = None,
             credentials: dict | None = None, timeout: float = 5.0,
             signed: bool = False, after_txid: str = "") -> Response:
        """Convenience: send and run the scheduler until the reply arrives."""
        if signed:
            request_id = self.send_signed(node_id, path, body or {})
        else:
            request_id = self.send(node_id, path, body, credentials,
                                   after_txid=after_txid)
        deadline = self.scheduler.now + timeout
        while request_id not in self.responses and self.scheduler.now < deadline:
            if not self.scheduler.step():
                break
        response = self.responses.pop(request_id, None)
        if response is None:
            return Response(request_id, status=504, error="client-side timeout")
        return response


@dataclass
class AckedWrite:
    """One write this client saw acknowledged, with its receipt if the
    client fetched one before the disaster."""

    txid: str
    path: str
    body: dict
    receipt: dict | None = None


class ContinuityTracker:
    """Client-side rollback detection (section 5.2).

    The paper's disaster recovery is *best effort*: a suffix of the ledger
    can be lost, and the defence is detectability, not prevention. This
    tracker is the client half of that contract: it pins the service
    identity on first contact and remembers every acknowledged write (plus
    any receipts fetched for them). After reconnecting — possibly to a
    recovered service — :meth:`audit` re-checks both and returns *typed*
    findings: a :class:`ServiceIdentityChangedError` whenever the identity
    moved (recovery always mints a new one), and a :class:`LostWriteError`
    for each acknowledged transaction the service no longer commits.
    Nothing is ever silently dropped."""

    def __init__(self, client: ServiceClient):
        self.client = client
        self.pinned_identity: str | None = None
        self.acked: dict[str, AckedWrite] = {}

    # ------------------------------------------------------------------

    def _service_public_key(self, node_id: str) -> str | None:
        response = self.client.call(node_id, "/node/service_info", {})
        if not response.ok:
            return None
        certificate = (response.body or {}).get("certificate") or {}
        return certificate.get("public_key")

    def pin_identity(self, node_id: str) -> str:
        """First contact: remember the service identity we are talking to
        (a real client gets it out-of-band or on TLS establishment)."""
        key = self._service_public_key(node_id)
        if key is None:
            raise CCFError(f"cannot read service identity from {node_id}")
        self.pinned_identity = key
        return key

    def accept_identity(self, node_id: str) -> str:
        """Explicitly re-pin after a *known* recovery — the user-level act
        of trusting the new service identity."""
        return self.pin_identity(node_id)

    def record_ack(self, txid: str, path: str = "", body: dict | None = None) -> None:
        self.acked[txid] = AckedWrite(txid=txid, path=path, body=dict(body or {}))

    def fetch_receipt(self, node_id: str, txid: str) -> dict | None:
        """Ask for an offline-verifiable receipt and attach it to the
        acked write (requires the txid to be committed and signed over)."""
        response = self.client.call(node_id, "/node/receipt", {"txid": txid})
        if not response.ok:
            return None
        receipt = (response.body or {}).get("receipt")
        if txid in self.acked:
            self.acked[txid].receipt = receipt
        return receipt

    @property
    def receipted_txids(self) -> list[str]:
        return sorted(t for t, w in self.acked.items() if w.receipt is not None)

    # ------------------------------------------------------------------

    def audit(self, node_id: str) -> list[CCFError]:
        """Reconnect and re-check everything this client was promised.

        Returns typed findings (empty means full continuity): one
        :class:`ServiceIdentityChangedError` if the pinned identity no
        longer matches, and one :class:`LostWriteError` per acknowledged
        transaction whose status is no longer ``Committed`` — including a
        seqno that was re-used by the recovered service in a different view
        (reported as ``Invalid``)."""
        findings: list[CCFError] = []
        current = self._service_public_key(node_id)
        if current is None:
            findings.append(CCFError(f"service unreachable via {node_id}"))
            return findings
        if self.pinned_identity is not None and current != self.pinned_identity:
            findings.append(
                ServiceIdentityChangedError(
                    f"service identity changed from {self.pinned_identity[:16]}… "
                    f"to {current[:16]}… — a recovery (and possible rollback) happened"
                )
            )
        for txid in sorted(self.acked):
            response = self.client.call(node_id, "/node/tx", {"txid": txid})
            status = (response.body or {}).get("status") if response.ok else None
            if status != "Committed":
                write = self.acked[txid]
                findings.append(
                    LostWriteError(
                        f"acknowledged transaction {txid} is now "
                        f"{status or 'unreachable'}"
                        + (" (client holds a receipt)" if write.receipt else ""),
                        txid=txid,
                    )
                )
        return findings

    def require_continuity(self, node_id: str) -> None:
        """Raise the first typed finding, if any."""
        findings = self.audit(node_id)
        if findings:
            raise findings[0]


class ClosedLoopClient:
    """The paper's load generator: up to ``concurrency`` outstanding
    requests in a closed loop (section 7's "up to 1k concurrent requests").

    ``request_factory(i)`` returns (path, body, credentials) for the i-th
    request; responses are recorded into the shared metrics objects.
    Failed/timed-out requests are retried against ``fallback_nodes`` —
    users "simply retry with other nodes" (section 4.3).

    Retries use exponential backoff with jitter: ``retry_timeout`` is the
    *base* deadline for a request; each consecutive timeout doubles it
    (``backoff_factor``) up to ``max_retry_timeout``, and a success resets
    it. The jitter desynchronizes the client population so a recovering
    primary is not hit by a retry stampede. A 503 (no/changed primary)
    also triggers primary re-discovery via the ``/node/network`` endpoint.
    """

    def __init__(
        self,
        client: ServiceClient,
        target_node: str,
        request_factory: Callable[[int], tuple[str, dict, dict | None]],
        concurrency: int,
        throughput: ThroughputRecorder | None = None,
        latency: LatencyRecorder | None = None,
        fallback_nodes: list[str] | None = None,
        retry_timeout: float = 0.2,
        backoff_factor: float = 2.0,
        max_retry_timeout: float = 2.0,
        retry_jitter: float = 0.1,
    ):
        self.client = client
        self.target_node = target_node
        self.request_factory = request_factory
        self.concurrency = concurrency
        self.throughput = throughput if throughput is not None else ThroughputRecorder()
        self.latency = latency if latency is not None else LatencyRecorder()
        self.fallback_nodes = fallback_nodes or []
        self.retry_timeout = retry_timeout
        self.backoff_factor = backoff_factor
        self.max_retry_timeout = max(max_retry_timeout, retry_timeout)
        self.retry_jitter = retry_jitter
        self._consecutive_timeouts = 0
        self._counter = itertools.count()
        self._running = False
        self.errors = 0

    def start(self) -> None:
        self._running = True
        for _ in range(self.concurrency):
            self._fire()

    def stop(self) -> None:
        self._running = False

    def _current_timeout(self) -> float:
        """Base deadline grown exponentially by consecutive timeouts, with
        multiplicative jitter on top."""
        timeout = min(
            self.retry_timeout * self.backoff_factor ** self._consecutive_timeouts,
            self.max_retry_timeout,
        )
        if self.retry_jitter > 0:
            timeout *= 1.0 + self.client.scheduler.rng.uniform(0, self.retry_jitter)
        return timeout

    def _rotate_target(self, failed_node: str) -> None:
        """Move to the next fallback node — but only once per failure
        event, not once per outstanding request (section 4.3: "users …
        will retry with other nodes")."""
        if self.fallback_nodes and self.target_node == failed_node:
            self.fallback_nodes.append(self.target_node)
            self.target_node = self.fallback_nodes.pop(0)
            self._probe_for_primary()

    def _fire(self) -> None:
        if not self._running:
            return
        i = next(self._counter)
        path, body, credentials = self.request_factory(i)
        sent_at = self.client.scheduler.now
        sent_to = self.target_node
        state = {"done": False}

        def on_response(response) -> None:
            if state["done"]:
                return
            state["done"] = True
            timer.cancel()
            now = self.client.scheduler.now
            if response.ok:
                self._consecutive_timeouts = 0
                self.throughput.record(now)
                self.latency.record(now, now - sent_at)
            else:
                self.errors += 1
                if response.status == 503:
                    # "No known primary" / primary changed mid-forward: the
                    # node is up but cannot serve writes — re-discover.
                    self._probe_for_primary()
            self._fire()

        def on_timeout() -> None:
            if state["done"]:
                return
            state["done"] = True
            self.errors += 1
            self._consecutive_timeouts += 1
            self._rotate_target(sent_to)
            self._fire()

        timer = self.client.scheduler.after(self._current_timeout(), on_timeout)
        self.client.send(
            self.target_node, path, body, credentials, on_response=on_response
        )

    def _probe_for_primary(self) -> None:
        """After a failure, ask the current node who the primary is and
        re-target writes there (what a real client does via /node/network)."""

        def on_network_info(response) -> None:
            if not self._running or not response.ok:
                return
            primary = (response.body or {}).get("primary")
            if primary and primary != self.target_node:
                nodes = (response.body or {}).get("nodes", {})
                if primary in nodes:
                    if self.target_node not in self.fallback_nodes:
                        self.fallback_nodes.append(self.target_node)
                    if primary in self.fallback_nodes:
                        self.fallback_nodes.remove(primary)
                    self.target_node = primary

        self.client.send(self.target_node, "/node/network", {}, {},
                         on_response=on_network_info)
