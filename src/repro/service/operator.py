"""The operator: the untrusted party that runs the machines (section 2).

Operators deploy nodes, watch for failures, and drive replacement — but
hold no keys and cannot read any private state. :class:`Operator`
implements the paper's Figure 9 test-infrastructure behaviour: detect the
failed primary (A), prepare and join a replacement node (B), open a
governance proposal to trust the new node and remove the old one (C),
collect ballots (D), and retire the old node once reconfiguration completes
(E).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import CCFError
from repro.node import maps
from repro.node.node import CCFNode
from repro.service.service import CCFService
from repro.storage.host_storage import HostStorage


@dataclass
class ReplacementTimeline:
    """Timestamps of the Figure 9 events for one node replacement."""

    failure_detected: float = 0.0  # ~A
    joined: float = 0.0  # B
    proposal_submitted: float = 0.0  # C
    proposal_accepted: float = 0.0  # D
    reconfiguration_complete: float = 0.0  # E
    events: list[tuple[str, float]] = field(default_factory=list)

    def mark(self, name: str, time: float) -> None:
        self.events.append((name, time))
        setattr(self, name, time)


@dataclass
class SalvagedDisk:
    """One dead host's disk as the operator pulled it: the power loss has
    resolved every un-synced write, so this is untrusted, possibly torn
    bytes — exactly what §5.2 recovery starts from."""

    node_id: str
    storage: HostStorage
    synced_ledger_seqno: int
    power_loss_events: list[str] = field(default_factory=list)
    corrupted: bool = False  # set by whoever tampers with it afterwards


class Operator:
    """Automates node replacement against a running service."""

    def __init__(self, service: CCFService):
        self.service = service

    def salvage_disk(self, node_id: str, rng: random.Random) -> SalvagedDisk:
        """Pull the disk out of a dead (or dying) host. If the host never
        went through a power loss — the operator yanks the disk from a
        machine that is down but was never power-cycled through
        :meth:`HostStorage.power_loss` — the un-synced buffer is resolved
        now, with the same seeded fates. Operators hold no keys: what they
        get is bytes, not state."""
        node = self.service.nodes[node_id]
        storage = node.storage
        if not storage.crashed:
            storage.power_loss(rng)
        return SalvagedDisk(
            node_id=node_id,
            storage=storage,
            synced_ledger_seqno=storage.synced_ledger_seqno,
            power_loss_events=list(storage.crash_log),
        )

    def replace_node(self, failed_node_id: str) -> tuple[CCFNode, ReplacementTimeline]:
        """Replace ``failed_node_id`` with a fresh node, following the
        Figure 9 sequence. Returns the new node and the event timeline."""
        service = self.service
        timeline = ReplacementTimeline()
        timeline.mark("failure_detected", service.scheduler.now)

        # B: prepare a new host (snapshots are copied implicitly via the
        # join protocol) and send the join request to the current primary.
        node_id = service.new_node_id()
        node = service._make_node(node_id)
        primary = service.primary_node()
        if primary is None:
            # Wait for the election to finish first.
            service.run_until(lambda: service.primary_node() is not None, timeout=10.0)
            primary = service.primary_node()
        node.request_join(primary.node_id, primary.service_certificate)
        service.run_until(lambda: node.consensus is not None, timeout=10.0)
        timeline.mark("joined", service.scheduler.now)

        # C: one proposal trusts the new node and removes the failed one.
        proposer = service.members[0]
        response = proposer.client.call(
            service.primary_node().node_id,
            "/gov/propose",
            {
                "actions": [
                    {"name": "transition_node_to_trusted", "args": {"node_id": node_id}},
                    {"name": "remove_node", "args": {"node_id": failed_node_id}},
                ]
            },
            signed=True,
            timeout=10.0,
        )
        if not response.ok:
            raise CCFError(f"replacement proposal failed: {response.error}")
        proposal_id = response.body["proposal_id"]
        timeline.mark("proposal_submitted", service.scheduler.now)

        # D: members ballot until accepted.
        state = response.body["state"]
        for member in service.members[1:]:
            if state == "Accepted":
                break
            vote = member.client.call(
                service.primary_node().node_id,
                "/gov/vote",
                {"proposal_id": proposal_id, "ballot": {"approve": True}},
                signed=True,
                timeout=10.0,
            )
            if vote.ok:
                state = vote.body["state"]
        if state != "Accepted":
            raise CCFError(f"replacement proposal ended {state}")
        timeline.mark("proposal_accepted", service.scheduler.now)

        # E: wait for the reconfiguration to commit — the new node is in
        # the current configuration and the old one is Retired.
        def reconfigured() -> bool:
            current_primary = service.primary_node()
            if current_primary is None:
                return False
            in_config = node_id in current_primary.consensus.configurations.current.nodes
            row = current_primary.store.get(maps.NODES_INFO, failed_node_id)
            retired = isinstance(row, dict) and row.get("status") == "Retired"
            return in_config and retired

        service.run_until(reconfigured, timeout=10.0)
        timeline.mark("reconfiguration_complete", service.scheduler.now)
        return node, timeline
