"""Authenticated node-to-node channels.

Section 7: "Diffie-Hellman key exchange is used for node-to-node message
headers and message forwarding." Each pair of nodes derives a shared AEAD
key from their X25519 key pairs; consensus payloads between enclaves travel
sealed under that key, so the untrusted hosts relaying them can neither read
nor tamper with replicated private state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.fastaead import FastAEADKey
from repro.crypto.hkdf import hkdf
from repro.crypto.x25519 import DHPrivateKey
from repro.crypto.aead import nonce_from_counter
from repro.errors import VerificationError
from repro.kv.serialization import decode_value, encode_value

_CHANNEL_DOMAIN = 0x43  # 'C'

# ChannelHello is idempotent and re-sent on reconnects and join gossip;
# re-deriving an unchanged key costs an X25519 exchange plus an HKDF for
# nothing. Counters are exported via repro.obs.metrics as
# ``fastpath.channel_establish.*``.
CHANNEL_STATS = {"channel_establish.derived": 0, "channel_establish.reused": 0}


@dataclass(frozen=True)
class SealedMessage:
    """A channel-protected message: sender, counter, sealed payload."""

    sender: str
    counter: int
    box: bytes

    def encode(self) -> bytes:
        return encode_value(
            {"sender": self.sender, "counter": self.counter, "box": self.box}
        )

    @classmethod
    def decode(cls, data: bytes) -> "SealedMessage":
        raw = decode_value(data)
        return cls(sender=raw["sender"], counter=raw["counter"], box=raw["box"])


class NodeChannels:
    """One node's view of its pairwise channels."""

    def __init__(self, node_id: str, dh_key: DHPrivateKey):
        self.node_id = node_id
        self._dh = dh_key
        self._peer_publics: dict[str, bytes] = {}
        self._keys: dict[str, FastAEADKey] = {}
        self._send_counters: dict[str, int] = {}
        self._recv_counters: dict[str, int] = {}

    @property
    def public(self) -> bytes:
        return self._dh.public

    def establish(self, peer_id: str, peer_public: bytes) -> None:
        """Derive the shared channel key with ``peer_id``.

        Both sides derive the same key because the HKDF info string orders
        the two node IDs canonically. Re-establishing with an unchanged peer
        public key is a no-op (same inputs derive the same key, so skipping
        the exchange cannot change behaviour); a *changed* key — the peer
        restarted with a fresh DH pair — re-derives as before.
        """
        if (
            self._peer_publics.get(peer_id) == peer_public
            and peer_id in self._keys
        ):
            CHANNEL_STATS["channel_establish.reused"] += 1
            return
        CHANNEL_STATS["channel_establish.derived"] += 1
        shared = self._dh.exchange(peer_public)
        low, high = sorted([self.node_id, peer_id])
        key_bytes = hkdf(shared, b"repro-channel|" + low.encode() + b"|" + high.encode(), 32)
        self._peer_publics[peer_id] = peer_public
        self._keys[peer_id] = FastAEADKey(key_bytes)
        self._send_counters.setdefault(peer_id, 0)
        self._recv_counters.setdefault(peer_id, 0)

    def has_channel(self, peer_id: str) -> bool:
        return peer_id in self._keys

    def seal(self, peer_id: str, payload: bytes) -> SealedMessage:
        key = self._keys_for(peer_id)
        counter = self._send_counters[peer_id]
        self._send_counters[peer_id] = counter + 1
        # Each direction uses its own nonce half-space (sender identity in
        # the AAD prevents reflection).
        nonce = nonce_from_counter(counter * 2 + (0 if self.node_id < peer_id else 1),
                                   _CHANNEL_DOMAIN)
        box = key.seal(nonce, payload, aad=self.node_id.encode())
        return SealedMessage(sender=self.node_id, counter=counter, box=box)

    def open(self, message: SealedMessage) -> bytes:
        key = self._keys_for(message.sender)
        expected = self._recv_counters[message.sender]
        if message.counter < expected:
            raise VerificationError(
                f"replayed channel message from {message.sender} "
                f"(counter {message.counter} < {expected})"
            )
        nonce = nonce_from_counter(
            message.counter * 2 + (0 if message.sender < self.node_id else 1),
            _CHANNEL_DOMAIN,
        )
        payload = key.open(nonce, message.box, aad=message.sender.encode())
        self._recv_counters[message.sender] = message.counter + 1
        return payload

    def _keys_for(self, peer_id: str) -> FastAEADKey:
        try:
            return self._keys[peer_id]
        except KeyError:
            raise VerificationError(f"no channel established with {peer_id}") from None
