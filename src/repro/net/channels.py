"""Authenticated node-to-node channels.

Section 7: "Diffie-Hellman key exchange is used for node-to-node message
headers and message forwarding." Each pair of nodes derives a shared AEAD
key from their X25519 key pairs; consensus payloads between enclaves travel
sealed under that key, so the untrusted hosts relaying them can neither read
nor tamper with replicated private state.

Sealing comes in two granularities sharing one counter stream per peer:
per-message (:meth:`NodeChannels.seal` / :meth:`NodeChannels.open`) and
per-frame (:meth:`NodeChannels.seal_frame` / :class:`FrameAssembler`), where
a frame packs every payload a node produced for one peer during one
scheduler event under a single AEAD seal and a single counter increment.
Fast-path counters live in :data:`repro.obs.metrics.RUNTIME_STATS`
(``channel.establish.*``, ``channel.seal.*``, ``channel.frames.*``), reset
per run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.fastaead import FastAEADKey
from repro.crypto.hkdf import hkdf
from repro.crypto.x25519 import DHPrivateKey
from repro.crypto.aead import nonce_from_counter
from repro.errors import VerificationError
from repro.kv.serialization import decode_value, encode_value
from repro.obs.metrics import RUNTIME_STATS

_CHANNEL_DOMAIN = 0x43  # 'C'


@dataclass(frozen=True)
class SealedMessage:
    """A channel-protected message: sender, counter, sealed payload."""

    sender: str
    counter: int
    box: bytes

    def encode(self) -> bytes:
        return encode_value(
            {"sender": self.sender, "counter": self.counter, "box": self.box}
        )

    @classmethod
    def decode(cls, data: bytes) -> "SealedMessage":
        raw = decode_value(data)
        return cls(sender=raw["sender"], counter=raw["counter"], box=raw["box"])


class NodeChannels:
    """One node's view of its pairwise channels."""

    def __init__(self, node_id: str, dh_key: DHPrivateKey):
        self.node_id = node_id
        self._dh = dh_key
        self._peer_publics: dict[str, bytes] = {}
        self._keys: dict[str, FastAEADKey] = {}
        self._send_counters: dict[str, int] = {}
        self._recv_counters: dict[str, int] = {}

    @property
    def public(self) -> bytes:
        return self._dh.public

    def establish(self, peer_id: str, peer_public: bytes) -> None:
        """Derive the shared channel key with ``peer_id``.

        Both sides derive the same key because the HKDF info string orders
        the two node IDs canonically. Re-establishing with an unchanged peer
        public key is a no-op (same inputs derive the same key, so skipping
        the exchange cannot change behaviour); a *changed* key — the peer
        restarted with a fresh DH pair — re-derives as before.
        """
        if (
            self._peer_publics.get(peer_id) == peer_public
            and peer_id in self._keys
        ):
            RUNTIME_STATS.inc("channel.establish.reused")
            return
        RUNTIME_STATS.inc("channel.establish.derived")
        shared = self._dh.exchange(peer_public)
        low, high = sorted([self.node_id, peer_id])
        key_bytes = hkdf(shared, b"repro-channel|" + low.encode() + b"|" + high.encode(), 32)
        self._peer_publics[peer_id] = peer_public
        self._keys[peer_id] = FastAEADKey(key_bytes)
        self._send_counters.setdefault(peer_id, 0)
        self._recv_counters.setdefault(peer_id, 0)

    def has_channel(self, peer_id: str) -> bool:
        return peer_id in self._keys

    def _send_nonce(self, peer_id: str) -> tuple[int, bytes]:
        counter = self._send_counters[peer_id]
        self._send_counters[peer_id] = counter + 1
        # Each direction uses its own nonce half-space (sender identity in
        # the AAD prevents reflection).
        nonce = nonce_from_counter(
            counter * 2 + (0 if self.node_id < peer_id else 1), _CHANNEL_DOMAIN
        )
        return counter, nonce

    def seal(self, peer_id: str, payload: bytes) -> SealedMessage:
        key = self._keys_for(peer_id)
        counter, nonce = self._send_nonce(peer_id)
        RUNTIME_STATS.inc("channel.seal.calls")
        RUNTIME_STATS.inc("channel.seal.messages")
        box = key.seal(nonce, payload, aad=self.node_id.encode())
        return SealedMessage(sender=self.node_id, counter=counter, box=box)

    def seal_frame(self, peer_id: str, payloads: list[bytes]) -> SealedMessage:
        """Seal a batch of payloads for ``peer_id`` as one frame.

        One AEAD seal and one counter increment cover the whole batch; the
        plaintext is the canonical encoding of the payload list, so the
        frame is self-describing and receivers recover the payloads in
        send order. Frames share the per-peer counter stream with
        single-message seals, so the nonce space stays collision-free even
        when the two granularities interleave (e.g. join secrets mid-run).
        """
        key = self._keys_for(peer_id)
        counter, nonce = self._send_nonce(peer_id)
        RUNTIME_STATS.inc("channel.seal.calls")
        RUNTIME_STATS.inc("channel.seal.messages", len(payloads))
        RUNTIME_STATS.inc("channel.frames.sealed")
        box = key.seal(nonce, encode_value(list(payloads)), aad=self.node_id.encode())
        return SealedMessage(sender=self.node_id, counter=counter, box=box)

    def open(self, message: SealedMessage) -> bytes:
        key = self._keys_for(message.sender)
        expected = self._recv_counters[message.sender]
        if message.counter < expected:
            raise VerificationError(
                f"replayed channel message from {message.sender} "
                f"(counter {message.counter} < {expected})"
            )
        nonce = nonce_from_counter(
            message.counter * 2 + (0 if message.sender < self.node_id else 1),
            _CHANNEL_DOMAIN,
        )
        payload = key.open(nonce, message.box, aad=message.sender.encode())
        self._recv_counters[message.sender] = message.counter + 1
        return payload

    def open_frame(self, sender: str, counter: int, box: bytes) -> list[bytes]:
        """Authenticate and unpack one frame into its payload list.

        Does *not* consult or advance the per-message replay watermark —
        frame replay protection is segment-granular and lives in
        :class:`FrameAssembler`, which tracks ``(counter, index)`` pairs.
        """
        key = self._keys_for(sender)
        nonce = nonce_from_counter(
            counter * 2 + (0 if sender < self.node_id else 1), _CHANNEL_DOMAIN
        )
        plaintext = key.open(nonce, box, aad=sender.encode())
        payloads = decode_value(plaintext)
        if not isinstance(payloads, list) or not all(
            isinstance(item, bytes) for item in payloads
        ):
            raise VerificationError(f"malformed frame from {sender}")
        RUNTIME_STATS.inc("channel.frames.opened")
        return payloads

    def _keys_for(self, peer_id: str) -> FastAEADKey:
        try:
            return self._keys[peer_id]
        except KeyError:
            raise VerificationError(f"no channel established with {peer_id}") from None


class FrameAssembler:
    """Receiver-side frame handling with per-segment replay protection.

    Segments of one frame arrive as independent network messages (they take
    independent latency draws, like the uncoalesced messages they replace),
    so acceptance must be decided per segment. The watermark is the pair
    ``(frame counter, segment index)`` compared lexicographically: a segment
    is accepted iff its pair is >= the watermark, which then advances to
    ``(counter, index + 1)``.

    This is order-isomorphic to the legacy per-message counters: number the
    messages of the uncoalesced run in send order and `(counter, index)`
    enumerates exactly that sequence, so "accept iff not overtaken by a
    later-accepted message" drops the same messages under any reordering,
    duplication, or loss pattern — the property the coalescing-on/off
    differential chaos test pins down.
    """

    def __init__(self, channels: NodeChannels):
        self._channels = channels
        self._watermarks: dict[str, tuple[int, int]] = {}
        # One opened frame per sender is all the cache ever needs: a
        # segment of an older frame is below the watermark by construction.
        self._opened: dict[str, tuple[int, list[bytes]]] = {}

    def accept(
        self, sender: str, counter: int, box: bytes, count: int, index: int
    ) -> bytes | None:
        """Return segment ``index``'s payload, or None if replay-dropped.

        Raises :class:`VerificationError` on tamper (AEAD failure) or a
        frame whose advertised segment count does not match its contents.
        """
        watermark = self._watermarks.get(sender, (0, 0))
        if (counter, index) < watermark:
            RUNTIME_STATS.inc("channel.frames.replay_dropped")
            return None
        cached = self._opened.get(sender)
        if cached is not None and cached[0] == counter:
            payloads = cached[1]
        else:
            payloads = self._channels.open_frame(sender, counter, box)
            self._opened[sender] = (counter, payloads)
        if len(payloads) != count or index >= len(payloads):
            raise VerificationError(
                f"frame from {sender} advertises {count} segments, "
                f"carries {len(payloads)}"
            )
        self._watermarks[sender] = (counter, index + 1)
        return payloads[index]
