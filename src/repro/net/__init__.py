"""Simulated network and authenticated node-to-node channels.

Replaces the testbed's TCP/TLS transport: messages between named endpoints
are delivered through the discrete-event scheduler with configurable
latency, and node-to-node traffic is authenticated/encrypted via X25519 +
AEAD channels (the paper's Diffie-Hellman node-to-node headers, section 7).
The network also hosts the fault model: crashed endpoints, partitions, and
message loss.
"""

from repro.net.network import Network, LinkConfig

__all__ = ["Network", "LinkConfig"]
