"""The simulated message-passing network.

Endpoints register a handler by name; ``send`` schedules delivery through
the scheduler after the link latency. Faults are first-class and drive the
availability experiments (Figure 9) and the chaos engine
(:mod:`repro.sim.chaos`):

- crashed endpoints and pairwise partitions;
- probabilistic loss, globally or per directed link (asymmetric loss);
- message duplication and delay spikes (which reorder deliveries);
- per-node slowdown — a *gray failure*: the node is alive and correct but
  every message it handles or emits is served at inflated latency.

All randomness comes from the scheduler's seeded RNG, and the extra draws
only happen while the corresponding fault is armed, so runs without faults
consume the RNG exactly as before and every faulty run is replayable from
its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.obs.collector import estimate_wire_size
from repro.sim.scheduler import Scheduler

Handler = Callable[[str, Any], None]  # (source endpoint, payload)


@dataclass
class LinkConfig:
    """Latency model for one class of link: base plus uniform jitter."""

    base_latency: float = 0.00025  # 250 µs one-way, LAN-like
    jitter: float = 0.00005

    def sample(self, rng) -> float:
        if self.jitter <= 0:
            return self.base_latency
        return self.base_latency + rng.uniform(0, self.jitter)


@dataclass
class LinkFaults:
    """Fault state for one *directed* link (src -> dst)."""

    loss_probability: float = 0.0
    extra_delay: float = 0.0

    @property
    def is_clear(self) -> bool:
        return self.loss_probability == 0.0 and self.extra_delay == 0.0


class Network:
    """Registry of endpoints + fault state + delivery scheduling."""

    def __init__(self, scheduler: Scheduler, link: LinkConfig | None = None):
        self.scheduler = scheduler
        self.link = link if link is not None else LinkConfig()
        self._handlers: dict[str, Handler] = {}
        self._down: set[str] = set()
        self._partitions: set[frozenset[str]] = set()
        self._loss_probability = 0.0
        self._link_faults: dict[tuple[str, str], LinkFaults] = {}
        self._slowdowns: dict[str, float] = {}
        self._duplicate_probability = 0.0
        self._spike_probability = 0.0
        self._spike_magnitude = 0.0
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_duplicated = 0
        self.segments_sent = 0  # subset of messages_sent that are frame segments

    # ------------------------------------------------------------------
    # Topology

    def register(self, name: str, handler: Handler) -> None:
        if name in self._handlers:
            raise ConfigurationError(f"endpoint {name!r} already registered")
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def is_registered(self, name: str) -> bool:
        return name in self._handlers

    # ------------------------------------------------------------------
    # Faults

    def crash(self, name: str) -> None:
        """Mark an endpoint as crashed: it neither sends nor receives."""
        self._down.add(name)

    def restart(self, name: str) -> None:
        self._down.discard(name)

    def is_down(self, name: str) -> bool:
        return name in self._down

    def partition(self, a: str, b: str) -> None:
        """Block delivery between ``a`` and ``b`` (both directions)."""
        self._partitions.add(frozenset((a, b)))

    def partition_groups(self, group_a: list[str], group_b: list[str]) -> None:
        for a in group_a:
            for b in group_b:
                self.partition(a, b)

    def heal(self, a: str | None = None, b: str | None = None) -> None:
        """Heal one pair, or all partitions when called without arguments.

        Passing exactly one endpoint is a caller bug (the partition set is
        keyed by pairs, so nothing could match) and raises rather than
        silently doing nothing.
        """
        if (a is None) != (b is None):
            raise ConfigurationError(
                "heal() takes either both endpoints of a partitioned pair "
                "or no arguments (heal everything)"
            )
        if a is None and b is None:
            self._partitions.clear()
        else:
            self._partitions.discard(frozenset((a, b)))

    def set_loss_probability(self, probability: float) -> None:
        self._check_probability(probability)
        self._loss_probability = probability

    @staticmethod
    def _check_probability(probability: float) -> None:
        if not 0.0 <= probability < 1.0:
            raise ConfigurationError("loss probability must be in [0, 1)")

    def set_link_loss(self, src: str, dst: str, probability: float) -> None:
        """Asymmetric loss on the directed link src -> dst only."""
        self._check_probability(probability)
        faults = self._link_faults.setdefault((src, dst), LinkFaults())
        faults.loss_probability = probability
        if faults.is_clear:
            del self._link_faults[(src, dst)]

    def set_link_delay(self, src: str, dst: str, extra_delay: float) -> None:
        """Add a fixed extra delay to the directed link src -> dst."""
        if extra_delay < 0:
            raise ConfigurationError("link delay must be >= 0")
        faults = self._link_faults.setdefault((src, dst), LinkFaults())
        faults.extra_delay = extra_delay
        if faults.is_clear:
            del self._link_faults[(src, dst)]

    def set_slowdown(self, name: str, extra_delay: float) -> None:
        """Gray failure: ``name`` stays alive and correct, but every message
        it sends or receives takes ``extra_delay`` longer (inflated handler
        latency). 0 clears the fault."""
        if extra_delay < 0:
            raise ConfigurationError("slowdown must be >= 0")
        if extra_delay == 0:
            self._slowdowns.pop(name, None)
        else:
            self._slowdowns[name] = extra_delay

    def slowdown_of(self, name: str) -> float:
        return self._slowdowns.get(name, 0.0)

    def set_duplicate_probability(self, probability: float) -> None:
        """With this probability a message is delivered twice, the copy
        with an independently sampled latency."""
        self._check_probability(probability)
        self._duplicate_probability = probability

    def set_delay_spike(self, probability: float, magnitude: float) -> None:
        """With ``probability``, a message suffers an extra uniform(0,
        magnitude) delay — later messages overtake it, i.e. reordering."""
        self._check_probability(probability)
        if magnitude < 0:
            raise ConfigurationError("spike magnitude must be >= 0")
        self._spike_probability = probability
        self._spike_magnitude = magnitude

    def clear_faults(self) -> None:
        """Lift every network fault except crashed endpoints: partitions,
        loss (global and per-link), delays, slowdowns, duplication, spikes."""
        self._partitions.clear()
        self._loss_probability = 0.0
        self._link_faults.clear()
        self._slowdowns.clear()
        self._duplicate_probability = 0.0
        self._spike_probability = 0.0
        self._spike_magnitude = 0.0

    def _delivery_blocked(self, src: str, dst: str) -> bool:
        if src in self._down or dst in self._down:
            return True
        if frozenset((src, dst)) in self._partitions:
            return True
        if self._loss_probability and self.scheduler.rng.random() < self._loss_probability:
            return True
        link = self._link_faults.get((src, dst))
        if (
            link is not None
            and link.loss_probability
            and self.scheduler.rng.random() < link.loss_probability
        ):
            return True
        return False

    # ------------------------------------------------------------------
    # Delivery

    def _sample_latency(self, src: str, dst: str, extra_delay: float) -> float:
        rng = self.scheduler.rng
        latency = self.link.sample(rng) + extra_delay
        latency += self._slowdowns.get(src, 0.0) + self._slowdowns.get(dst, 0.0)
        link = self._link_faults.get((src, dst))
        if link is not None:
            latency += link.extra_delay
        if self._spike_probability and rng.random() < self._spike_probability:
            latency += rng.uniform(0, self._spike_magnitude)
        return latency

    def send(self, src: str, dst: str, payload: Any, extra_delay: float = 0.0) -> None:
        """Fire-and-forget message. Loss and partitions silently drop — the
        sender learns nothing, exactly like UDP/broken TCP in the field.

        Frame coalescing changes nothing here by design: segments of a
        coalesced frame are ordinary payloads taking ordinary latency/loss/
        duplicate draws in the ordinary send order, which is the whole
        argument for why coalescing cannot reorder a run. They are counted
        (``segments_sent``) but never special-cased.
        """
        self.messages_sent += 1
        frame = getattr(payload, "frame", None)
        if frame is not None:
            self.segments_sent += 1
        obs = self.scheduler.obs
        if obs is not None:
            obs.message_sent(src, dst, estimate_wire_size(payload))
        if src in self._down:
            return  # a crashed node sends nothing
        self._schedule_delivery(src, dst, payload, extra_delay)
        if (
            self._duplicate_probability
            and self.scheduler.rng.random() < self._duplicate_probability
        ):
            self.messages_duplicated += 1
            self._schedule_delivery(src, dst, payload, extra_delay)

    def _schedule_delivery(self, src: str, dst: str, payload: Any, extra_delay: float) -> None:
        latency = self._sample_latency(src, dst, extra_delay)
        blocked_now = frozenset((src, dst)) in self._partitions

        def deliver() -> None:
            # Re-check receiver-side faults at delivery time: a node that
            # crashed in flight loses the message; a healed partition does
            # not resurrect messages sent while it was in force.
            obs = self.scheduler.obs
            if blocked_now or self._delivery_blocked(src, dst):
                if obs is not None:
                    obs.message_dropped(src, dst)
                return
            handler = self._handlers.get(dst)
            if handler is None:
                return  # destination no longer exists
            self.messages_delivered += 1
            if obs is not None:
                obs.message_delivered(src, dst)
            handler(src, payload)

        self.scheduler.at(self.scheduler.now + latency, deliver)
