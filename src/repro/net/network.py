"""The simulated message-passing network.

Endpoints register a handler by name; ``send`` schedules delivery through
the scheduler after the link latency. Faults — crashed endpoints, pairwise
partitions, probabilistic loss — are first-class and drive the availability
experiments (Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.sim.scheduler import Scheduler

Handler = Callable[[str, Any], None]  # (source endpoint, payload)


@dataclass
class LinkConfig:
    """Latency model for one class of link: base plus uniform jitter."""

    base_latency: float = 0.00025  # 250 µs one-way, LAN-like
    jitter: float = 0.00005

    def sample(self, rng) -> float:
        if self.jitter <= 0:
            return self.base_latency
        return self.base_latency + rng.uniform(0, self.jitter)


class Network:
    """Registry of endpoints + fault state + delivery scheduling."""

    def __init__(self, scheduler: Scheduler, link: LinkConfig | None = None):
        self.scheduler = scheduler
        self.link = link if link is not None else LinkConfig()
        self._handlers: dict[str, Handler] = {}
        self._down: set[str] = set()
        self._partitions: set[frozenset[str]] = set()
        self._loss_probability = 0.0
        self.messages_sent = 0
        self.messages_delivered = 0

    # ------------------------------------------------------------------
    # Topology

    def register(self, name: str, handler: Handler) -> None:
        if name in self._handlers:
            raise ConfigurationError(f"endpoint {name!r} already registered")
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def is_registered(self, name: str) -> bool:
        return name in self._handlers

    # ------------------------------------------------------------------
    # Faults

    def crash(self, name: str) -> None:
        """Mark an endpoint as crashed: it neither sends nor receives."""
        self._down.add(name)

    def restart(self, name: str) -> None:
        self._down.discard(name)

    def is_down(self, name: str) -> bool:
        return name in self._down

    def partition(self, a: str, b: str) -> None:
        """Block delivery between ``a`` and ``b`` (both directions)."""
        self._partitions.add(frozenset((a, b)))

    def partition_groups(self, group_a: list[str], group_b: list[str]) -> None:
        for a in group_a:
            for b in group_b:
                self.partition(a, b)

    def heal(self, a: str | None = None, b: str | None = None) -> None:
        """Heal one pair, or all partitions when called without arguments."""
        if a is None and b is None:
            self._partitions.clear()
        else:
            self._partitions.discard(frozenset((a, b)))

    def set_loss_probability(self, probability: float) -> None:
        if not 0.0 <= probability < 1.0:
            raise ConfigurationError("loss probability must be in [0, 1)")
        self._loss_probability = probability

    def _delivery_blocked(self, src: str, dst: str) -> bool:
        if src in self._down or dst in self._down:
            return True
        if frozenset((src, dst)) in self._partitions:
            return True
        if self._loss_probability and self.scheduler.rng.random() < self._loss_probability:
            return True
        return False

    # ------------------------------------------------------------------
    # Delivery

    def send(self, src: str, dst: str, payload: Any, extra_delay: float = 0.0) -> None:
        """Fire-and-forget message. Loss and partitions silently drop — the
        sender learns nothing, exactly like UDP/broken TCP in the field."""
        self.messages_sent += 1
        if src in self._down:
            return  # a crashed node sends nothing
        latency = self.link.sample(self.scheduler.rng) + extra_delay
        blocked_now = frozenset((src, dst)) in self._partitions

        def deliver() -> None:
            # Re-check receiver-side faults at delivery time: a node that
            # crashed in flight loses the message; a healed partition does
            # not resurrect messages sent while it was in force.
            if blocked_now or self._delivery_blocked(src, dst):
                return
            handler = self._handlers.get(dst)
            if handler is None:
                return  # destination no longer exists
            self.messages_delivered += 1
            handler(src, payload)

        self.scheduler.at(self.scheduler.now + latency, deliver)
