"""Analytic performance predictions for the simulated service.

The evaluation's throughput numbers come out of the discrete-event
simulation. This module predicts the same operating points *analytically*
(closed-loop queueing formulas), so tests can cross-validate the simulator:
if the measured throughput disagrees with theory, either the simulator or
the cost model is wrong.

The server model is the CCF node: ``c`` worker threads, deterministic
service time ``s`` per request (the cost model's calibrated values), and a
closed loop of ``N`` clients with round-trip network time ``z``
("think time" in queueing terms). Two classic bounds govern throughput:

- capacity bound:  X ≤ c / s
- population bound: X ≤ N / (z + s)

and the *asymptotic bound analysis* estimate is their minimum, which is
tight away from the knee. Near the knee, mean-value analysis (MVA) for a
closed machine-repair-style model gives the exact curve; we implement
exact MVA for the single-queue/multi-server case.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.costmodel import CostModel


@dataclass(frozen=True)
class ClosedLoopPrediction:
    """Predicted operating point for a closed-loop workload."""

    throughput: float  # requests / second
    response_time: float  # seconds at the server (queueing + service)
    utilization: float  # fraction of worker capacity in use
    bound: str  # "capacity" or "population" — which constraint binds


def asymptotic_bounds(
    n_clients: int, service_time: float, round_trip: float, workers: int
) -> ClosedLoopPrediction:
    """Asymptotic bound analysis for the closed loop."""
    capacity = workers / service_time
    population_limited = n_clients / (round_trip + service_time)
    throughput = min(capacity, population_limited)
    bound = "capacity" if capacity <= population_limited else "population"
    response_time = max(service_time, n_clients / capacity - round_trip)
    return ClosedLoopPrediction(
        throughput=throughput,
        response_time=response_time,
        utilization=min(1.0, throughput * service_time / workers),
        bound=bound,
    )


def mva_closed_loop(
    n_clients: int, service_time: float, round_trip: float, workers: int
) -> ClosedLoopPrediction:
    """Exact mean-value analysis for a closed network of one multi-server
    queue (the node) and one delay station (the network round trip).

    Standard MVA recursion with the multi-server queue approximated by the
    widely used Seidmann et al. transformation: a c-server station with
    service time s behaves like a single server with time s/c plus a pure
    delay of s·(c−1)/c. Exact for c=1; accurate within a few percent for
    the worker-pool sizes used here.
    """
    effective_service = service_time / workers
    extra_delay = service_time * (workers - 1) / workers
    delay = round_trip + extra_delay
    queue_length = 0.0
    throughput = 0.0
    response = effective_service
    for population in range(1, n_clients + 1):
        response = effective_service * (1.0 + queue_length)
        throughput = population / (delay + response)
        queue_length = throughput * response
    total_response = response + extra_delay
    return ClosedLoopPrediction(
        throughput=throughput,
        response_time=total_response,
        utilization=min(1.0, throughput * service_time / workers),
        bound="capacity" if throughput * service_time / workers > 0.95 else "population",
    )


def predict_write_throughput(
    model: CostModel, n_clients: int, round_trip: float, num_backups: int = 0
) -> ClosedLoopPrediction:
    """Predicted write throughput for a service under closed-loop load."""
    return mva_closed_loop(
        n_clients=n_clients,
        service_time=model.write_cost(num_backups),
        round_trip=round_trip,
        workers=model.worker_threads,
    )


def predict_read_throughput(
    model: CostModel, n_clients: int, round_trip: float, n_nodes: int = 1
) -> ClosedLoopPrediction:
    """Predicted aggregate read throughput: reads spread over ``n_nodes``
    independent nodes (section 4.3), each its own queueing station."""
    per_node = mva_closed_loop(
        n_clients=max(1, n_clients // n_nodes),
        service_time=model.read_cost(),
        round_trip=round_trip,
        workers=model.worker_threads,
    )
    return ClosedLoopPrediction(
        throughput=per_node.throughput * n_nodes,
        response_time=per_node.response_time,
        utilization=per_node.utilization,
        bound=per_node.bound,
    )


def predict_signature_throughput_factor(
    signature_interval: int, model: CostModel
) -> float:
    """Figure 8 (right) analytically: the fraction of write capacity left
    after amortizing one signing operation per ``signature_interval``
    transactions across the worker pool."""
    write = model.execution.write
    overhead_per_tx = model.signature_cost / signature_interval
    return write / (write + overhead_per_tx)
