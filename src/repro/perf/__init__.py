"""Performance cost models for the simulated testbed."""

from repro.perf.costmodel import CostModel, ExecutionCosts

__all__ = ["CostModel", "ExecutionCosts"]
