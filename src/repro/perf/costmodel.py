"""Execution cost model: how much *simulated time* operations take.

The paper's absolute numbers come from DC16s_v3 VMs running C++ in SGX
enclaves; our substrate is a Python simulator, so we charge operations with
calibrated costs in simulated time instead. The calibration targets are the
paper's own measurements:

- **Table 5** fixes the per-request service times for the four
  (runtime × platform) cells. With the paper's 10 worker threads, a
  throughput of X tx/s implies a per-worker service time of ``10 / X``:
  e.g. C++/SGX writes at 64.8 K tx/s ⇒ ~154 µs. We set the *base* costs a
  few percent below that, because the simulation adds the same overheads
  the real system has on top (replication work per backup, periodic
  signature transactions).
- **Figure 8** fixes the signature cost: response time rises from
  ~1.2–1.3 ms to ~2.3 ms when a request triggers a signature transaction,
  so signing the Merkle root costs ~1 ms of enclave time.
- **Figure 7 (left)** fixes the replication overhead: write throughput
  declines slightly as nodes are added, consistent with a small per-backup
  cost charged to the primary for each replicated entry.

Wall-clock cost of the Python crypto is *not* what benchmarks measure —
all reported figures are simulated-time throughput/latency, so results are
machine-independent and reproducible from the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ExecutionCosts:
    """Per-request service times (seconds) for one runtime×platform cell."""

    write: float
    read: float


# Calibrated from Table 5 (see module docstring). "native" is the analog of
# the paper's C++ application logic; "js" is the interpreted runtime.
_EXECUTION_COSTS: dict[tuple[str, str], ExecutionCosts] = {
    ("native", "sgx"): ExecutionCosts(write=148e-6, read=11.0e-6),
    ("native", "virtual"): ExecutionCosts(write=82e-6, read=7.9e-6),
    ("native", "snp"): ExecutionCosts(write=86e-6, read=8.2e-6),
    ("js", "sgx"): ExecutionCosts(write=625e-6, read=108e-6),
    ("js", "virtual"): ExecutionCosts(write=290e-6, read=44e-6),
    ("js", "snp"): ExecutionCosts(write=304e-6, read=46e-6),
}


@dataclass(frozen=True)
class CostModel:
    """All simulated-time costs for one node configuration."""

    runtime: str = "native"  # "native" (C++ analog) or "js"
    platform: str = "sgx"  # "sgx", "virtual", or "snp"
    worker_threads: int = 10  # the paper's TEE-side thread pool size

    # Signing the Merkle root inside the enclave (Figure 8's ~1 ms bump).
    signature_cost: float = 1.0e-3
    # Verifying a signature (receipts, attestation checks at join).
    verify_cost: float = 1.2e-3
    # Primary-side cost per entry per backup for building/sending
    # append_entries (Figure 7 left's decline with cluster size).
    replication_cost_per_backup: float = 3.0e-6
    # Backup-side cost to validate and append one replicated entry.
    backup_append_cost: float = 8.0e-6
    # Forwarding a user request from a backup to the primary (section 4.3).
    forwarding_cost: float = 5.0e-6
    # Snapshot serialization, per KV entry. Delta snapshots charge this only
    # for entries actually re-serialized (dirty maps); reused chunks are free.
    snapshot_cost_per_entry: float = 0.5e-6
    # Shipping sealed state to a joiner, per byte (manifest + chunk
    # responses; the legacy monolithic blob pays it too). Makes join time
    # scale with transferred state in simulated time, so dedup savings are
    # visible to the clock and not just to counters.
    state_transfer_cost_per_byte: float = 2.0e-9
    # Fraction of the per-write service time that is fixed per-request
    # pipeline overhead (Merkle append bookkeeping, ledger framing,
    # replication hand-off) rather than application execution. Batched
    # execution pays this once per batch instead of once per request;
    # the remaining (1 - fraction) is charged per request unchanged, so a
    # batch of one costs exactly the serial write cost.
    batch_overhead_fraction: float = 0.6
    # AEAD sealing split for coalesced wire frames: a fixed per-frame cost
    # (key schedule, nonce derivation, tag finalization, counter update)
    # plus a per-message cost (the payload bytes actually encrypted). These
    # feed *accounting only* — frame seal costs are recorded through the obs
    # hooks, never scheduled as simulated delay, so enabling coalescing
    # cannot perturb trace digests (DESIGN.md: "coalescing cannot reorder").
    seal_cost_per_frame: float = 2.5e-6
    seal_cost_per_message: float = 0.5e-6

    def __post_init__(self) -> None:
        if (self.runtime, self.platform) not in _EXECUTION_COSTS:
            raise ConfigurationError(
                f"no calibration for runtime={self.runtime!r} platform={self.platform!r}"
            )
        if self.worker_threads < 1:
            raise ConfigurationError("need at least one worker thread")
        if not 0.0 <= self.batch_overhead_fraction < 1.0:
            raise ConfigurationError("batch_overhead_fraction must be in [0, 1)")

    @property
    def execution(self) -> ExecutionCosts:
        return _EXECUTION_COSTS[(self.runtime, self.platform)]

    def write_cost(self, num_backups: int = 0) -> float:
        """Service time for one write request on the primary, including its
        share of replication work toward ``num_backups`` backups."""
        return self.execution.write + num_backups * self.replication_cost_per_backup

    def read_cost(self) -> float:
        """Service time for one read request on any node."""
        return self.execution.read

    def batched_write_cost(self, batch_size: int, num_backups: int = 0) -> float:
        """Service time for one pipelined batch of ``batch_size`` writes.

        The fixed per-request overhead share (``batch_overhead_fraction`` of
        the write service time) and the per-backup replication hand-off are
        paid once per batch; the application-execution share is paid per
        request. ``batched_write_cost(1, n) == write_cost(n)`` exactly, so
        enabling batching never changes the cost of an unbatched request.
        """
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        write = self.execution.write
        shared = write * self.batch_overhead_fraction
        shared += num_backups * self.replication_cost_per_backup
        return shared + batch_size * write * (1.0 - self.batch_overhead_fraction)

    def snapshot_production_cost(self, serialized_entries: int) -> float:
        """Primary-side cost of producing one snapshot: serializing (and
        sealing) ``serialized_entries`` KV entries. Delta snapshots pass only
        the dirty-map entry count — O(change), not O(state)."""
        return serialized_entries * self.snapshot_cost_per_entry

    def state_transfer_cost(self, num_bytes: int) -> float:
        """Wire-time surcharge for shipping ``num_bytes`` of state."""
        return num_bytes * self.state_transfer_cost_per_byte

    def sealing_cost(self, n_messages: int, n_frames: int | None = None) -> float:
        """Accounting cost of sealing ``n_messages`` payloads in
        ``n_frames`` frames (defaults to one frame per message — the
        uncoalesced shape). Coalescing's win is the per-frame term
        amortizing: ``sealing_cost(k, 1) < sealing_cost(k, k)`` for k > 1.
        """
        if n_frames is None:
            n_frames = n_messages
        if n_messages < 0 or n_frames < 0:
            raise ConfigurationError("seal counts must be >= 0")
        return (
            n_frames * self.seal_cost_per_frame
            + n_messages * self.seal_cost_per_message
        )
