"""Exception hierarchy for the CCF reproduction.

Every error raised by the framework derives from :class:`CCFError`, so
applications embedding the framework can catch a single base class. The
subclasses mirror the distinct failure domains of the paper: cryptographic
verification, ledger integrity, consensus, governance, and user-facing
request handling.
"""

from __future__ import annotations


class CCFError(Exception):
    """Base class for all framework errors."""


class CryptoError(CCFError):
    """A cryptographic operation failed (bad key, malformed input)."""


class VerificationError(CryptoError):
    """A signature, MAC, proof, or attestation failed verification."""


class IntegrityError(CCFError):
    """Ledger or storage content failed an integrity check.

    Raised when the untrusted host returns data whose hashes, signatures,
    or Merkle proofs do not match — e.g. a truncated or tampered ledger.
    """


class LedgerError(CCFError):
    """Structural problem with the ledger (bad framing, missing entries)."""


class KVError(CCFError):
    """Key-value store misuse (unknown map, type error, conflict)."""


class TransactionConflictError(KVError):
    """Optimistic transaction could not commit due to a concurrent write."""


class ConsensusError(CCFError):
    """Protocol violation or invalid state transition in consensus."""


class NotPrimaryError(ConsensusError):
    """A primary-only operation was attempted on a node that is not (or is
    no longer) the primary — an environmental race, not a bug."""


class ConfigurationError(CCFError):
    """Invalid node or service configuration."""


class GovernanceError(CCFError):
    """A governance operation (proposal, ballot, action) was rejected."""


class AuthenticationError(CCFError):
    """Caller failed the endpoint's declared authentication policy."""


class AuthorizationError(CCFError):
    """Caller authenticated but is not permitted to perform the action."""


class AttestationError(VerificationError):
    """A TEE attestation quote failed verification or policy checks."""


class RecoveryError(CCFError):
    """Disaster recovery could not proceed (bad shares, wrong state)."""


class ServiceIdentityChangedError(CCFError):
    """The service presents a different identity than the one the client
    pinned. Expected after a disaster recovery (section 5.2): the fresh
    identity is precisely what makes a best-effort recovery — and any
    rollback it implies — *detectable* rather than silent."""


class LostWriteError(CCFError):
    """A transaction this client saw acknowledged (or holds a receipt for)
    is no longer committed on the service it reconnected to — a detected
    rollback of the client's own write. ``txid`` identifies the lost
    transaction so auditors can compare reported losses against ground
    truth without parsing the message."""

    def __init__(self, message: str, txid: str | None = None):
        super().__init__(message)
        self.txid = txid


class ServiceUnavailableError(CCFError):
    """The service cannot currently process the request (e.g. no primary)."""


class ReadBehindError(CCFError):
    """A read-offload request asked for freshness (``after_txid``) that this
    node's committed snapshot does not yet include. Retryable: the client
    can retry here after replication catches up, or read elsewhere. Never
    raised in place of serving — it exists so an offloaded read is either
    provably fresh or *typed* stale, not silently stale. ``after_txid``
    carries the requested floor for diagnostics."""

    def __init__(self, message: str, after_txid: str | None = None):
        super().__init__(message)
        self.after_txid = after_txid


class ReadRolledBackError(CCFError):
    """The ``after_txid`` freshness floor of a read-offload request refers
    to a transaction that can no longer commit (superseded after an
    election). Not retryable as-is: the client's speculative write was
    rolled back, and any state derived from it must be reconciled."""

    def __init__(self, message: str, after_txid: str | None = None):
        super().__init__(message)
        self.after_txid = after_txid


class JSError(CCFError):
    """An error raised by (or inside) the embedded mini-JS interpreter."""


class JSReferenceError(JSError):
    """An unresolved identifier in the mini-JS interpreter.

    Distinct from :class:`JSError` so ``typeof`` can treat *only* unresolved
    names as ``"undefined"`` without swallowing real interpreter failures
    (budget exhaustion, type errors) raised while evaluating its operand.
    """
