"""Disaster-recovery orchestrator: full-service-loss schedules (section 5.2).

The chaos engine (:mod:`repro.sim.chaos`) kills at most a minority and
heals; this module drives the catastrophe the paper's availability story
actually culminates in. One seeded schedule:

1. **Settled phase** — a service commits client writes; the client pins the
   service identity and fetches offline-verifiable receipts for some of its
   acknowledged transactions.
2. **Kill phase** — all (or a supermajority of) nodes die at seeded
   instants, racing further client writes. Some victims' disk controllers
   die *before* the host does (:meth:`HostStorage.arm_crash_point`), so a
   chunk write can land without its fsync barrier; every death then
   resolves the victim's un-synced writes with seeded power-loss fates —
   dropped, torn mid-blob, or applied (:meth:`HostStorage.power_loss`).
3. **Salvage phase** — the operator pulls a seeded subset of the disks;
   a seeded subset of *those* is corrupted by the adversary.
4. **Recovery phase** — the real §5.2 protocol: public replay of the best
   salvaged disk (typed salvage warnings, new service identity), member
   share submission with seeded member faults (offline member, duplicate
   share, wrong share), vote-to-open binding both identities, node rejoin
   through the attested join path, client reconnect.
5. **Verdict** — the end-to-end invariants of
   :mod:`repro.verification.disaster`: committed-receipt durability,
   rollback detectability (typed errors, never silent), bounded-time
   recovery liveness.

Every decision draws from the simulation's seeded RNG: a schedule is fully
determined by ``(seed, DisasterSpec)`` and replays byte-identically —
``python -m repro.sim.disaster --schedules 1 --seed N`` reproduces run N,
and ``--replay-check`` proves it by running each schedule twice under the
trace recorder and comparing digests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import (
    CCFError,
    LostWriteError,
    RecoveryError,
    ServiceIdentityChangedError,
)
from repro.ledger.entry import TxID
from repro.node import maps
from repro.node.config import NodeConfig
from repro.service.operator import Operator, SalvagedDisk
from repro.verification import liveness
from repro.verification.disaster import DisasterEvidence, check_disaster_invariants


@dataclass(frozen=True)
class DisasterSpec:
    """Declarative shape of a disaster schedule; with a seed it is the
    complete, replayable description of a run."""

    n_nodes: int = 3
    n_members: int = 3
    recovery_threshold: int = 2
    signature_interval: int = 5

    settled_writes: int = 8  # fully committed before the disaster
    receipt_every: int = 2  # fetch a receipt for every k-th settled write
    racing_writes: int = 5  # writes racing the kill sequence

    p_kill_all: float = 0.6  # else a minority lingers until salvage
    p_mid_chunk_crash: float = 0.5  # arm a disk crash point on this victim
    max_crash_countdown: int = 4
    kill_spread: float = 0.08  # max seeded stagger between kills

    p_salvage: float = 0.7  # per disk (at least one is always salvaged)
    p_corrupt_salvage: float = 0.3  # per salvaged disk

    p_member_offline: float = 0.3
    p_wrong_share: float = 0.4
    p_duplicate_share: float = 0.4

    rejoin_nodes: int = 1
    post_recovery_writes: int = 2
    recovery_bound: float = 5.0  # simulated seconds, threshold -> open

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class DisasterReport:
    """Outcome of one seeded schedule — everything needed to replay it."""

    seed: int
    spec: dict
    fault_log: list[tuple[float, str]] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    member_faults: set[str] = field(default_factory=set)

    acked_writes: int = 0
    receipts_held: int = 0
    salvaged_disks: int = 0
    corrupted_disks: int = 0
    intact_disks: int = 0
    verified_seqno: int = 0
    lost_writes_detected: int = 0
    recovery_failed: str | None = None  # typed reason when no disk replays

    @property
    def ok(self) -> bool:
        return not self.violations

    def fingerprint(self) -> str:
        """Canonical byte-for-byte description of the run: same
        (seed, spec) must yield the same fingerprint."""
        lines = [f"seed={self.seed}"]
        lines += [f"{t:.9f} {event}" for t, event in self.fault_log]
        lines += [f"VIOLATION {v}" for v in self.violations]
        lines.append(
            f"acked={self.acked_writes} receipts={self.receipts_held} "
            f"salvaged={self.salvaged_disks} corrupted={self.corrupted_disks} "
            f"verified={self.verified_seqno} lost={self.lost_writes_detected} "
            f"faults={','.join(sorted(self.member_faults))} "
            f"failed={self.recovery_failed or '-'}"
        )
        return "\n".join(lines)


@dataclass
class DisasterBatchReport:
    """Aggregate over a batch of schedules."""

    schedules: list[DisasterReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(schedule.ok for schedule in self.schedules)

    @property
    def failing_seeds(self) -> list[int]:
        return [s.seed for s in self.schedules if not s.ok]

    def summary(self) -> str:
        faults: set[str] = set()
        for schedule in self.schedules:
            faults |= schedule.member_faults
        recovered = sum(1 for s in self.schedules if s.recovery_failed is None)
        lines = [
            f"disaster: {len(self.schedules)} schedules, "
            f"{recovered} recovered, "
            f"{sum(s.acked_writes for s in self.schedules)} acked writes, "
            f"{sum(s.receipts_held for s in self.schedules)} receipts held",
            f"disks: {sum(s.salvaged_disks for s in self.schedules)} salvaged, "
            f"{sum(s.corrupted_disks for s in self.schedules)} corrupted; "
            f"lost writes detected: "
            f"{sum(s.lost_writes_detected for s in self.schedules)}",
            f"member faults exercised: {', '.join(sorted(faults)) or 'none'}",
        ]
        for schedule in self.schedules:
            if not schedule.ok:
                lines.append(
                    f"FAIL seed={schedule.seed}: " + "; ".join(schedule.violations)
                )
        if self.ok:
            lines.append(
                "all schedules passed receipt-durability, "
                "rollback-detectability, and recovery-liveness"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# §5.2 protocol helpers — shared by the orchestrator, the walkthrough
# example (examples/disaster_recovery.py), and its test.


def fetch_member_share(member, node_id: str) -> bytes:
    """A member fetches and decrypts their recovery share."""
    response = member.client.call(
        node_id, "/gov/encrypted_recovery_share", {},
        credentials={"certificate": member.identity.certificate.to_dict()},
    )
    if not response.ok:
        raise RecoveryError(f"share fetch failed: {response.error}")
    return member.encryption.decrypt(bytes.fromhex(response.body["encrypted_share"]))


def submit_member_share(member, node_id: str, share: bytes):
    """Submit a decrypted share over the member's signed session."""
    return member.client.call(
        node_id, "/gov/submit_recovery_share", {"share": share.hex()}, signed=True
    )


def submit_recovery_shares(service, node, members=None) -> bool:
    """Happy path: members fetch, decrypt, and submit shares until the
    threshold reconstructs the ledger secret. Returns True on recovery."""
    for member in members if members is not None else service.members:
        share = fetch_member_share(member, node.node_id)
        result = submit_member_share(member, node.node_id, share)
        if not result.ok:
            raise RecoveryError(f"share submission failed: {result.error}")
        if result.body.get("recovered"):
            return True
    return False


def vote_to_open(service, node, summary, timeout: float = 5.0) -> str:
    """Members propose and vote ``transition_service_to_open``, naming the
    previous and next service identities to bind the proposal to exactly
    this recovery (section 5.2). Returns the final proposal state."""
    response = service.members[0].client.call(
        node.node_id, "/gov/propose",
        {"actions": [{"name": "transition_service_to_open", "args": {
            "previous_service_identity":
                summary["previous_service_identity"]["public_key"],
            "next_service_identity":
                summary["new_service_identity"]["public_key"],
        }}]},
        signed=True, timeout=timeout,
    )
    if not response.ok:
        raise RecoveryError(f"opening proposal failed: {response.error}")
    proposal_id = response.body["proposal_id"]
    state = response.body["state"]
    for member in service.members:
        if state == "Accepted":
            break
        vote = member.client.call(
            node.node_id, "/gov/vote",
            {"proposal_id": proposal_id, "ballot": {"approve": True}},
            signed=True, timeout=timeout,
        )
        if vote.ok:
            state = vote.body["state"]
    return state


# ----------------------------------------------------------------------


class DisasterEngine:
    """Runs seeded full-service-loss schedules and checks the §5.2
    invariants end to end."""

    def __init__(self, spec: DisasterSpec | None = None):
        self.spec = spec if spec is not None else DisasterSpec()

    # -- schedule phases ------------------------------------------------

    def _build_service(self, seed: int, tracer=None, obs=None):
        from repro.net.network import LinkConfig
        from repro.service.service import CCFService, ServiceSetup

        service = CCFService(ServiceSetup(
            n_nodes=self.spec.n_nodes,
            n_members=self.spec.n_members,
            recovery_threshold=self.spec.recovery_threshold,
            node_config=NodeConfig(signature_interval=self.spec.signature_interval),
            link=LinkConfig(base_latency=0.004, jitter=0.0008),
            seed=seed,
        ))
        if tracer is not None:
            service.scheduler.attach_tracer(tracer)
        if obs is not None:
            obs.attach_to_service(service)
        service.bootstrap()
        return service

    def _settled_phase(self, service, tracker, report: DisasterReport) -> dict[str, str]:
        """Writes that fully commit, then receipts for a subset of them.
        Returns txid -> expected message for later read-back checks."""
        from repro.service.client import ContinuityTracker  # noqa: F401 (doc link)

        spec = self.spec
        user = service.any_user_client()
        primary = service.primary_node()
        tracker.pin_identity(primary.node_id)
        expected: dict[str, str] = {}
        for i in range(spec.settled_writes):
            msg = f"dr-{report.seed}-{i}"
            response = user.call(
                primary.node_id, "/app/write_message", {"id": i, "msg": msg}
            )
            if response.ok and response.txid:
                tracker.record_ack(
                    response.txid, "/app/write_message", {"id": i, "msg": msg}
                )
                expected[response.txid] = msg
        service.run(0.5)  # commit, sign, persist, fsync everywhere
        for index, txid in enumerate(sorted(tracker.acked)):
            if index % spec.receipt_every == 0:
                if tracker.fetch_receipt(primary.node_id, txid) is not None:
                    report.receipts_held += 1
        return expected

    def _kill_phase(self, service, tracker, report: DisasterReport) -> None:
        """Kill all (or a supermajority of) nodes at seeded instants,
        racing further client writes; every death resolves that disk's
        un-synced writes with seeded power-loss fates."""
        spec = self.spec
        rng = service.scheduler.rng
        user = service.any_user_client()
        now = lambda: service.scheduler.now  # noqa: E731 - tiny local helper

        node_ids = sorted(service.nodes)
        rng.shuffle(node_ids)
        kill_all = rng.random() < spec.p_kill_all
        minority = 0 if kill_all else (spec.n_nodes - 1) // 2
        victims = node_ids[: len(node_ids) - minority]
        report.fault_log.append(
            (now(), f"kill {'all' if kill_all else 'supermajority'}: {victims}")
        )

        race = iter(range(spec.racing_writes))
        for victim in victims:
            node = service.nodes[victim]
            if rng.random() < spec.p_mid_chunk_crash:
                countdown = rng.randrange(0, spec.max_crash_countdown + 1)
                node.storage.arm_crash_point(countdown)
                report.fault_log.append(
                    (now(), f"arm crash point on {victim} (countdown {countdown})")
                )
            service.run(rng.uniform(0.005, spec.kill_spread))
            # A client write racing the kill sequence: acked-but-doomed
            # writes are exactly what rollback detectability is about.
            i = next(race, None)
            if i is not None:
                target = service.primary_node()
                live = [n for n in service.nodes.values() if not n.stopped]
                if target is None and live:
                    target = live[0]
                if target is not None:
                    msg = f"dr-race-{report.seed}-{i}"
                    response = user.call(
                        target.node_id, "/app/write_message",
                        {"id": 100 + i, "msg": msg}, timeout=0.15,
                    )
                    if response.ok and response.txid:
                        tracker.record_ack(
                            response.txid, "/app/write_message",
                            {"id": 100 + i, "msg": msg},
                        )
            node.crash()
            events = node.storage.power_loss(rng)
            report.fault_log.append((now(), f"power loss on {victim}"))
            for event in events:
                report.fault_log.append((now(), f"  {victim}: {event}"))

        # The operator decommissions any lingering minority before starting
        # recovery: CCF's recovery replaces the service wholesale.
        for node_id in node_ids[len(victims):]:
            node = service.nodes[node_id]
            service.run(rng.uniform(0.005, spec.kill_spread))
            node.crash()
            node.storage.power_loss(rng)
            report.fault_log.append((now(), f"decommission {node_id}"))
        report.acked_writes = len(tracker.acked)

    def _salvage_phase(
        self, service, report: DisasterReport
    ) -> list[SalvagedDisk]:
        """The operator pulls a seeded subset of the dead disks; the
        adversary corrupts a seeded subset of those."""
        spec = self.spec
        rng = service.scheduler.rng
        operator = Operator(service)
        now = service.scheduler.now
        node_ids = sorted(service.nodes)
        chosen = [n for n in node_ids if rng.random() < spec.p_salvage]
        if not chosen:
            chosen = [node_ids[rng.randrange(len(node_ids))]]
        disks: list[SalvagedDisk] = []
        for node_id in chosen:
            disk = operator.salvage_disk(node_id, rng)
            if rng.random() < spec.p_corrupt_salvage:
                description = self._corrupt_disk(disk, rng)
                if description is not None:
                    disk.corrupted = True
                    report.corrupted_disks += 1
                    report.fault_log.append((now, description))
            disks.append(disk)
            report.fault_log.append(
                (now,
                 f"salvage disk of {node_id} "
                 f"(synced through {disk.synced_ledger_seqno}"
                 f"{', corrupted' if disk.corrupted else ''})")
            )
        report.salvaged_disks = len(disks)
        report.intact_disks = sum(1 for d in disks if not d.corrupted)
        return disks

    def _corrupt_disk(self, disk: SalvagedDisk, rng) -> str | None:
        """Adversarial tampering with a salvaged disk: flip a byte in a
        chunk, tear a chunk mid-blob, or roll back trailing chunks."""
        names = disk.storage.list_files("ledger_")
        if not names:
            return None
        choice = rng.random()
        if choice < 0.4:
            name = names[rng.randrange(len(names))]
            offset = rng.randrange(max(1, len(disk.storage.read(name))))
            disk.storage.tamper_flip_byte(name, offset)
            return f"corrupt disk of {disk.node_id}: flip byte {offset} of {name}"
        if choice < 0.7:
            name = names[rng.randrange(len(names))]
            size = len(disk.storage.read(name))
            keep = rng.randrange(size) if size else 0
            disk.storage.tamper_truncate_file(name, keep)
            return f"corrupt disk of {disk.node_id}: tear {name} at byte {keep}"
        keep = rng.randrange(max(1, len(names)))
        disk.storage.tamper_truncate_ledger(keep_chunks=keep)
        return f"corrupt disk of {disk.node_id}: roll back to {keep} chunks"

    def _pick_recovery_disk(
        self, disks: list[SalvagedDisk], report: DisasterReport, now: float
    ):
        """Dry-run replay on every salvaged disk and pick the one with the
        deepest verifiable prefix — what a careful operator would do."""
        from repro.recovery.recovery import replay_public_ledger

        best = None
        best_seqno = -1
        for disk in disks:
            try:
                result = replay_public_ledger(disk.storage.clone())
            except RecoveryError as exc:
                report.fault_log.append(
                    (now, f"disk of {disk.node_id} unrecoverable: {exc}")
                )
                continue
            report.fault_log.append(
                (now,
                 f"disk of {disk.node_id} replays through "
                 f"{result.verified_seqno} ({len(result.warnings)} salvage "
                 f"warnings)")
            )
            if result.verified_seqno > best_seqno:
                best, best_seqno = disk, result.verified_seqno
        return best

    def _share_phase(
        self, service, node, report: DisasterReport, evidence: DisasterEvidence
    ) -> None:
        """Member share submission under seeded member faults: an offline
        member, a wrong share (typed rejection, no poisoning), a duplicate
        share (no-op). Sets ``shares_reached_threshold``."""
        spec = self.spec
        rng = service.scheduler.rng
        now = lambda: service.scheduler.now  # noqa: E731 - tiny local helper
        members = list(service.members)
        rng.shuffle(members)
        if (
            rng.random() < spec.p_member_offline
            and len(members) - 1 >= spec.recovery_threshold
        ):
            offline = members.pop()
            report.member_faults.add("offline-member")
            report.fault_log.append(
                (now(), f"member {offline.subject} offline during recovery")
            )
        wrong_planned = rng.random() < spec.p_wrong_share
        duplicate_planned = rng.random() < spec.p_duplicate_share

        for index, member in enumerate(members):
            share = fetch_member_share(member, node.node_id)
            if index == 0 and wrong_planned:
                bogus = bytearray(share)
                bogus[len(bogus) // 2] ^= 0xFF
                result = submit_member_share(member, node.node_id, bytes(bogus))
                report.member_faults.add("wrong-share")
                report.fault_log.append(
                    (now(),
                     f"member {member.subject} submits a wrong share -> "
                     f"{result.status}")
                )
                if result.status != 400 or "share commitment" not in (
                    result.error or ""
                ):
                    report.violations.append(
                        "wrong share was not rejected with a typed "
                        f"commitment error (got {result.status}: {result.error})"
                    )
            result = submit_member_share(member, node.node_id, share)
            if not result.ok:
                report.violations.append(
                    f"share submission by {member.subject} failed: {result.error}"
                )
                continue
            report.fault_log.append(
                (now(),
                 f"member {member.subject} submitted their share "
                 f"{result.body['submitted']}/{result.body['required']}")
            )
            if (
                index == 0
                and duplicate_planned
                and not result.body.get("recovered")
            ):
                again = submit_member_share(member, node.node_id, share)
                report.member_faults.add("duplicate-share")
                report.fault_log.append(
                    (now(), f"member {member.subject} re-submits (retry)")
                )
                if not again.ok or not again.body.get("duplicate"):
                    report.violations.append(
                        "duplicate share resubmission was not a no-op"
                    )
            if result.body.get("recovered"):
                evidence.shares_reached_threshold = True
                return

    def _rejoin_phase(self, service, node, report: DisasterReport) -> None:
        """Fresh nodes join the recovered service through the real attested
        join path, then governance trusts them (sections 4.4/5.2)."""
        for _ in range(self.spec.rejoin_nodes):
            successor = service._make_node(service.new_node_id())
            successor.request_join(node.node_id, node.service_certificate)
            try:
                service.run_until(
                    lambda: successor.consensus is not None,
                    timeout=self.spec.recovery_bound,
                )
                service.run_governance([
                    {"name": "transition_node_to_trusted",
                     "args": {"node_id": successor.node_id}},
                ], timeout=self.spec.recovery_bound)
            except CCFError as exc:
                report.violations.append(
                    f"recovery-liveness: rejoin of {successor.node_id} stuck: {exc}"
                )
                return
            report.fault_log.append(
                (service.scheduler.now, f"{successor.node_id} rejoined and trusted")
            )

    # -- the schedule ---------------------------------------------------

    def run_schedule(self, seed: int, tracer=None, obs=None) -> DisasterReport:
        """One fully seeded full-service-loss schedule. Deterministic:
        equal (seed, spec) gives equal reports and equal trace digests."""
        from repro.service.client import ContinuityTracker

        spec = self.spec
        report = DisasterReport(seed=seed, spec=spec.to_dict())
        evidence = DisasterEvidence()
        service = self._build_service(seed, tracer=tracer, obs=obs)
        scheduler = service.scheduler
        user = service.any_user_client()
        tracker = ContinuityTracker(user)

        expected = self._settled_phase(service, tracker, report)
        evidence.receipted_txids = tracker.receipted_txids
        self._kill_phase(service, tracker, report)
        evidence.acked_txids = sorted(tracker.acked)

        disks = self._salvage_phase(service, report)
        evidence.intact_salvaged = report.intact_disks > 0
        evidence.durable_floor = max(
            (d.synced_ledger_seqno for d in disks if not d.corrupted), default=0
        )

        best = self._pick_recovery_disk(disks, report, scheduler.now)
        if best is None:
            report.recovery_failed = "no salvaged disk yielded a verifiable ledger"
            report.fault_log.append((scheduler.now, report.recovery_failed))
            report.violations.extend(check_disaster_invariants(evidence))
            return report

        recovery_node = service._make_node(service.new_node_id())
        try:
            summary = recovery_node.start_recovered_service(
                best.storage, f"dr-recovered-{seed}"
            )
        except RecoveryError as exc:
            report.recovery_failed = f"recovery start failed: {exc}"
            report.fault_log.append((scheduler.now, report.recovery_failed))
            report.violations.extend(check_disaster_invariants(evidence))
            return report
        service.run(0.2)
        evidence.recovered = True
        report.verified_seqno = summary["verified_seqno"]
        evidence.verified_seqno = summary["verified_seqno"]
        report.fault_log.append(
            (scheduler.now,
             f"recovered service from disk of {best.node_id}: verified "
             f"through {summary['verified_seqno']}, "
             f"{len(summary['salvage_warnings'])} salvage warnings")
        )

        self._share_phase(service, recovery_node, report, evidence)
        threshold_time = scheduler.now
        if evidence.shares_reached_threshold:
            try:
                state = vote_to_open(
                    service, recovery_node, summary, timeout=spec.recovery_bound
                )
            except RecoveryError as exc:
                report.violations.append(f"recovery-liveness: {exc}")
                state = "failed"
            if state == "Accepted":
                opened = lambda: (  # noqa: E731 - tiny local predicate
                    recovery_node.store.get(maps.SERVICE_INFO, "service") or {}
                ).get("status") == maps.SERVICE_OPEN
                violation = liveness.await_liveness(
                    scheduler, opened,
                    spec.recovery_bound - (scheduler.now - threshold_time),
                    "recovered service open",
                )
                evidence.service_opened = opened()
                evidence.open_within_bound = violation is None
                if evidence.service_opened:
                    report.fault_log.append(
                        (scheduler.now, "recovered service is open")
                    )

        if evidence.service_opened:
            self._rejoin_phase(service, recovery_node, report)
            # Post-recovery writes must commit on the recovered service.
            for i in range(spec.post_recovery_writes):
                response = user.call(
                    recovery_node.node_id, "/app/write_message",
                    {"id": 200 + i, "msg": f"post-{seed}-{i}"},
                )
                if not response.ok:
                    report.violations.append(
                        f"recovery-liveness: post-recovery write {i} failed: "
                        f"{response.error}"
                    )
            service.run(0.3)

            # Ground truth from the recovered ledger itself (the client
            # audit below must independently agree with this).
            commit = recovery_node.consensus.commit_seqno
            for txid in evidence.acked_txids:
                parsed = TxID.parse(txid)
                if recovery_node.ledger.has_txid(parsed) and parsed.seqno <= commit:
                    evidence.committed_txids.add(txid)
            for txid, msg in sorted(expected.items()):
                if txid not in tracker.receipted_txids:
                    continue
                if txid not in evidence.committed_txids:
                    continue
                body = tracker.acked[txid].body
                response = user.call(
                    recovery_node.node_id, "/app/read_message", {"id": body["id"]}
                )
                if not response.ok or response.body.get("msg") != msg:
                    evidence.receipted_reads_ok = False

            # Client reconnect: the continuity audit must surface the new
            # identity and every dropped write as *typed* findings.
            findings = tracker.audit(recovery_node.node_id)
            evidence.identity_change_reported = any(
                isinstance(f, ServiceIdentityChangedError) for f in findings
            )
            evidence.reported_lost_txids = {
                f.txid for f in findings
                if isinstance(f, LostWriteError) and f.txid is not None
            }
            report.lost_writes_detected = len(evidence.reported_lost_txids)
            for finding in findings:
                report.fault_log.append(
                    (scheduler.now,
                     f"client finding: {type(finding).__name__}: {finding}")
                )

        report.violations.extend(check_disaster_invariants(evidence))
        return report

    def run(self, schedules: int = 10, base_seed: int = 0) -> DisasterBatchReport:
        report = DisasterBatchReport()
        for index in range(schedules):
            report.schedules.append(self.run_schedule(base_seed * 10_007 + index))
        return report


# ----------------------------------------------------------------------
# Determinism gate: same (seed, spec) -> byte-identical trace digests.


def check_disaster_determinism(spec: DisasterSpec, seed: int):
    """Run one schedule twice under the trace recorder; returns
    (ok, description). On divergence the description localizes the first
    differing event via the sanitizer's checkpoint search."""
    from repro.sim.trace import TraceRecorder, first_divergence

    trace_a, trace_b = TraceRecorder(), TraceRecorder()
    report_a = DisasterEngine(spec).run_schedule(seed, tracer=trace_a)
    report_b = DisasterEngine(spec).run_schedule(seed, tracer=trace_b)
    divergence = first_divergence(trace_a, trace_b)
    if divergence is not None:
        return False, f"seed {seed}: {divergence.describe()}"
    if report_a.fingerprint() != report_b.fingerprint():
        return False, (
            f"seed {seed}: trace digests match but report fingerprints "
            "differ — report fields escape the traced state"
        )
    return True, (
        f"seed {seed}: deterministic over {trace_a.event_count} events, "
        f"{trace_a.rng_draws} rng draws (digest {trace_a.digest[:16]}…)"
    )


# ----------------------------------------------------------------------
# CLI (used by CI's dr-smoke job)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.disaster",
        description="Run seeded full-service-loss disaster schedules.",
    )
    parser.add_argument("--schedules", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument(
        "--replay-check", type=int, default=0, metavar="N",
        help="also replay the first N schedules twice under the trace "
        "recorder and require byte-identical digests",
    )
    args = parser.parse_args(argv)

    spec = DisasterSpec()
    if args.nodes is not None:
        spec = dataclasses.replace(spec, n_nodes=args.nodes)

    engine = DisasterEngine(spec)
    report = engine.run(schedules=args.schedules, base_seed=args.seed)
    print(report.summary())
    exit_code = 0
    if not report.ok:
        for seed in report.failing_seeds:
            print(
                f"REPRODUCE with: python -m repro.sim.disaster --schedules 1 "
                f"--seed {seed}"
                + (f" --nodes {spec.n_nodes}" if args.nodes is not None else "")
            )
        exit_code = 1

    for index in range(args.replay_check):
        ok, description = check_disaster_determinism(
            spec, args.seed * 10_007 + index
        )
        print(("replay-check ok: " if ok else "replay-check FAIL: ") + description)
        if not ok:
            exit_code = 1
    return exit_code


if __name__ == "__main__":
    import sys

    sys.exit(main())
