"""Execution tracing for the replay-divergence sanitizer.

The simulation's determinism contract — equal ``(seed, spec)`` gives equal
runs — is what makes every chaos violation replayable. This module turns
that contract into something *checkable at runtime*: a
:class:`TraceRecorder` folds every dispatched scheduler event and every RNG
draw into a running SHA-256 digest, with a checkpoint recorded after each
event. Two runs from the same seed must produce identical digests; when
they don't, the running-hash prefix property (once the folds differ, every
later checkpoint differs) lets :func:`first_divergence` binary-search the
checkpoint lists to the exact first event where the runs disagreed.

The recorder is attached with :meth:`Scheduler.attach_tracer
<repro.sim.scheduler.Scheduler.attach_tracer>`, which swaps the scheduler's
RNG for a :class:`TracedRandom` carrying over the exact generator state —
attachment itself never perturbs the run.
"""

from __future__ import annotations

import functools
import hashlib
import random
from dataclasses import dataclass
from typing import Callable

_TRACE_DOMAIN = b"repro-trace-v1"


def callback_label(callback: Callable) -> str:
    """A stable, human-readable name for a scheduled callback.

    Bound methods, plain functions, and lambdas all carry deterministic
    ``__module__``/``__qualname__`` values (lambdas are named by their
    defining scope, e.g. ``ClosedLoopClient.start.<locals>.<lambda>``), so
    labels are identical across runs — no ``repr`` addresses, no ``id()``.
    """
    if isinstance(callback, functools.partial):
        return f"partial({callback_label(callback.func)})"
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        return type(callback).__name__
    module = getattr(callback, "__module__", None)
    return f"{module}.{qualname}" if module else qualname


class TracedRandom(random.Random):
    """A ``random.Random`` that reports every draw to a recorder.

    Only :meth:`random` and :meth:`getrandbits` are overridden: every other
    ``Random`` method (``uniform``, ``randrange``, ``shuffle``, ``sample``,
    …) derives its output from these two primitives, so tracing them traces
    everything.
    """

    def __init__(self, tracer: "TraceRecorder"):
        self._tracer = None  # draws during base __init__ go unrecorded
        super().__init__(0)
        self._tracer = tracer

    def random(self) -> float:
        value = super().random()
        if self._tracer is not None:
            self._tracer.record_rng("random", repr(value))
        return value

    def getrandbits(self, k: int) -> int:
        value = super().getrandbits(k)
        if self._tracer is not None:
            self._tracer.record_rng(f"getrandbits:{k}", repr(value))
        return value


class TraceRecorder:
    """Folds scheduler events and RNG draws into a running digest.

    Checkpoints are recorded *after* each event's callback returns, so the
    RNG draws a callback makes are attributed to that event's checkpoint —
    which is what lets divergence localization name the offending event.

    ``perturb_at`` deliberately steals one RNG draw at the start of event
    ``N`` (0-based): injected nondeterminism for the sanitizer's selftest,
    proving localization finds exactly the event where runs diverge.
    """

    def __init__(self, perturb_at: int | None = None):
        self._digest = hashlib.sha256(_TRACE_DOMAIN).digest()
        self.rng_draws = 0
        self.labels: list[str] = []  # labels[i] = callback of event i
        self.checkpoints: list[str] = []  # checkpoints[i] = digest after event i
        self.perturb_at = perturb_at
        self._rng: TracedRandom | None = None

    def bind_rng(self, rng: TracedRandom) -> None:
        """Called by ``Scheduler.attach_tracer``; the back-reference exists
        only so ``perturb_at`` can steal a draw."""
        self._rng = rng

    # -- folding --------------------------------------------------------

    def _fold(self, record: bytes) -> None:
        self._digest = hashlib.sha256(self._digest + record).digest()

    def begin_event(self, time: float, seq: int, callback: Callable) -> None:
        label = callback_label(callback)
        self.labels.append(label)
        self._fold(f"event|{time!r}|{seq}|{label}".encode())
        if (
            self.perturb_at is not None
            and len(self.labels) - 1 == self.perturb_at
            and self._rng is not None
        ):
            # Steal a draw: everything downstream of this event now sees a
            # shifted RNG stream, exactly like real hidden nondeterminism.
            self._rng.random()

    def record_rng(self, method: str, value_repr: str) -> None:
        self.rng_draws += 1
        self._fold(f"rng|{method}|{value_repr}".encode())

    def record_mark(self, label: str) -> None:
        """Fold an application-level marker into the digest — e.g. a
        pipeline batch boundary (node, first seqno, size). Replay equality
        then also proves the marked structure is deterministic, not just
        the event/RNG stream around it."""
        self._fold(f"mark|{label}".encode())

    def end_event(self) -> None:
        self.checkpoints.append(self._digest.hex())

    # -- results --------------------------------------------------------

    @property
    def digest(self) -> str:
        """The running trace digest (hex) as of now."""
        return self._digest.hex()

    @property
    def event_count(self) -> int:
        return len(self.checkpoints)


@dataclass(frozen=True)
class Divergence:
    """Where two traces first disagree."""

    event_index: int  # 0-based index of the first differing event
    label_a: str
    label_b: str
    digest_a: str  # final digests of the two runs
    digest_b: str
    comparisons: int  # checkpoint pairs inspected by the binary search

    def describe(self) -> str:
        where = (
            f"event {self.event_index} ({self.label_a})"
            if self.label_a == self.label_b
            else f"event {self.event_index} (run A: {self.label_a}; "
            f"run B: {self.label_b})"
        )
        return (
            f"replay divergence at {where}; "
            f"digests {self.digest_a[:16]}… != {self.digest_b[:16]}… "
            f"[{self.comparisons} checkpoint comparisons]"
        )


def first_divergence(a: TraceRecorder, b: TraceRecorder) -> Divergence | None:
    """Locate the first event where two traces disagree, or ``None`` when
    the traces are identical.

    Binary search is sound because checkpoints are prefixes of a running
    hash: checkpoint ``i`` matches iff everything up to and including event
    ``i`` matched, so the checkpoint lists are equal on a prefix and
    different on the suffix — a monotone boundary.
    """
    # Trace digests are integrity fingerprints of our own runs, not
    # attacker-supplied authenticators. repro-lint: disable=SEC001
    if a.digest == b.digest and a.event_count == b.event_count:
        return None
    common = min(len(a.checkpoints), len(b.checkpoints))
    lo, hi, comparisons = 0, common, 0
    while lo < hi:
        mid = (lo + hi) // 2
        comparisons += 1
        if a.checkpoints[mid] == b.checkpoints[mid]:
            lo = mid + 1
        else:
            hi = mid
    # lo == common means the whole common prefix matched: the runs differ
    # in event count (or in draws after the final event).
    index = lo

    def label(recorder: TraceRecorder) -> str:
        if index < len(recorder.labels):
            return recorder.labels[index]
        return "<end of run>"

    return Divergence(
        event_index=index,
        label_a=label(a),
        label_b=label(b),
        digest_a=a.digest,
        digest_b=b.digest,
        comparisons=comparisons,
    )
