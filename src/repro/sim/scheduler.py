"""The discrete-event scheduler: a virtual clock plus an event queue.

Time is a float in *seconds* of simulated time. Events scheduled for the
same instant fire in scheduling order (a monotone sequence number breaks
ties), which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable

from repro.errors import CCFError


class EventHandle:
    """A cancellation token for a scheduled event."""

    __slots__ = ("cancelled", "fire_at")

    def __init__(self, fire_at: float):
        self.cancelled = False
        self.fire_at = fire_at

    def cancel(self) -> None:
        self.cancelled = True


class Scheduler:
    """Priority-queue event loop over virtual time."""

    def __init__(self, seed: int = 0):
        self.now = 0.0
        self.rng = random.Random(seed)
        self.tracer = None
        self.obs = None  # optional repro.obs.ObsCollector
        self._queue: list[tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._sequence = 0
        self._events_processed = 0
        self._end_hooks: list[Callable[[], None]] = []
        self._in_event = False

    def attach_tracer(self, tracer) -> None:
        """Route every dispatched event and RNG draw through ``tracer`` (a
        :class:`repro.sim.trace.TraceRecorder`). The scheduler's RNG is
        swapped for a traced one carrying over the exact generator state,
        so attaching never changes the run it observes."""
        from repro.sim.trace import TracedRandom

        traced = TracedRandom(tracer)
        traced.setstate(self.rng.getstate())
        self.rng = traced
        self.tracer = tracer
        tracer.bind_rng(traced)

    def at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute virtual ``time``."""
        if time < self.now:
            raise CCFError(f"cannot schedule in the past ({time} < {self.now})")
        handle = EventHandle(time)
        heapq.heappush(self._queue, (time, self._sequence, handle, callback))
        self._sequence += 1
        return handle

    def after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise CCFError(f"negative delay {delay}")
        return self.at(self.now + delay, callback)

    @property
    def in_event(self) -> bool:
        """True while an event callback (or its end-of-event hooks) runs."""
        return self._in_event

    def at_event_end(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after the current event's callback returns, at the
        same virtual instant, before any further event is dispatched.

        This is a *microtask*, not a scheduled event: it takes no sequence
        number and cannot be interleaved with queued events, so deferring
        work into it (frame sealing) is invisible to the trace digest.
        Hooks must not schedule events or draw randomness for that to hold;
        they run in registration order, and hooks registered by a hook run
        in the same drain. Outside an event the hook runs synchronously.
        """
        if not self._in_event:
            hook()
            return
        self._end_hooks.append(hook)

    def _drain_end_hooks(self) -> None:
        while self._end_hooks:
            hooks = self._end_hooks
            self._end_hooks = []
            for hook in hooks:
                hook()

    def step(self) -> bool:
        """Run the next event. Returns False when the queue is empty."""
        while self._queue:
            time, seq, handle, callback = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.now = time
            self._events_processed += 1
            if self.obs is not None:
                self.obs.scheduler_event(len(self._queue))
            self._in_event = True
            if self.tracer is None:
                try:
                    callback()
                    self._drain_end_hooks()
                finally:
                    self._in_event = False
                    self._end_hooks.clear()  # only non-empty if callback raised
            else:
                self.tracer.begin_event(time, seq, callback)
                try:
                    callback()
                    self._drain_end_hooks()
                finally:
                    self._in_event = False
                    self._end_hooks.clear()  # only non-empty if callback raised
                    self.tracer.end_event()
            return True
        return False

    def run_until(self, deadline: float) -> None:
        """Process events until virtual time reaches ``deadline``."""
        while self._queue:
            time, _seq, handle, _callback = self._queue[0]
            if time > deadline:
                break
            if handle.cancelled:
                heapq.heappop(self._queue)
                continue
            self.step()
        self.now = max(self.now, deadline)

    def run_to_completion(self, max_events: int = 10_000_000) -> None:
        """Drain the queue entirely (bounded against runaway loops)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise CCFError(f"exceeded {max_events} events; likely a scheduling loop")

    @property
    def pending_events(self) -> int:
        return sum(1 for _t, _s, handle, _c in self._queue if not handle.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed
