"""Scripted fault injection for experiments.

Figure 9-style experiments need faults at precise simulated times; this
module schedules them declaratively: crash/restart nodes, partition and
heal groups, and inject message loss windows — plus the extended taxonomy
used by the chaos engine (:mod:`repro.sim.chaos`): per-link asymmetric
loss, message duplication, delay spikes (reordering), gray failures, and
clock-skewed election timers.

Every ``fire`` appends a timestamped entry to :attr:`FaultPlan.log`, so a
run's fault history is part of its replayable record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.net.network import Network
from repro.sim.scheduler import Scheduler


@dataclass
class FaultPlan:
    """A scripted sequence of faults, armed onto a scheduler."""

    scheduler: Scheduler
    network: Network
    log: list[tuple[float, str]] = field(default_factory=list)

    def _note(self, description: str) -> None:
        self.log.append((self.scheduler.now, description))

    def _check_window(self, start: float, end: float) -> None:
        if end <= start:
            raise ConfigurationError(
                f"fault window must end after it begins (start={start}, end={end})"
            )

    def crash_node_at(self, time: float, node) -> "FaultPlan":
        """Crash a CCFNode (enclave wiped, endpoint dark) at ``time``."""

        def fire() -> None:
            node.crash()
            self._note(f"crash {node.node_id}")

        self.scheduler.at(time, fire)
        return self

    def partition_at(self, time: float, group_a: list[str], group_b: list[str]) -> "FaultPlan":
        def fire() -> None:
            self.network.partition_groups(group_a, group_b)
            self._note(f"partition {group_a} | {group_b}")

        self.scheduler.at(time, fire)
        return self

    def heal_at(self, time: float) -> "FaultPlan":
        def fire() -> None:
            self.network.heal()
            self._note("heal all partitions")

        self.scheduler.at(time, fire)
        return self

    def loss_window(self, start: float, end: float, probability: float) -> "FaultPlan":
        self._check_window(start, end)

        def begin() -> None:
            self.network.set_loss_probability(probability)
            self._note(f"loss {probability:.0%} begins")

        def finish() -> None:
            self.network.set_loss_probability(0.0)
            self._note("loss window ends")

        self.scheduler.at(start, begin)
        self.scheduler.at(end, finish)
        return self

    def link_loss_window(
        self, start: float, end: float, src: str, dst: str, probability: float
    ) -> "FaultPlan":
        """Asymmetric loss on the directed link src -> dst only."""
        self._check_window(start, end)

        def begin() -> None:
            self.network.set_link_loss(src, dst, probability)
            self._note(f"link loss {src}->{dst} {probability:.0%} begins")

        def finish() -> None:
            self.network.set_link_loss(src, dst, 0.0)
            self._note(f"link loss {src}->{dst} ends")

        self.scheduler.at(start, begin)
        self.scheduler.at(end, finish)
        return self

    def duplicate_window(self, start: float, end: float, probability: float) -> "FaultPlan":
        """Deliver a fraction of messages twice."""
        self._check_window(start, end)

        def begin() -> None:
            self.network.set_duplicate_probability(probability)
            self._note(f"duplication {probability:.0%} begins")

        def finish() -> None:
            self.network.set_duplicate_probability(0.0)
            self._note("duplication ends")

        self.scheduler.at(start, begin)
        self.scheduler.at(end, finish)
        return self

    def delay_spike_window(
        self, start: float, end: float, probability: float, magnitude: float
    ) -> "FaultPlan":
        """Randomly delay (and therefore reorder) messages."""
        self._check_window(start, end)

        def begin() -> None:
            self.network.set_delay_spike(probability, magnitude)
            self._note(f"delay spikes {probability:.0%} up to {magnitude}s begin")

        def finish() -> None:
            self.network.set_delay_spike(0.0, 0.0)
            self._note("delay spikes end")

        self.scheduler.at(start, begin)
        self.scheduler.at(end, finish)
        return self

    def gray_window(
        self, start: float, end: float, node_id: str, slowdown: float
    ) -> "FaultPlan":
        """Gray failure: ``node_id`` stays alive but serves everything
        ``slowdown`` seconds late."""
        self._check_window(start, end)

        def begin() -> None:
            self.network.set_slowdown(node_id, slowdown)
            self._note(f"gray failure {node_id} (+{slowdown}s) begins")

        def finish() -> None:
            self.network.set_slowdown(node_id, 0.0)
            self._note(f"gray failure {node_id} ends")

        self.scheduler.at(start, begin)
        self.scheduler.at(end, finish)
        return self

    def clock_skew_at(self, time: float, node, scale: float) -> "FaultPlan":
        """Scale a CCFNode's election timers from ``time`` on (a skewed
        clock: < 1 fires elections early, > 1 late)."""
        if scale <= 0:
            raise ConfigurationError(f"clock skew scale must be positive, got {scale}")

        def fire() -> None:
            if node.consensus is not None:
                node.consensus.timer_scale = scale
            self._note(f"clock skew {node.node_id} x{scale}")

        self.scheduler.at(time, fire)
        return self
