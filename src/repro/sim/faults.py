"""Scripted fault injection for experiments.

Figure 9-style experiments need faults at precise simulated times; this
module schedules them declaratively: crash/restart nodes, partition and
heal groups, and inject message loss windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.network import Network
from repro.sim.scheduler import Scheduler


@dataclass
class FaultPlan:
    """A scripted sequence of faults, armed onto a scheduler."""

    scheduler: Scheduler
    network: Network
    log: list[tuple[float, str]] = field(default_factory=list)

    def _note(self, description: str) -> None:
        self.log.append((self.scheduler.now, description))

    def crash_node_at(self, time: float, node) -> "FaultPlan":
        """Crash a CCFNode (enclave wiped, endpoint dark) at ``time``."""

        def fire() -> None:
            node.crash()
            self._note(f"crash {node.node_id}")

        self.scheduler.at(time, fire)
        return self

    def partition_at(self, time: float, group_a: list[str], group_b: list[str]) -> "FaultPlan":
        def fire() -> None:
            self.network.partition_groups(group_a, group_b)
            self._note(f"partition {group_a} | {group_b}")

        self.scheduler.at(time, fire)
        return self

    def heal_at(self, time: float) -> "FaultPlan":
        def fire() -> None:
            self.network.heal()
            self._note("heal all partitions")

        self.scheduler.at(time, fire)
        return self

    def loss_window(self, start: float, end: float, probability: float) -> "FaultPlan":
        def begin() -> None:
            self.network.set_loss_probability(probability)
            self._note(f"loss {probability:.0%} begins")

        def finish() -> None:
            self.network.set_loss_probability(0.0)
            self._note("loss window ends")

        self.scheduler.at(start, begin)
        self.scheduler.at(end, finish)
        return self
