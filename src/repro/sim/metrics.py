"""Metrics collection for simulated experiments.

Benchmarks record completion events and latencies in simulated time; these
helpers turn them into the series the paper plots — throughput over time
(Figure 9), throughput points (Figure 7, Table 5), and response-time
distributions (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ThroughputRecorder:
    """Counts completion events; reports totals and bucketed time series."""

    events: list[float] = field(default_factory=list)

    def record(self, time: float) -> None:
        self.events.append(time)

    @property
    def count(self) -> int:
        return len(self.events)

    def throughput(self, start: float, end: float) -> float:
        """Events per second over the window [start, end)."""
        if end <= start:
            return 0.0
        n = sum(1 for t in self.events if start <= t < end)
        return n / (end - start)

    def series(self, start: float, end: float, bucket: float) -> list[tuple[float, float]]:
        """(bucket start time, events/sec) pairs covering [start, end)."""
        buckets: list[tuple[float, float]] = []
        t = start
        while t < end:
            buckets.append((t, self.throughput(t, min(t + bucket, end))))
            t += bucket
        return buckets


@dataclass
class LatencyRecorder:
    """Records per-request latencies (with completion timestamps)."""

    samples: list[tuple[float, float]] = field(default_factory=list)  # (time, latency)

    def record(self, completion_time: float, latency: float) -> None:
        self.samples.append((completion_time, latency))

    @property
    def count(self) -> int:
        return len(self.samples)

    def latencies(self) -> list[float]:
        return [latency for _time, latency in self.samples]

    def mean(self) -> float:
        values = self.latencies()
        return sum(values) / len(values) if values else 0.0

    def percentile(self, p: float) -> float:
        """The p-th percentile latency (p in [0, 100])."""
        values = sorted(self.latencies())
        if not values:
            return 0.0
        rank = min(len(values) - 1, max(0, round(p / 100 * (len(values) - 1))))
        return values[rank]

    def max(self) -> float:
        values = self.latencies()
        return max(values) if values else 0.0

    def histogram(self, bucket: float) -> dict[float, int]:
        """latency-bucket -> count, for response-time distributions."""
        counts: dict[float, int] = {}
        for _time, latency in self.samples:
            key = round(latency // bucket * bucket, 9)
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))
