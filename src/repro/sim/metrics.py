"""Metrics collection for simulated experiments.

Benchmarks record completion events and latencies in simulated time; these
helpers turn them into the series the paper plots — throughput over time
(Figure 9), throughput points (Figure 7, Table 5), and response-time
distributions (Figure 8).

Both recorders are now thin views over :mod:`repro.obs.metrics` histograms:
percentiles use the explicit nearest-rank method (the old ``round()``-based
rank made p50 of two samples depend on banker's rounding), and the bucketed
throughput series is built in a single pass over the events instead of
rescanning the whole event list once per bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import Histogram, nearest_rank


@dataclass
class ThroughputRecorder:
    """Counts completion events; reports totals and bucketed time series."""

    events: list[float] = field(default_factory=list)

    def record(self, time: float) -> None:
        self.events.append(time)

    @property
    def count(self) -> int:
        return len(self.events)

    def throughput(self, start: float, end: float) -> float:
        """Events per second over the window [start, end)."""
        if end <= start:
            return 0.0
        n = sum(1 for t in self.events if start <= t < end)
        return n / (end - start)

    def series(self, start: float, end: float, bucket: float) -> list[tuple[float, float]]:
        """(bucket start time, events/sec) pairs covering [start, end).

        Single pass: events are binned by index, then each bucket's rate is
        read off — O(events + buckets), not O(events × buckets).
        """
        if end <= start or bucket <= 0:
            return []
        n_buckets = 0
        t = start
        while t < end:
            n_buckets += 1
            t += bucket
        counts = [0] * n_buckets
        for event_time in self.events:
            if start <= event_time < end:
                index = int((event_time - start) / bucket)
                if index >= n_buckets:  # float-edge guard
                    index = n_buckets - 1
                counts[index] += 1
        series: list[tuple[float, float]] = []
        for i, count in enumerate(counts):
            bucket_start = start + i * bucket
            width = min(bucket, end - bucket_start)
            series.append((bucket_start, count / width))
        return series


@dataclass
class LatencyRecorder:
    """Records per-request latencies (with completion timestamps).

    Latency statistics are delegated to an :class:`repro.obs.metrics.Histogram`
    so percentiles, distributions, and summaries agree byte-for-byte with the
    metrics registry used by the tracer.
    """

    samples: list[tuple[float, float]] = field(default_factory=list)  # (time, latency)
    _hist: Histogram = field(default_factory=lambda: Histogram(name="latency"))

    def __post_init__(self) -> None:
        for _time, latency in self.samples:  # pre-seeded samples
            self._hist.observe(latency)

    def record(self, completion_time: float, latency: float) -> None:
        self.samples.append((completion_time, latency))
        self._hist.observe(latency)

    @property
    def count(self) -> int:
        return len(self.samples)

    def latencies(self) -> list[float]:
        return [latency for _time, latency in self.samples]

    def mean(self) -> float:
        return self._hist.mean()

    def percentile(self, p: float) -> float:
        """The p-th percentile latency (p in [0, 100]), nearest-rank."""
        return self._hist.percentile(p)

    def max(self) -> float:
        return self._hist.max()

    def histogram(self, bucket: float) -> dict[float, int]:
        """latency-bucket -> count, for response-time distributions."""
        return self._hist.buckets(bucket)

    def summary(self) -> dict:
        return self._hist.summary()


__all__ = ["ThroughputRecorder", "LatencyRecorder", "nearest_rank"]
