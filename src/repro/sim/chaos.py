"""Chaos engine: composable fault injection over the full service stack.

The consensus-only explorer (:mod:`repro.verification.explorer`) drives
bare protocol engines; this module drives *complete* :class:`CCFNode`
stacks — governance, ledger, receipts, attested join — under closed-loop
client load, through seeded adversarial schedules drawn from an extended
fault taxonomy:

==================  ====================================================
fault               mechanism
==================  ====================================================
crash/disk intact   node killed; a successor validates the salvaged
                    ledger (corruption/truncation detected here) and
                    rejoins through the real attested join path
crash/disk loss     node killed, disk gone; successor joins fresh
partition           pairwise group cut, later healed
link loss           per-directed-link (asymmetric) probabilistic loss
duplication         messages delivered twice
delay spike         random large delays => reordering
gray failure        a node stays alive but serves everything late
clock skew          a node's election timers run fast or slow
disk corruption     byte flips / truncation of a crashed node's chunks
==================  ====================================================

After the fault window the environment heals and the engine checks
*recovery*: safety invariants (always), plus the bounded-time liveness
properties of :mod:`repro.verification.liveness` — primary re-election,
commit resumption, a client-observed availability floor, and no
permanently stuck reconfiguration.

Every decision is drawn from the simulation's seeded RNG, so a schedule
is fully determined by ``(seed, ChaosSpec)`` and any reported violation
replays byte-identically:

    ChaosEngine(spec).run_schedule(seed)   # == the reported run

Run ``python -m repro.sim.chaos --schedules 5`` for the CI smoke mode.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import CCFError, IntegrityError
from repro.net.network import LinkConfig
from repro.node import maps
from repro.node.config import NodeConfig
from repro.storage.host_storage import HostStorage
from repro.verification import liveness
from repro.verification.invariants import InvariantViolation, check_all_invariants


@dataclass(frozen=True)
class ChaosSpec:
    """Declarative shape of a chaos schedule. Together with a seed this is
    the complete, replayable description of a run."""

    n_nodes: int = 5
    steps: int = 6
    step_duration: float = 0.25
    client_concurrency: int = 2
    base_latency: float = 0.004  # slower-than-LAN links keep event counts sane
    signature_interval: int = 100
    # Pipelined execution knobs (PR 8): chaos schedules can run with the
    # primary batching writes and backups serving offloaded reads, so the
    # safety invariants and trace-digest determinism gates cover the
    # pipelined hot path too.
    batch_execution: bool = False
    read_offload: bool = False
    # Coalesced sealed wire frames (PR 10). On/off must produce bit-identical
    # trace digests — the chaos differential suite pins this.
    frame_coalescing: bool = True

    # Per-step fault probabilities.
    p_crash: float = 0.12
    p_disk_loss: float = 0.4  # given a crash: disk is lost, not salvaged
    p_corrupt_disk: float = 0.35  # given a salvaged disk: corrupt it
    p_partition: float = 0.12
    p_heal_partition: float = 0.5
    p_link_loss: float = 0.18
    p_clear_link_loss: float = 0.5
    p_duplicate: float = 0.2
    p_delay_spike: float = 0.2
    p_gray: float = 0.15
    p_clear_gray: float = 0.5
    p_clock_skew: float = 0.15

    # Fault magnitudes.
    max_link_loss: float = 0.4
    duplicate_probability: float = 0.1
    spike_probability: float = 0.05
    spike_magnitude: float = 0.2
    gray_slowdown: float = 0.03
    skew_min: float = 0.6
    skew_max: float = 1.8

    # Liveness bounds (simulated seconds).
    recovery_bound: float = 5.0
    availability_window: float = 1.0
    min_post_heal_events: int = 6

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class ScheduleReport:
    """Outcome of one seeded schedule — everything needed to replay it."""

    seed: int
    spec: dict
    steps_run: int = 0
    fault_log: list[tuple[float, str]] = field(default_factory=list)
    safety_violations: list[str] = field(default_factory=list)
    liveness_violations: list[str] = field(default_factory=list)
    corruptions_injected: int = 0
    corruptions_detected: int = 0
    disk_intact_restarts: int = 0
    disk_loss_restarts: int = 0
    fault_kinds: set[str] = field(default_factory=set)
    completed_requests: int = 0
    client_errors: int = 0
    final_commit_seqno: int = 0

    @property
    def ok(self) -> bool:
        return (
            not self.safety_violations
            and not self.liveness_violations
            and self.corruptions_detected == self.corruptions_injected
        )

    def fingerprint(self) -> str:
        """Canonical byte-for-byte description of the run, for replay
        comparison: same (seed, spec) must yield the same fingerprint."""
        lines = [f"seed={self.seed}"]
        lines += [f"{t:.9f} {event}" for t, event in self.fault_log]
        lines += [f"SAFETY {v}" for v in self.safety_violations]
        lines += [f"LIVENESS {v}" for v in self.liveness_violations]
        lines.append(
            f"corruption {self.corruptions_detected}/{self.corruptions_injected} "
            f"commit={self.final_commit_seqno} completed={self.completed_requests}"
        )
        return "\n".join(lines)


@dataclass
class ChaosReport:
    """Aggregate over a batch of schedules."""

    schedules: list[ScheduleReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(schedule.ok for schedule in self.schedules)

    @property
    def failing_seeds(self) -> list[int]:
        return [schedule.seed for schedule in self.schedules if not schedule.ok]

    @property
    def fault_kinds(self) -> set[str]:
        kinds: set[str] = set()
        for schedule in self.schedules:
            kinds |= schedule.fault_kinds
        return kinds

    def summary(self) -> str:
        completed = sum(s.completed_requests for s in self.schedules)
        lines = [
            f"chaos: {len(self.schedules)} schedules, "
            f"{sum(s.steps_run for s in self.schedules)} steps, "
            f"{completed} client requests completed",
            f"fault kinds exercised: {', '.join(sorted(self.fault_kinds)) or 'none'}",
            f"restarts: {sum(s.disk_intact_restarts for s in self.schedules)} disk-intact, "
            f"{sum(s.disk_loss_restarts for s in self.schedules)} disk-loss; "
            f"corruption detected {sum(s.corruptions_detected for s in self.schedules)}"
            f"/{sum(s.corruptions_injected for s in self.schedules)} injected",
        ]
        for schedule in self.schedules:
            if not schedule.ok:
                lines.append(
                    f"FAIL seed={schedule.seed}: "
                    + "; ".join(schedule.safety_violations + schedule.liveness_violations)
                )
        if self.ok:
            lines.append("all safety invariants held; all liveness bounds met")
        return "\n".join(lines)


class ServiceCluster:
    """Full-stack harness for one schedule: a bootstrapped CCFService,
    closed-loop client load, and crash/restart bookkeeping."""

    def __init__(self, spec: ChaosSpec, seed: int, tracer=None, obs=None):
        from repro.service.service import CCFService, ServiceSetup

        self.spec = spec
        self.service = CCFService(ServiceSetup(
            n_nodes=spec.n_nodes,
            node_config=NodeConfig(
                signature_interval=spec.signature_interval,
                batch_execution=spec.batch_execution,
                read_offload=spec.read_offload,
                frame_coalescing=spec.frame_coalescing,
            ),
            link=LinkConfig(base_latency=spec.base_latency, jitter=spec.base_latency / 5),
            seed=seed,
        ))
        if tracer is not None:
            # Attach before bootstrap so the bootstrap events (and every RNG
            # draw from here on) land in the trace.
            self.service.scheduler.attach_tracer(tracer)
        if obs is not None:
            # Same discipline for the observability collector: nodes created
            # during bootstrap self-wire off scheduler.obs, so the whole
            # lifecycle (genesis onward) lands in the span trace.
            obs.attach_to_service(self.service)
        self.service.bootstrap()
        self.scheduler = self.service.scheduler
        self.network = self.service.network
        self.rng = self.scheduler.rng
        # (node_id -> (salvaged disk or None, last persisted seqno, corrupted?))
        self.crashed: dict[str, tuple[HostStorage | None, int, bool]] = {}
        self.client = self._start_load()

    def _start_load(self):
        from repro.service.client import ClosedLoopClient, ServiceClient

        user = self.service.users[0]
        credentials = {"certificate": user.certificate.to_dict()}
        endpoint = ServiceClient(
            self.scheduler, self.network, name="chaos-load", identity=user
        )
        primary = self.service.primary_node()
        client = ClosedLoopClient(
            endpoint,
            primary.node_id,
            lambda i: ("/app/write_message", {"id": i % 100, "msg": f"v{i}"}, credentials),
            concurrency=self.spec.client_concurrency,
            fallback_nodes=[n.node_id for n in self.service.backup_nodes()],
            retry_timeout=0.1,
        )
        client.start()
        return client

    # ------------------------------------------------------------------

    def live_nodes(self) -> list:
        return [
            node for node in self.service.nodes.values()
            if not node.stopped and node.consensus is not None
        ]

    def live_engines(self) -> list:
        return [node.consensus for node in self.live_nodes()]

    def all_engines(self) -> list:
        return [
            node.consensus for node in self.service.nodes.values()
            if node.consensus is not None
        ]

    def max_concurrent_crashes(self) -> int:
        return (self.spec.n_nodes - 1) // 2

    def crash_node(self, node_id: str, disk_lost: bool) -> HostStorage | None:
        """Crash with disk intact (salvage the host storage) or with disk
        loss (nothing survives)."""
        node = self.service.nodes[node_id]
        salvaged = None if disk_lost else node.storage.clone()
        persisted = 0 if disk_lost else node._persisted_seqno
        node.crash()
        self.crashed[node_id] = (salvaged, persisted, False)
        return salvaged

    def corrupt_salvaged_disk(self, node_id: str) -> str | None:
        """Tamper with a crashed node's salvaged disk: flip a byte in a
        complete chunk, or truncate trailing chunks. Returns a description,
        or None when the disk has nothing to corrupt."""
        salvaged, persisted, _ = self.crashed[node_id]
        if salvaged is None:
            return None
        complete = [
            name for name in salvaged.list_files("ledger_")
            if not name.endswith(".open.chunk")
        ]
        if not complete:
            return None
        if len(complete) > 1 and self.rng.random() < 0.5:
            salvaged.tamper_truncate_ledger(keep_chunks=len(complete) - 1)
            description = f"truncate disk of {node_id}"
        else:
            name = complete[self.rng.randrange(len(complete))]
            offset = self.rng.randrange(24, max(25, len(salvaged.read(name))))
            salvaged.tamper_flip_byte(name, offset)
            description = f"corrupt disk of {node_id} ({name} @ {offset})"
        self.crashed[node_id] = (salvaged, persisted, True)
        return description

    def restart_crashed(self, node_id: str, report: ScheduleReport) -> None:
        """Bring a replacement for ``node_id`` through the real join path:
        disk-intact restarts validate the salvaged ledger first (this is
        where injected corruption must be caught), disk-loss restarts join
        fresh; governance then trusts the successor and removes the dead
        node (the Figure 9 / section 4.4 sequence)."""
        salvaged, persisted, corrupted = self.crashed.pop(node_id)
        primary = self.service.primary_node()
        if primary is None:
            report.liveness_violations.append(
                f"liveness: no primary available to rejoin {node_id}"
            )
            return
        successor = self.service._make_node(self.service.new_node_id())
        joined_from_disk = False
        if salvaged is not None:
            try:
                successor.restart_from_disk(
                    salvaged, primary.node_id, primary.service_certificate,
                    expected_seqno=persisted,
                )
                joined_from_disk = True
            except IntegrityError as exc:
                if corrupted:
                    report.corruptions_detected += 1
                    report.fault_log.append(
                        (self.scheduler.now, f"corruption detected on {node_id}: {exc}")
                    )
                else:
                    report.safety_violations.append(
                        f"clean disk of {node_id} failed validation: {exc}"
                    )
            else:
                if corrupted:
                    report.safety_violations.append(
                        f"injected corruption on {node_id} went UNDETECTED"
                    )
        if not joined_from_disk:
            # Disk lost (or rejected): join with nothing, like a new machine.
            successor.request_join(primary.node_id, primary.service_certificate)
        if joined_from_disk:
            report.disk_intact_restarts += 1
        else:
            report.disk_loss_restarts += 1
        try:
            self.service.run_until(
                lambda: successor.consensus is not None,
                timeout=self.spec.recovery_bound,
            )
        except CCFError:
            report.liveness_violations.append(
                f"liveness: successor of {node_id} did not complete the join "
                f"path within {self.spec.recovery_bound}s"
            )
            return
        def successor_recorded() -> bool:
            # The PENDING record can be rolled back by an election after the
            # join response was already delivered; the joiner re-sends until
            # it sticks, so wait for it on whoever is primary *now*.
            primary_now = self.service.primary_node()
            return (
                primary_now is not None
                and primary_now.store.get(maps.NODES_INFO, successor.node_id)
                is not None
            )

        governance_error: CCFError | None = None
        for _attempt in range(3):
            # A mid-recovery election can yield the primary out from under a
            # governance round — wait one out and retry rather than fail.
            if liveness.await_liveness(
                self.scheduler,
                successor_recorded,
                self.spec.recovery_bound,
                "join record for replacement governance",
            ):
                governance_error = CCFError("successor never recorded on a primary")
                continue
            try:
                self.service.run_governance([
                    {"name": "transition_node_to_trusted",
                     "args": {"node_id": successor.node_id}},
                    {"name": "remove_node", "args": {"node_id": node_id}},
                ], timeout=self.spec.recovery_bound)
                governance_error = None
                break
            except CCFError as exc:
                governance_error = exc
        if governance_error is not None:
            report.liveness_violations.append(
                f"liveness: replacement governance for {node_id} stuck: "
                f"{governance_error}"
            )
            return
        self.client.fallback_nodes.append(successor.node_id)
        report.fault_log.append(
            (self.scheduler.now,
             f"restarted {node_id} as {successor.node_id} "
             f"({'disk-intact' if joined_from_disk else 'disk-loss'})")
        )

    def heal_everything(self) -> None:
        self.network.clear_faults()
        for engine in self.all_engines():
            engine.timer_scale = 1.0


class ChaosEngine:
    """Runs seeded chaos schedules and aggregates their reports.

    ``extra_invariants`` are additional callables ``f(engines) -> None``
    checked alongside the safety invariants — tests use a deliberately
    broken one to prove violations replay byte-identically. They must
    signal violations by raising :class:`InvariantViolation`; any other
    exception is a bug in the invariant itself and propagates.
    """

    def __init__(self, spec: ChaosSpec | None = None, extra_invariants=()):
        self.spec = spec if spec is not None else ChaosSpec()
        self.extra_invariants = tuple(extra_invariants)

    # ------------------------------------------------------------------

    def _check_safety(self, cluster: ServiceCluster) -> str | None:
        engines = cluster.all_engines()
        try:
            check_all_invariants(engines)
            for invariant in self.extra_invariants:
                invariant(engines)
        except InvariantViolation as violation:  # recorded, not raised
            return str(violation)
        return None

    def _inject_step_faults(
        self, cluster: ServiceCluster, report: ScheduleReport, state: dict
    ) -> None:
        spec, rng = self.spec, cluster.rng
        now = cluster.scheduler.now
        note = lambda kind, text: (  # noqa: E731 - tiny local helper
            report.fault_kinds.add(kind),
            report.fault_log.append((now, text)),
        )

        # Crashes (bounded to keep a quorum of the configuration alive).
        if (
            rng.random() < spec.p_crash
            and len(cluster.crashed) < cluster.max_concurrent_crashes()
        ):
            candidates = [n.node_id for n in cluster.live_nodes()]
            if candidates:
                victim = candidates[rng.randrange(len(candidates))]
                disk_lost = rng.random() < spec.p_disk_loss
                cluster.crash_node(victim, disk_lost)
                kind = "crash-disk-loss" if disk_lost else "crash-disk-intact"
                note(kind, f"crash {victim} ({'disk lost' if disk_lost else 'disk intact'})")
                if not disk_lost and rng.random() < spec.p_corrupt_disk:
                    description = cluster.corrupt_salvaged_disk(victim)
                    if description is not None:
                        report.corruptions_injected += 1
                        note("disk-corruption", description)

        # Partitions.
        if state["partitioned"] and rng.random() < spec.p_heal_partition:
            cluster.network.heal()
            state["partitioned"] = False
            note("partition", "heal all partitions")
        elif not state["partitioned"] and rng.random() < spec.p_partition:
            ids = [n.node_id for n in cluster.live_nodes()]
            if len(ids) >= 3:
                rng.shuffle(ids)
                cut = max(1, len(ids) // 3)
                cluster.network.partition_groups(ids[:cut], ids[cut:])
                state["partitioned"] = True
                note("partition", f"partition {sorted(ids[:cut])} | {sorted(ids[cut:])}")

        # Per-link asymmetric loss.
        if state["lossy_links"] and rng.random() < spec.p_clear_link_loss:
            for src, dst in state["lossy_links"]:
                cluster.network.set_link_loss(src, dst, 0.0)
            state["lossy_links"] = []
            note("link-loss", "clear link loss")
        elif rng.random() < spec.p_link_loss:
            ids = [n.node_id for n in cluster.live_nodes()]
            if len(ids) >= 2:
                src, dst = rng.sample(ids, 2)
                probability = rng.uniform(0.05, spec.max_link_loss)
                cluster.network.set_link_loss(src, dst, probability)
                state["lossy_links"].append((src, dst))
                note("link-loss", f"link loss {src}->{dst} {probability:.0%}")

        # Duplication.
        if rng.random() < spec.p_duplicate:
            active = cluster.network._duplicate_probability > 0
            cluster.network.set_duplicate_probability(
                0.0 if active else spec.duplicate_probability
            )
            note("duplication", "duplication off" if active else "duplication on")

        # Delay spikes (reordering).
        if rng.random() < spec.p_delay_spike:
            active = cluster.network._spike_probability > 0
            if active:
                cluster.network.set_delay_spike(0.0, 0.0)
                note("delay-spike", "delay spikes off")
            else:
                cluster.network.set_delay_spike(
                    spec.spike_probability, spec.spike_magnitude
                )
                note("delay-spike", "delay spikes on")

        # Gray failure.
        if state["gray"] and rng.random() < spec.p_clear_gray:
            for node_id in state["gray"]:
                cluster.network.set_slowdown(node_id, 0.0)
            note("gray-failure", f"gray failure ends on {sorted(state['gray'])}")
            state["gray"] = []
        elif not state["gray"] and rng.random() < spec.p_gray:
            ids = [n.node_id for n in cluster.live_nodes()]
            if ids:
                target = ids[rng.randrange(len(ids))]
                cluster.network.set_slowdown(target, spec.gray_slowdown)
                state["gray"] = [target]
                note("gray-failure", f"gray failure on {target} (+{spec.gray_slowdown}s)")

        # Clock skew.
        if rng.random() < spec.p_clock_skew:
            nodes = cluster.live_nodes()
            if nodes:
                target = nodes[rng.randrange(len(nodes))]
                scale = rng.uniform(spec.skew_min, spec.skew_max)
                target.consensus.timer_scale = scale
                note("clock-skew", f"clock skew {target.node_id} x{scale:.2f}")

    def _check_recovery(self, cluster: ServiceCluster, report: ScheduleReport) -> None:
        """Post-heal liveness: election, commit resumption, settled
        reconfigurations, client availability floor."""
        spec = self.spec
        scheduler = cluster.scheduler
        violation = liveness.await_liveness(
            scheduler,
            lambda: liveness.has_live_primary(cluster.live_engines()),
            spec.recovery_bound,
            "primary re-election after heal",
        )
        if violation:
            report.liveness_violations.append(violation)
            return

        # Restart every crashed node through the real join path.
        for node_id in list(cluster.crashed):
            cluster.restart_crashed(node_id, report)

        baseline = liveness.max_commit(cluster.live_engines())
        violation = liveness.await_liveness(
            scheduler,
            lambda: liveness.commit_advanced(cluster.live_engines(), baseline),
            spec.recovery_bound,
            f"commit advance past {baseline}",
        )
        if violation:
            report.liveness_violations.append(violation)

        violation = liveness.await_liveness(
            scheduler,
            lambda: liveness.configurations_settled(cluster.live_engines()),
            spec.recovery_bound,
            "reconfigurations settled",
        )
        if violation:
            report.liveness_violations.append(violation)

        window_start = scheduler.now
        cluster.service.run(spec.availability_window)
        violation = liveness.availability_floor(
            cluster.client.throughput.events,
            window_start,
            scheduler.now,
            spec.min_post_heal_events,
        )
        if violation:
            report.liveness_violations.append(violation)

    # ------------------------------------------------------------------

    def run_schedule(self, seed: int, tracer=None, obs=None) -> ScheduleReport:
        """One fully seeded schedule: fault window -> heal -> recovery
        checks. Deterministic: equal (seed, spec) gives equal reports.
        Pass a :class:`repro.sim.trace.TraceRecorder` as ``tracer`` to fold
        the run into a replay digest (the sanitizer's entry point), and/or
        an :class:`repro.obs.ObsCollector` as ``obs`` to record a causal
        span trace of the whole schedule."""
        from repro.obs.metrics import reset_runtime_stats

        # Host-side fast-path counters are attributable to one run only if
        # zeroed here; they are observability-only, so this cannot change
        # the schedule itself.
        reset_runtime_stats()
        report = ScheduleReport(seed=seed, spec=self.spec.to_dict())
        cluster = ServiceCluster(self.spec, seed, tracer=tracer, obs=obs)
        state = {"partitioned": False, "lossy_links": [], "gray": []}

        for step in range(self.spec.steps):
            self._inject_step_faults(cluster, report, state)
            cluster.service.run(self.spec.step_duration)
            report.steps_run += 1
            violation = self._check_safety(cluster)
            if violation is not None:
                report.safety_violations.append(f"step {step}: {violation}")
                break

        cluster.heal_everything()
        state.update(partitioned=False, lossy_links=[], gray=[])
        report.fault_log.append((cluster.scheduler.now, "heal everything"))
        if not report.safety_violations:
            self._check_recovery(cluster, report)
            violation = self._check_safety(cluster)
            if violation is not None:
                report.safety_violations.append(f"final: {violation}")

        cluster.client.stop()
        cluster.service.run(0.2)
        report.completed_requests = cluster.client.throughput.count
        report.client_errors = cluster.client.errors
        report.final_commit_seqno = liveness.max_commit(cluster.live_engines())
        return report

    def run(self, schedules: int = 20, base_seed: int = 0) -> ChaosReport:
        report = ChaosReport()
        for index in range(schedules):
            report.schedules.append(self.run_schedule(base_seed * 10_007 + index))
        return report


# ----------------------------------------------------------------------
# CLI (used by CI's chaos smoke)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.chaos",
        description="Run seeded chaos schedules over the full CCF stack.",
    )
    parser.add_argument("--schedules", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--steps", type=int, default=None)
    args = parser.parse_args(argv)

    spec = ChaosSpec()
    overrides = {}
    if args.nodes is not None:
        overrides["n_nodes"] = args.nodes
    if args.steps is not None:
        overrides["steps"] = args.steps
    if overrides:
        spec = dataclasses.replace(spec, **overrides)

    engine = ChaosEngine(spec)
    report = engine.run(schedules=args.schedules, base_seed=args.seed)
    print(report.summary())
    if not report.ok:
        for seed in report.failing_seeds:
            print(
                f"REPRODUCE with: python -m repro.sim.chaos --schedules 1 "
                f"--seed {seed}"
                + (f" --nodes {spec.n_nodes}" if args.nodes is not None else "")
                + (f" --steps {spec.steps}" if args.steps is not None else "")
            )
        return 1
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
