"""Deterministic discrete-event simulation runtime.

This package replaces the paper's Azure testbed (section 7): a virtual clock
with an event queue, a message-passing network with configurable latency and
fault injection, closed-loop workload clients, and metrics collection.
Everything is driven by a single seeded RNG, so a (seed, config) pair always
reproduces the same run — ledger bytes, elections, and throughput curves.
"""

from repro.sim.scheduler import Scheduler, EventHandle
from repro.sim.metrics import LatencyRecorder, ThroughputRecorder

__all__ = ["Scheduler", "EventHandle", "LatencyRecorder", "ThroughputRecorder"]
