"""Non-consensus wire messages: client traffic, forwarding, join protocol.

These travel over the simulated network between clients, hosts, and nodes.
Consensus traffic is sealed separately (:mod:`repro.net.channels`); client
traffic rides the (simulated) TLS session to the node, so objects here are
delivered as-is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.app.context import Request, Response
from repro.tee.attestation import AttestationQuote


@dataclass(frozen=True)
class ClientRequest:
    """A user request addressed to a node."""

    request: Request


@dataclass(frozen=True)
class ClientResponse:
    """Node → user: the reply to a ClientRequest."""

    response: Response


@dataclass(frozen=True)
class ForwardedRequest:
    """Backup → primary: a write request forwarded on behalf of a user
    (section 4.3). The origin node keeps the client session and relays the
    primary's answer back."""

    request: Request
    origin_node: str


@dataclass(frozen=True)
class ForwardedResponse:
    """Primary → origin backup: the answer to relay to the user."""

    response: Response
    origin_request_id: int


@dataclass(frozen=True)
class ChannelHello:
    """Node-to-node channel establishment: exchange X25519 public keys.
    Sent on first contact; idempotent."""

    sender: str
    dh_public: bytes


@dataclass(frozen=True)
class SealedConsensusMessage:
    """A consensus message sealed under the pairwise channel key."""

    sender: str
    counter: int
    box: bytes


class PendingFrame:
    """A coalesced wire frame, mutable until sealed.

    Created when a node produces its first consensus message for a peer
    within one scheduler event; every further message for that peer in the
    same event joins the frame. Segments referencing the frame are put on
    the network *immediately* (preserving the uncoalesced run's event order
    and latency-draw assignment); the single AEAD seal happens in an
    end-of-event microtask, which fills ``sender``/``counter``/``box``/
    ``count`` in place. Simulated latency is strictly positive, so the seal
    always lands before the first segment delivers.
    """

    __slots__ = ("sender", "counter", "box", "count", "payload_sizes")

    def __init__(self) -> None:
        self.sender = ""
        self.counter = -1
        self.box: bytes | None = None
        self.count = 0
        self.payload_sizes: list[int] = []


@dataclass(frozen=True)
class FrameSegment:
    """One message's slot in a :class:`PendingFrame`, sent as an ordinary
    network payload. The receiver opens the (shared) frame once and indexes
    into it; replay protection is per segment (``(counter, index)`` pairs,
    see :class:`repro.net.channels.FrameAssembler`)."""

    frame: PendingFrame
    index: int


@dataclass(frozen=True)
class JoinRequest:
    """New node → an existing node: request to join the service (section 4.4
    / Figure 9's point B). Carries the attestation quote binding the new
    node's identity key, plus its channel key."""

    node_id: str
    quote: AttestationQuote
    node_public_key: bytes  # encoded ECDSA verifying key (in quote report data)
    dh_public: bytes
    forwarded: bool = False  # relayed once by a backup toward its leader


@dataclass(frozen=True)
class JoinResponse:
    """Primary → new node: acceptance with everything needed to participate.

    Sent only after the quote verified against the governance-approved code
    ids; contains the service identity, the ledger secrets (all
    generations), the latest snapshot (if any) with its metadata, and the
    node certificate endorsed by the service identity.
    """

    accepted: bool
    error: str = ""
    service_certificate: dict | None = None
    node_certificate: dict | None = None
    # The service private key and ledger secrets, sealed under the joiner's
    # channel key (they must never transit the untrusted network in the
    # clear): (sender, counter, box).
    sealed_secrets: tuple = ()
    # Serialized KV state sealed under the ledger secret generation named in
    # ``snapshot_metadata["secret_generation"]`` — private maps never transit
    # (or rest on) the host unsealed. The receipt claim digests these sealed
    # bytes, so integrity is checkable before decryption.
    snapshot: bytes = b""
    snapshot_metadata: dict | None = None
    snapshot_receipt: dict | None = None
    current_nodes: tuple = ()  # ids of the current configuration
    config_base_seqno: int = 0
    peer_dh_publics: dict = field(default_factory=dict)  # node id -> DH public
    # Chunked state transfer: when the primary holds a chunked snapshot it
    # ships the signed *manifest* here instead of a monolithic ``snapshot``
    # blob. The manifest (format, base seqno, secret generation, per-map
    # chunk-id listing, ledger metadata) is covered by ``snapshot_receipt``
    # via its canonical digest; the joiner then pulls only the chunks it
    # doesn't already hold with StateChunkRequest.
    snapshot_manifest: dict | None = None


@dataclass(frozen=True)
class StateChunkRequest:
    """Joiner → admitting primary: fetch sealed state chunks by content
    address. Sent in batches after the manifest verified; chunks the joiner
    already holds (prior partial join, local snapshot cache) are skipped."""

    node_id: str
    base_seqno: int  # manifest base the ids were taken from
    chunk_ids: tuple = ()


@dataclass(frozen=True)
class StateChunkResponse:
    """Primary → joiner: the requested sealed chunks (id, bytes) pairs.
    Ids the serving node no longer holds come back in ``missing`` — the
    joiner falls back to a fresh join (full transfer) rather than stalling."""

    base_seqno: int
    chunks: tuple = ()  # ((chunk_id, sealed_bytes), ...)
    missing: tuple = ()
