"""The CCF node: enclave, KV store, ledger, consensus, and frontend.

This is Figure 2 assembled: application logic and the transaction handler
execute inside the (simulated) TEE against the key-value store; the
consensus layer replicates the resulting ledger; the untrusted host provides
storage and networking. One :class:`CCFNode` is one simulated machine.

Request lifecycle (sections 3.1, 4.3):

1. A user request arrives over the (simulated) TLS session.
2. It occupies a worker thread for its calibrated service time.
3. The endpoint's auth policy runs, then the handler executes in a
   transaction; writes go to the primary (forwarded if needed).
4. The write set becomes a ledger entry; the user gets an immediate reply
   carrying the transaction ID (local execution guarantee); commit can be
   polled via the built-in ``tx`` endpoint (global commit guarantee).
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.app.application import Application
from repro.app.context import Caller, Request, RequestContext, Response
from repro.consensus.messages import decode_message, encode_message
from repro.consensus.raft import ConsensusNode
from repro.consensus.state import NodeStatus
from repro.crypto.certs import Certificate, issue
from repro.crypto.ct import ct_eq
from repro.crypto.ecdsa import SigningKey, VerifyingKey
from repro.crypto.hashing import sha256
from repro.crypto.x25519 import DHPrivateKey
from repro.errors import (
    AttestationError,
    AuthenticationError,
    AuthorizationError,
    CCFError,
    KVError,
    ReadBehindError,
    ReadRolledBackError,
    ServiceUnavailableError,
    VerificationError,
)
from repro.kv.serialization import encode_value
from repro.kv.store import KVStore
from repro.kv.tx import Transaction, WriteSet
from repro.ledger.entry import EntryKind, LedgerEntry, TxID
from repro.ledger.ledger import Ledger
from repro.ledger.receipts import Receipt, issue_receipt
from repro.ledger.secrets import LedgerSecret, LedgerSecretStore
from repro.ledger import statetransfer
from repro.ledger.chunking import chunk_entries
from repro.net.channels import FrameAssembler, NodeChannels, SealedMessage
from repro.net.network import Network
from repro.node import auth as auth_module
from repro.node import maps
from repro.node.config import NodeConfig
from repro.node.indexer import Indexer
from repro.node.wire import (
    ChannelHello,
    ClientRequest,
    ClientResponse,
    ForwardedRequest,
    ForwardedResponse,
    FrameSegment,
    PendingFrame,
    JoinRequest,
    JoinResponse,
    SealedConsensusMessage,
    StateChunkRequest,
    StateChunkResponse,
)
from repro.sim.scheduler import Scheduler
from repro.storage.host_storage import HostStorage
from repro.tee.attestation import HardwareRoot, verify_quote
from repro.tee.enclave import Enclave


class CCFNode:
    """One CCF node (host + enclave)."""

    def __init__(
        self,
        node_id: str,
        scheduler: Scheduler,
        network: Network,
        hardware: HardwareRoot,
        app: Application,
        config: NodeConfig,
        code_id: str,
        governance_app: Application | None = None,
    ):
        self.node_id = node_id
        self.scheduler = scheduler
        self.network = network
        self.config = config
        self.app = app
        self.governance_app = governance_app
        self.cost = config.resolve_cost_model()

        self.enclave = Enclave(config.platform, code_id, hardware)
        self._hardware = hardware
        # Fresh node identity per instantiation (nodes are ephemeral,
        # section 6.2): derived from node id + a per-run nonce.
        key_seed = node_id.encode() + scheduler.rng.getrandbits(64).to_bytes(8, "big")
        self.node_key = SigningKey.generate(key_seed)
        self.enclave.memory.put("node_key", self.node_key)
        self.dh_key = DHPrivateKey.generate(key_seed + b"|dh")
        self.channels = NodeChannels(node_id, self.dh_key)

        self.store: KVStore | None = None
        self.ledger: Ledger | None = None
        self.consensus: ConsensusNode | None = None
        self.storage = HostStorage()
        self.indexer = Indexer()
        for name, factory in app.indexing_strategies.items():
            del name
            self.indexer.install(factory())

        self.service_certificate: Certificate | None = None
        self.node_certificate: Certificate | None = None

        self._workers = [0.0] * config.worker_threads
        self._txs_since_signature = 0
        self._sig_flush_armed = False
        self._sig_flush_handle = None
        self._replication_armed = False
        self._commit_scan = 0
        self._committed_statuses: dict[str, str] = {}
        self._retired_appended: set[str] = set()
        self._pending_forwards: dict[int, tuple[str, Request]] = {}
        self._claims_by_seqno: dict[int, dict] = {}
        self._sessions_forwarded: set[str] = set()
        # Pipelined execution (primary only): queued writes awaiting a batch
        # drain. Each item is (request, origin_node) — origin_node is None
        # for direct client requests, else the backup that forwarded it.
        self._batch_queue: list[tuple[Request, str | None]] = []
        self._batch_queue_bytes = 0
        self._batch_drain_handle = None
        # In-order apply: batches execute on parallel workers but append in
        # drain order, so the ledger keeps the serial oracle's order.
        self._batch_seq = 0
        self._batch_apply_next = 0
        self._batches_completed: dict[int, tuple[list, int]] = {}
        self._last_snapshot_seqno = 0
        self._latest_snapshot: dict | None = None  # join-ready package
        # Delta-snapshot production state (primary): the previous snapshot's
        # map table + sealed chunks, so clean maps reuse their chunks.
        self._snapshot_baseline: statetransfer.SnapshotBaseline | None = None
        # Joiner-side chunked-transfer state between manifest and install.
        self._pending_state_transfer: dict | None = None
        self._persisted_seqno = 0
        # Frame coalescing (sender side): per-peer pending frame for the
        # current scheduler event, plus the raw payloads awaiting the single
        # end-of-event seal. Receiver side: segment-granular replay state.
        self._pending_frames: dict[str, tuple[PendingFrame, list[bytes]]] = {}
        self._frame_flush_armed = False
        self._frame_assembler = FrameAssembler(self.channels)
        self.stopped = False

        network.register(node_id, self._on_network_message)

        # Observability.
        self.requests_processed = 0
        self.writes_executed = 0
        self.reads_executed = 0
        self.forwards = 0
        self.wire_obs(scheduler.obs)

    def wire_obs(self, obs) -> None:
        """Point this node's scheduler-less components (enclave, ledger,
        store) at ``obs`` (an :class:`repro.obs.ObsCollector`, or None to
        unhook). Called at creation time and whenever a collector attaches
        or detaches mid-run; components created later re-wire themselves
        through the service-bootstrap paths."""
        for component in (self.enclave, self.ledger, self.store):
            if component is not None:
                component.obs = obs
                component.obs_owner = self.node_id if obs is not None else ""

    # ==================================================================
    # Service bootstrap (first node) and join (subsequent nodes)

    def start_new_service(
        self,
        service_subject: str,
        genesis_write_set: Callable[[RequestContext], None] | WriteSet,
        secret_seed: bytes | None = None,
    ) -> None:
        """Create a brand-new service on this node: mint the service
        identity and ledger secret inside the enclave, write the genesis
        transaction (constitution, members, users, code ids, this node),
        and become the initial primary."""
        seed = secret_seed if secret_seed is not None else (
            self.node_id.encode() + self.scheduler.rng.getrandbits(128).to_bytes(16, "big")
        )
        service_key = SigningKey.generate(seed + b"|service-identity")
        from repro.crypto.certs import self_signed

        self.service_certificate = self_signed(service_subject, service_key)
        self.enclave.memory.put("service_key", service_key)
        self.node_certificate = issue(
            self.node_id, self.node_key.public_key, service_subject, service_key
        )
        secrets = LedgerSecretStore(LedgerSecret.generate(seed + b"|ledger-secret"))
        self.enclave.memory.put("ledger_secrets", secrets)
        self.ledger = Ledger(secrets)
        self.store = KVStore()
        self.wire_obs(self.scheduler.obs)
        self.consensus = ConsensusNode(
            node_id=self.node_id,
            ledger=self.ledger,
            scheduler=self.scheduler,
            host=self,
            initial_nodes={self.node_id},
            config=self.config.consensus,
        )
        self.consensus.start_as_initial_primary()
        # Genesis transaction: all the service's initial governance state.
        if isinstance(genesis_write_set, WriteSet):
            write_set = genesis_write_set
        else:
            tx = self.store.begin()
            ctx = RequestContext(
                Request(path="/genesis"), tx, Caller("member", "genesis"), node=self
            )
            genesis_write_set(ctx)
            write_set = tx.write_set
        # The genesis writes this node's own info row.
        write_set.put(
            maps.NODES_INFO,
            self.node_id,
            self._node_info_row(NodeStatus.TRUSTED.value),
        )
        existing_info = write_set.updates.get(maps.SERVICE_INFO, {}).get("service") or {}
        write_set.put(maps.SERVICE_INFO, "service", dict(
            existing_info,
            status=maps.SERVICE_OPENING,
            certificate=self.service_certificate.to_dict(),
        ))
        self._append_local_entry(write_set)
        self._append_signature_now()

    def _node_info_row(self, status: str) -> dict:
        return {
            "status": status,
            "public_key": self.node_key.public_key.encode().hex(),
            "dh_public": self.dh_key.public.hex(),
            "platform": self.config.platform,
            "code_id": self.enclave.code_id,
        }

    def request_join(self, via_node: str, expected_service: Certificate) -> None:
        """Begin joining an existing service through ``via_node``.

        ``expected_service`` is the operator-provided service identity the
        join response must match (trust anchor for the new node). The
        request is re-sent on a timer until this node is both admitted and
        durably recorded: the request or response can be lost, and the
        admitting primary's PENDING transaction can be rolled back by an
        election before it commits, either of which would otherwise leave
        the joiner stranded forever.
        """
        self._expected_service = expected_service
        self._join_targets = [via_node]
        self._send_join_request(via_node)
        self._arm_join_retry()

    def _send_join_request(self, via_node: str) -> None:
        quote = self.enclave.attest(self.node_key.public_key.encode())
        self.network.send(
            self.node_id,
            via_node,
            JoinRequest(
                node_id=self.node_id,
                quote=quote,
                node_public_key=self.node_key.public_key.encode(),
                dh_public=self.dh_key.public,
            ),
        )

    def _arm_join_retry(self) -> None:
        def tick() -> None:
            if self.stopped:
                return
            row = (
                self.store.get(maps.NODES_INFO, self.node_id)
                if self.consensus is not None
                else None
            )
            if row is not None and row.get("status") != NodeStatus.PENDING.value:
                return  # trusted (or retired): joining is over
            orphaned = (
                self.consensus is not None
                and not self.consensus.is_primary
                and self.scheduler.now - self.consensus.last_leader_contact
                > self.config.join_retry_interval
            )
            # ``orphaned`` covers a subtle failure: the admitting primary
            # registered us as a learner, then lost an election; the new
            # primary knows nothing of us (the PENDING transaction rolled
            # back), nobody replicates to us, and our own stale store still
            # shows the rolled-back row — only the leader silence gives the
            # orphaning away.
            transfer = self._pending_state_transfer
            if transfer is not None:
                # A chunked transfer is in flight. Re-sending the join
                # request now would race a duplicate (slow, byte-costed)
                # JoinResponse against the chunk stream and trip the
                # channel replay guard — so only interfere if the transfer
                # has made no progress since the last tick (its serving
                # node died mid-stream).
                if transfer["fetched"] > transfer.get("last_progress", -1):
                    transfer["last_progress"] = transfer["fetched"]
                    self.scheduler.after(self.config.join_retry_interval, tick)
                    return
                self._pending_state_transfer = None
            if self.consensus is None or row is None or orphaned:
                # Not admitted yet, or our PENDING record was rolled back by
                # an election. Rotate through every node we know about —
                # only the current primary answers, and it may have moved.
                if self.consensus is not None:
                    for node_id in sorted(self.consensus.configurations.current.nodes):
                        if node_id not in self._join_targets and node_id != self.node_id:
                            self._join_targets.append(node_id)
                target = self._join_targets.pop(0)
                self._join_targets.append(target)
                self._send_join_request(target)
            self.scheduler.after(self.config.join_retry_interval, tick)

        self.scheduler.after(self.config.join_retry_interval, tick)

    def restart_from_disk(
        self,
        salvaged_storage: HostStorage,
        via_node: str,
        expected_service: Certificate,
        expected_seqno: int | None = None,
    ):
        """Crash-with-disk-intact restart (section 6.2): the machine came
        back but its enclave memory — node identity, ledger secrets — is
        gone, so this is a *new* node that salvages the old disk.

        The salvaged ledger is replayed and its signature transactions
        verified before anything else: corruption or truncation (checked
        against ``expected_seqno`` when the operator knows how far the node
        had persisted) raises :class:`IntegrityError` instead of quietly
        rejoining over bad files. On success the disk is kept — committed
        chunks are content-identical across nodes, so the post-join persist
        path overwrites them in place — and the node rejoins through the
        real attested join path.

        Returns the :class:`repro.ledger.audit.StorageValidation`.
        """
        from repro.errors import IntegrityError as _IntegrityError
        from repro.ledger.audit import validate_storage

        validation = validate_storage(salvaged_storage, expected_seqno=expected_seqno)
        if not validation.intact:
            raise _IntegrityError(
                f"salvaged ledger failed validation: {validation.describe()}"
            )
        self.storage = salvaged_storage
        self._persisted_seqno = 0  # re-persist over the identical prefix
        self.request_join(via_node, expected_service)
        return validation

    # -- Join: primary side -------------------------------------------

    def _on_join_request(self, src: str, message: JoinRequest) -> None:
        if self.consensus is None or not self.consensus.is_primary:
            # Only the primary admits nodes, but the joiner may be pointed
            # at a backup (the primary can change while it retries). Relay
            # toward our current leader — one hop only, so two nodes with
            # stale leader hints cannot bounce a request forever.
            if (
                not message.forwarded
                and self.consensus is not None
                and self.consensus.leader_id
                and self.consensus.leader_id != self.node_id
            ):
                self.network.send(
                    self.node_id,
                    self.consensus.leader_id,
                    dataclasses.replace(message, forwarded=True),
                )
            return
        allowed = {code_id for code_id, _v in self.store.items(maps.NODES_CODE_IDS)}
        try:
            verify_quote(
                message.quote,
                self._hardware.public_key,
                allowed,
                expected_report_data=message.node_public_key,
                accept_virtual=self.config.accept_virtual_attestation,
            )
        except AttestationError as exc:
            self.network.send(
                self.node_id, message.node_id,
                JoinResponse(accepted=False, error=str(exc)),
            )
            return
        # Attestation verified: the secrets may now be shared (section 6.1).
        self.channels.establish(message.node_id, message.dh_public)
        service_key = self.enclave.memory.get("service_key")
        node_certificate = issue(
            message.node_id,
            # The joining node's identity key, straight from the quote.
            VerifyingKey.decode(message.node_public_key),
            self.service_certificate.subject,
            service_key,
        )
        secrets: LedgerSecretStore = self.enclave.memory.get("ledger_secrets")
        secret_rows = [
            [g, secrets.for_generation(g).key_bytes, secrets.for_generation(g).suite]
            for g in secrets.generations()
        ]
        # The service key and ledger secrets travel sealed: only the attested
        # enclave that presented this DH key can open them (section 6.1).
        secrets_payload = encode_value(
            {
                "ledger_secrets": secret_rows,
                "service_key_scalar": service_key.scalar.to_bytes(32, "big"),
            }
        )
        sealed = self.channels.seal(message.node_id, secrets_payload)
        peer_dh = {
            node_id: info["dh_public"]
            for node_id, info in self.store.items(maps.NODES_INFO)
            if info.get("dh_public")
        }
        snapshot = self._latest_snapshot or {}
        # A chunked snapshot ships its manifest only; the joiner pulls the
        # chunks it is missing afterwards. A monolithic snapshot rides the
        # response whole, as before.
        chunked = "chunks" in snapshot
        response = JoinResponse(
            accepted=True,
            service_certificate=self.service_certificate.to_dict(),
            node_certificate=node_certificate.to_dict(),
            sealed_secrets=(sealed.sender, sealed.counter, sealed.box),
            snapshot=b"" if chunked else snapshot.get("data", b""),
            snapshot_metadata=snapshot.get("metadata"),
            snapshot_receipt=snapshot.get("receipt"),
            snapshot_manifest=snapshot.get("metadata") if chunked else None,
            current_nodes=tuple(sorted(self.consensus.configurations.current.nodes)),
            config_base_seqno=self.consensus.configurations.current.seqno,
            peer_dh_publics=peer_dh,
        )
        # Record the node as PENDING (Listing 2's first transaction) with
        # its join metadata, then start replicating to it as a learner.
        # Joiners re-send until admitted, so this must be idempotent: an
        # already-recorded node keeps its row (a re-write would demote a
        # TRUSTED node back to PENDING), and a configuration member is not
        # re-added as a learner.
        if self.store.get(maps.NODES_INFO, message.node_id) is None:
            write_set = WriteSet()
            row = {
                "status": NodeStatus.PENDING.value,
                "public_key": message.node_public_key.hex(),
                "dh_public": message.dh_public.hex(),
                "platform": message.quote.platform,
                "code_id": message.quote.code_id,
            }
            write_set.put(maps.NODES_INFO, message.node_id, row)
            self._append_local_entry(write_set)
        next_seqno = (snapshot.get("metadata") or {}).get("base_seqno", 0) + 1
        if message.node_id not in self.consensus.configurations.current.nodes:
            self.consensus.add_learner(message.node_id, next_seqno)
        # Reply to the joiner itself — with forwarding, ``src`` may be the
        # relaying backup rather than the joining node. Shipping state costs
        # wire time proportional to its size (the whole blob for monolithic
        # snapshots, just the manifest for chunked ones).
        state_bytes = len(response.snapshot)
        if response.snapshot_metadata is not None:
            state_bytes += len(encode_value(response.snapshot_metadata))
        self.network.send(
            self.node_id,
            message.node_id,
            response,
            extra_delay=self.cost.state_transfer_cost(state_bytes),
        )

    def _on_state_chunk_request(self, src: str, message: StateChunkRequest) -> None:
        """Serve sealed state chunks by content address (primary side).

        Chunks come from the live snapshot package or the on-disk cache
        (older-but-still-referenced chunks a resuming joiner may ask for).
        Ids this node cannot produce are reported back as ``missing`` so the
        joiner can fall back instead of stalling."""
        del src  # replies go to the joining node named in the request
        package = self._latest_snapshot or {}
        available: dict = package.get("chunks") or {}
        found: list[tuple[str, bytes]] = []
        missing: list[str] = []
        for chunk_id in message.chunk_ids:
            blob = available.get(chunk_id)
            if blob is None:
                blob = self.storage.read_state_chunk(chunk_id)
                if blob is not None and not ct_eq(
                    statetransfer.chunk_id(blob), chunk_id
                ):
                    blob = None  # disk-tampered cache entry: treat as absent
            if blob is None:
                missing.append(chunk_id)
            else:
                found.append((chunk_id, blob))
        payload_bytes = sum(len(blob) for _, blob in found)
        obs = self.scheduler.obs
        if obs is not None:
            obs.state_transfer_event(
                self.node_id,
                "chunks_served",
                joiner=message.node_id,
                served=len(found),
                missing=len(missing),
                bytes=payload_bytes,
            )
        self.network.send(
            self.node_id,
            message.node_id,
            StateChunkResponse(
                base_seqno=message.base_seqno,
                chunks=tuple(found),
                missing=tuple(missing),
            ),
            extra_delay=self.cost.state_transfer_cost(payload_bytes),
        )

    # -- Join: new node side --------------------------------------------

    def _on_join_response(self, src: str, message: JoinResponse) -> None:
        if self.consensus is not None:
            # Already joined: this is a reply to a retried (or duplicated)
            # join request. Re-initializing from it would throw away state.
            return
        if not message.accepted:
            raise AttestationError(f"join rejected: {message.error}")
        service_certificate = Certificate.from_dict(message.service_certificate)
        expected: Certificate = getattr(self, "_expected_service", None)
        if expected is not None and service_certificate != expected:
            raise VerificationError("join response from an unexpected service")
        service_certificate.verify_self_signed()
        self.service_certificate = service_certificate
        self.node_certificate = Certificate.from_dict(message.node_certificate)
        self.node_certificate.verify(service_certificate.public_key)

        for peer, dh_hex in message.peer_dh_publics.items():
            if peer != self.node_id:
                self.channels.establish(peer, bytes.fromhex(dh_hex))

        # Open the sealed key material (channel with the admitting primary
        # was established just above from its published DH key).
        sender, counter, box = message.sealed_secrets
        try:
            payload = self.channels.open(
                SealedMessage(sender=sender, counter=counter, box=box)
            )
        except VerificationError:
            # A retried join request can draw a second response; the
            # duplicate is byte-costed (slow) and may arrive after newer
            # channel traffic, failing the replay counter. Drop it like
            # any replayed sealed message — the in-flight join continues
            # (and the retry timer covers the nothing-in-flight case).
            return
        from repro.kv.serialization import decode_value

        secret_material = decode_value(payload)
        secrets = LedgerSecretStore()
        for generation, key_bytes, suite in secret_material["ledger_secrets"]:
            secrets.add(LedgerSecret(generation=generation, key_bytes=key_bytes, suite=suite))
        self.enclave.memory.put("ledger_secrets", secrets)
        service_key = SigningKey(int.from_bytes(secret_material["service_key_scalar"], "big"))
        if service_key.public_key.encode() != service_certificate.public_key.encode():
            raise VerificationError("received service key does not match the certificate")
        self.enclave.memory.put("service_key", service_key)

        if message.snapshot_manifest is not None:
            # Chunked state transfer: verify the manifest against its
            # receipt, then pull only the chunks we don't already hold.
            # Joining completes asynchronously in _complete_chunked_install.
            self._begin_chunked_transfer(src, message)
            return

        base_seqno = 0
        if message.snapshot:
            metadata = message.snapshot_metadata
            receipt = Receipt.from_dict(message.snapshot_receipt)
            receipt.verify(service_certificate)
            digest = bytes(sha256(message.snapshot, encode_value(metadata)))
            claimed = (receipt.claims or {}).get("snapshot_digest")
            if not ct_eq(claimed, digest.hex()):
                raise VerificationError("snapshot does not match its receipt claims")
            # The snapshot arrives sealed (its digest covers the sealed
            # bytes); decrypt with the generation named in the verified
            # metadata, which doubles as the AEAD's associated data.
            secret = secrets.for_generation(metadata.get("secret_generation", 0))
            plain = secret.open_snapshot(
                metadata["base_seqno"], message.snapshot, aad=encode_value(metadata)
            )
            self.store = KVStore.deserialize(plain)
            self.ledger = Ledger.from_snapshot_metadata(
                secrets,
                base_seqno=metadata["base_seqno"],
                txids=[TxID(v, s) for v, s in metadata["txids"]],
                leaf_hashes=list(metadata["leaf_hashes"]),
                last_signature_txid=TxID(*metadata["last_signature_txid"]),
            )
            base_seqno = metadata["base_seqno"]
            self._commit_scan = base_seqno
            self.indexer.last_indexed = base_seqno
        else:
            self.store = KVStore()
            self.ledger = Ledger(secrets)
        self._finish_join(message, base_seqno)

    def _finish_join(self, message: JoinResponse, base_seqno: int) -> None:
        """Shared join tail: store/ledger are installed; start consensus."""
        self.wire_obs(self.scheduler.obs)
        from_snapshot = bool(message.snapshot) or message.snapshot_manifest is not None
        config_base = message.config_base_seqno if from_snapshot else 0
        self.consensus = ConsensusNode(
            node_id=self.node_id,
            ledger=self.ledger,
            scheduler=self.scheduler,
            host=self,
            initial_nodes=set(message.current_nodes),
            config=self.config.consensus,
            config_base_seqno=min(config_base, base_seqno),
        )
        self.consensus.start()

    # -- Join: chunked state transfer (joiner side) ---------------------

    def _begin_chunked_transfer(self, src: str, message: JoinResponse) -> None:
        metadata = message.snapshot_manifest
        receipt = Receipt.from_dict(message.snapshot_receipt)
        receipt.verify(self.service_certificate)
        digest = bytes(statetransfer.manifest_digest(metadata))
        claimed = (receipt.claims or {}).get("snapshot_digest")
        if not ct_eq(claimed, digest.hex()):
            raise VerificationError(
                "snapshot manifest does not match its receipt claims"
            )
        transfer = self._pending_state_transfer
        if transfer is not None and ct_eq(transfer["digest"], digest):
            # Retried join response for the same snapshot mid-transfer: a
            # chunk round may have been lost — re-kick, don't restart.
            self._request_missing_chunks()
            return
        # (Re)plan the transfer. Seed from the local content-addressed
        # cache: chunks from a prior partial join or an older snapshot are
        # skipped if their bytes still match their address.
        needed = statetransfer.manifest_chunk_ids(metadata)
        have: dict[str, bytes] = {}
        for chunk_id in needed:
            blob = self.storage.read_state_chunk(chunk_id)
            if blob is not None and ct_eq(statetransfer.chunk_id(blob), chunk_id):
                have[chunk_id] = blob
        self._pending_state_transfer = {
            "digest": digest,
            "metadata": metadata,
            "message": message,
            "source": src,
            "have": have,
            "missing": [cid for cid in needed if cid not in have],
            "cached": len(have),
            "fetched": 0,
        }
        obs = self.scheduler.obs
        if obs is not None:
            obs.state_transfer_event(
                self.node_id,
                "manifest",
                base_seqno=metadata["base_seqno"],
                chunks=len(needed),
                cached=len(have),
            )
        self._request_missing_chunks()

    def _request_missing_chunks(self) -> None:
        transfer = self._pending_state_transfer
        if transfer is None:
            return
        if not transfer["missing"]:
            self._complete_chunked_install()
            return
        batch = tuple(transfer["missing"][: self.config.join_chunk_batch])
        self.network.send(
            self.node_id,
            transfer["source"],
            StateChunkRequest(
                node_id=self.node_id,
                base_seqno=transfer["metadata"]["base_seqno"],
                chunk_ids=batch,
            ),
        )

    def _on_state_chunk_response(self, src: str, message: StateChunkResponse) -> None:
        del src
        transfer = self._pending_state_transfer
        if transfer is None or self.consensus is not None:
            return
        if message.base_seqno != transfer["metadata"]["base_seqno"]:
            return  # stale round from a superseded transfer
        if message.missing:
            # The server no longer holds part of this snapshot (it advanced
            # or changed hands). Abandon the transfer; the join retry timer
            # restarts the handshake cleanly — against whatever snapshot the
            # current primary can actually serve — and everything already
            # cached still dedups on the next attempt.
            obs = self.scheduler.obs
            if obs is not None:
                obs.state_transfer_event(
                    self.node_id, "fallback", missing=len(message.missing)
                )
            self._pending_state_transfer = None
            return
        wanted = 0
        verified = 0
        still_missing = set(transfer["missing"])
        for chunk_id, blob in message.chunks:
            if chunk_id not in still_missing:
                continue  # duplicate round (retried request): already held
            wanted += 1
            try:
                statetransfer.verify_chunk_blob(chunk_id, blob)
            except VerificationError:
                continue  # leave in missing
            verified += 1
            transfer["have"][chunk_id] = blob
            transfer["fetched"] += 1
            # Streaming install: each verified chunk is persisted into the
            # content-addressed cache immediately, so a crash mid-transfer
            # resumes without re-fetching anything already received.
            self.storage.write_state_chunk(chunk_id, blob)
        if wanted and not verified:
            # Every chunk we still needed from this round failed its content
            # address: the serving host is substituting state, not merely
            # re-sending a stale round. Re-requesting would loop forever.
            self._pending_state_transfer = None
            raise VerificationError(
                "state chunks do not match their content addresses"
            )
        transfer["missing"] = [
            cid for cid in transfer["missing"] if cid not in transfer["have"]
        ]
        self._request_missing_chunks()

    def _complete_chunked_install(self) -> None:
        transfer = self._pending_state_transfer
        metadata = transfer["metadata"]
        message: JoinResponse = transfer["message"]
        secrets: LedgerSecretStore = self.enclave.memory.get("ledger_secrets")
        try:
            self.store = statetransfer.assemble_store(
                metadata, transfer["have"], secrets
            )
        except (VerificationError, KVError):
            # A chunk passed its content address but failed decryption or
            # decode — only a mis-sealed producer can cause this. Drop the
            # transfer; the retry timer falls back to a fresh join.
            self._pending_state_transfer = None
            raise
        self.ledger = Ledger.from_snapshot_metadata(
            secrets,
            base_seqno=metadata["base_seqno"],
            txids=[TxID(v, s) for v, s in metadata["txids"]],
            leaf_hashes=list(metadata["leaf_hashes"]),
            last_signature_txid=TxID(*metadata["last_signature_txid"]),
        )
        base_seqno = metadata["base_seqno"]
        self._commit_scan = base_seqno
        self.indexer.last_indexed = base_seqno
        obs = self.scheduler.obs
        if obs is not None:
            obs.state_chunks_progress(
                self.node_id, transfer["fetched"], transfer["cached"]
            )
            obs.state_transfer_event(
                self.node_id,
                "installed",
                base_seqno=base_seqno,
                fetched=transfer["fetched"],
                cached=transfer["cached"],
            )
        self._pending_state_transfer = None
        self._finish_join(message, base_seqno)

    # ==================================================================
    # Disaster recovery (section 5.2)

    def start_recovered_service(
        self, salvaged_storage: HostStorage, service_subject: str,
        secret_seed: bytes | None = None,
    ) -> dict:
        """Start this node in recovery mode from salvaged ledger files.

        Restores the public state, mints a **new** service identity (the
        recovery is detectable by users), and waits for member recovery
        shares before private state can be decrypted. Returns a summary
        with the previous service identity for the opening proposal.
        """
        from repro.recovery.recovery import replay_public_ledger

        replay = replay_public_ledger(
            salvaged_storage, fast_path=self.config.replay_fast_path
        )
        obs = self.scheduler.obs
        if obs is not None:
            obs.recovery_event(
                self.node_id, "replay",
                verified_seqno=replay.verified_seqno,
                salvage_warnings=len(replay.warnings),
            )
        seed = secret_seed if secret_seed is not None else (
            self.node_id.encode() + self.scheduler.rng.getrandbits(128).to_bytes(16, "big")
        )
        from repro.crypto.certs import self_signed

        service_key = SigningKey.generate(seed + b"|recovered-service-identity")
        self.service_certificate = self_signed(service_subject, service_key)
        self.enclave.memory.put("service_key", service_key)
        self.node_certificate = issue(
            self.node_id, self.node_key.public_key, service_subject, service_key
        )
        # A fresh ledger secret generation for all new transactions; the
        # previous generation arrives later via recovery shares.
        previous_generation = 0
        row = replay.store.get(maps.LEDGER_SECRET, "current")
        if isinstance(row, dict):
            previous_generation = row.get("generation", 0)
        secrets = LedgerSecretStore(
            LedgerSecret.generate(seed + b"|ledger-secret", generation=previous_generation + 1)
        )
        self.enclave.memory.put("ledger_secrets", secrets)
        replay.ledger.secrets = secrets
        self.ledger = replay.ledger
        self.store = replay.store
        self.wire_obs(self.scheduler.obs)
        self._commit_scan = replay.verified_seqno
        self.indexer.last_indexed = replay.verified_seqno
        self._persisted_seqno = replay.verified_seqno

        self.consensus = ConsensusNode(
            node_id=self.node_id,
            ledger=self.ledger,
            scheduler=self.scheduler,
            host=self,
            initial_nodes={self.node_id},
            config=self.config.consensus,
            config_base_seqno=replay.verified_seqno,
        )
        # Seed consensus bookkeeping with the replayed history.
        for seqno in range(1, replay.verified_seqno + 1):
            self.consensus.view_history.note_append(self.ledger.txid_at(seqno))
        self.consensus.commit_seqno = replay.verified_seqno
        self.consensus.view = replay.last_view  # will be bumped below
        self.consensus.start_as_recovery_primary(replay.last_view + 1)

        # The recovered service runs on this node alone until others join:
        # record the new topology and status, replacing stale node rows.
        write_set = WriteSet()
        for node_id, _info in list(self.store.items(maps.NODES_INFO)):
            if node_id != self.node_id:
                write_set.remove(maps.NODES_INFO, node_id)
        write_set.put(maps.NODES_INFO, self.node_id, self._node_info_row(NodeStatus.TRUSTED.value))
        service_row = self.store.get(maps.SERVICE_INFO, "service") or {}
        write_set.put(maps.SERVICE_INFO, "service", dict(
            service_row,
            status=maps.SERVICE_WAITING_FOR_SHARES,
            certificate=self.service_certificate.to_dict(),
            previous_identity=replay.previous_service_identity,
        ))
        self._append_local_entry(write_set)
        self._append_signature_now()
        if obs is not None:
            obs.recovery_event(self.node_id, "awaiting_shares")
        return {
            "verified_seqno": replay.verified_seqno,
            "previous_service_identity": replay.previous_service_identity,
            "new_service_identity": self.service_certificate.to_dict(),
            "salvage_warnings": [w.describe() for w in replay.warnings],
        }

    def complete_private_recovery(
        self, previous_secrets: "LedgerSecret | list[LedgerSecret]"
    ) -> None:
        """The wrapping key was reconstructed from member shares: install
        the previous ledger secret generation(s) and decrypt the restored
        private state.

        Private write sets are replayed oldest-first over the restored
        public state, validating every AEAD tag as we go. The folding is a
        local reconstruction, not new ledger transactions — recovery
        happens before users reconnect, so merging at the current version
        is safe. Entries sealed under a generation that was never
        re-wrapped (and is therefore unrecoverable) are skipped: recovery
        is best-effort (section 5.2).
        """
        from repro.errors import LedgerError as _LedgerError
        from repro.kv.champ import ChampMap
        from repro.kv.tx import REMOVED

        if isinstance(previous_secrets, LedgerSecret):
            previous_secrets = [previous_secrets]
        secrets: LedgerSecretStore = self.enclave.memory.get("ledger_secrets")
        for secret in previous_secrets:
            secrets.add(secret)
        recovered = 0
        for entry in self.ledger.entries(1, self._commit_scan):
            if not entry.private_blob:
                continue
            try:
                write_set = self.ledger.decrypt_private(entry)
            except _LedgerError:
                continue  # generation not recoverable: best effort
            for map_name, updates in write_set.updates.items():
                if map_name.startswith("public:"):
                    continue  # already restored during public replay
                current = self.store._maps.get(map_name, ChampMap.empty())
                builder = current.transient()
                for key, value in updates.items():
                    if value is REMOVED:
                        builder.remove(key)
                    else:
                        builder.set(key, value)
                self.store._maps[map_name] = builder.freeze()
            recovered += 1
        self.store._history[self.store.version] = dict(self.store._maps)
        self.enclave.memory.put("recovered_private_entries", recovered)
        obs = self.scheduler.obs
        if obs is not None:
            obs.recovery_event(
                self.node_id, "private_recovery", recovered_entries=recovered
            )

    # ==================================================================
    # ConsensusHost interface

    def send_consensus_message(self, to: str, message: object) -> None:
        if not self.config.secure_channels:
            self.network.send(self.node_id, to, message)
            return
        if not self.channels.has_channel(to):
            return  # channel not yet established; retried by protocol
        if self.config.frame_coalescing:
            self._send_framed(to, message)
            return
        sealed = self.channels.seal(to, encode_message(message))
        payload = SealedConsensusMessage(
            sender=sealed.sender, counter=sealed.counter, box=sealed.box
        )
        self.network.send(self.node_id, to, payload)

    def _send_framed(self, to: str, message: object) -> None:
        """Queue ``message`` into this event's frame for ``to`` and put its
        segment on the wire immediately.

        The segment takes the exact network path (event, sequence number,
        latency draw) the sealed message would have taken — only the AEAD
        work moves, into one end-of-event seal per peer. The seal microtask
        draws no randomness and schedules nothing, so a traced run is
        bit-identical with coalescing on or off.
        """
        pending = self._pending_frames.get(to)
        if pending is None:
            pending = (PendingFrame(), [])
            self._pending_frames[to] = pending
        frame, payloads = pending
        raw = encode_message(message)
        index = len(payloads)
        payloads.append(raw)
        frame.payload_sizes.append(len(raw))
        if not self._frame_flush_armed:
            # Arm before the send: for out-of-event sends (bootstrap) the
            # hook runs synchronously, and it must run after the payload is
            # queued but sealing-before-delivery still holds (latency > 0).
            self._frame_flush_armed = True
            self.scheduler.at_event_end(self._seal_pending_frames)
        self.network.send(self.node_id, to, FrameSegment(frame=frame, index=index))

    def _seal_pending_frames(self) -> None:
        """End-of-event microtask: one AEAD seal per (this node, peer)."""
        pending = self._pending_frames
        self._pending_frames = {}
        self._frame_flush_armed = False
        for peer, (frame, payloads) in pending.items():
            sealed = self.channels.seal_frame(peer, payloads)
            frame.sender = sealed.sender
            frame.counter = sealed.counter
            frame.box = sealed.box
            frame.count = len(payloads)
            obs = self.scheduler.obs
            if obs is not None:
                obs.frame_sealed(
                    self.node_id,
                    len(payloads),
                    self.cost.sealing_cost(len(payloads), 1),
                )

    def apply_replicated_entry(self, entry: LedgerEntry) -> frozenset[str] | None:
        self.ledger.append(entry)
        write_set = self.ledger.decrypt_private(entry)
        self.store.apply_write_set(write_set, entry.txid.seqno)
        self._handle_node_info_updates(write_set)
        if entry.is_reconfiguration:
            return self._trusted_set()
        return None

    def truncate_to(self, seqno: int) -> None:
        self.ledger.truncate(seqno)
        self.store.rollback_to(seqno)

    def append_signature_entry(self, view: int) -> LedgerEntry:
        entry = self.ledger.build_signature_entry(view, self.node_id, self.node_key)
        self.ledger.append(entry)
        self.store.apply_write_set(entry.public_writes, entry.txid.seqno)
        self._txs_since_signature = 0
        obs = self.scheduler.obs
        if obs is not None:
            obs.signature_tx(
                self.node_id, view, entry.txid.seqno, self.cost.signature_cost
            )
        return entry

    def on_commit(self, seqno: int) -> None:
        self.store.compact(seqno)
        self._scan_committed(seqno)
        self._persist_ledger(seqno)
        self._maybe_snapshot(seqno)
        self._finalize_snapshot_if_ready()
        if self.consensus.is_primary:
            self._complete_retirements()

    def on_become_primary(self) -> None:
        self._retired_appended = set()

    def on_lose_primacy(self) -> None:
        """Fail pending forwarded requests: per section 4.3 the session is
        terminated when forwarding is no longer possible due to a primary
        change — the client retries (and re-discovers the primary)."""
        if self._batch_queue:
            # Queued-but-unexecuted batch writes redirect to the new primary
            # (or fail retryably); nothing was appended, so this is safe.
            pending_batch = self._batch_queue
            self._batch_queue = []
            self._batch_queue_bytes = 0
            if self._batch_drain_handle is not None:
                self._batch_drain_handle.cancel()
                self._batch_drain_handle = None
            self._redirect_batch(pending_batch)
        for request_id, (client_id, request) in list(self._pending_forwards.items()):
            del self._pending_forwards[request_id]
            self.network.send(
                self.node_id,
                client_id,
                ClientResponse(Response(
                    request.request_id,
                    status=503,
                    error="session terminated: primary changed during forwarding",
                )),
            )

    # ------------------------------------------------------------------
    # Committed-prefix processing

    def _scan_committed(self, commit_seqno: int) -> None:
        """Feed the indexer and track committed node statuses over the newly
        committed range (exactly once, in order)."""
        start = max(self._commit_scan, self.ledger.base_seqno)
        reload_app = False
        indexable: list[tuple[TxID, WriteSet]] = []
        for seqno in range(start + 1, commit_seqno + 1):
            entry = self.ledger.entry_at(seqno)
            write_set = self.ledger.decrypt_private(entry)
            indexable.append((entry.txid, write_set))
            for node_id, info in write_set.updates.get(maps.NODES_INFO, {}).items():
                if isinstance(info, dict):
                    self._on_committed_status(node_id, info.get("status"))
            if maps.MODULES in write_set.updates:
                reload_app = True
            rekey = write_set.updates.get(maps.LEDGER_SECRET, {}).get("rekey_request")
            if isinstance(rekey, dict):
                self._perform_rekey(rekey["new_generation"])
            if (
                maps.MEMBERS_KEYS in write_set.updates
                and maps.LEDGER_SECRET not in write_set.updates  # not genesis/rekey
                and self.consensus.is_primary
            ):
                # Membership changed: re-split the wrapping key so the new
                # consortium can (and only it can) recover (section 5.2).
                secrets = self.enclave.memory.get("ledger_secrets")
                if secrets is not None and len(secrets):
                    self._reprovision_recovery_shares(secrets.current())
        # One batched notification per commit advance: pipelined commits can
        # cover a whole execution batch at once, and the indexer guarantees
        # exactly-once, in-order processing regardless of batch shape.
        self.indexer.feed_batch(indexable)
        self._commit_scan = max(self._commit_scan, commit_seqno)
        if reload_app:
            self.reload_js_app()

    def _perform_rekey(self, generation: int) -> None:
        """A committed rekey request: derive the next ledger-secret
        generation in-enclave from the shared service key. Every trusted
        node derives the same secret without it touching the network; new
        writes seal under it, old generations stay readable (Table 1)."""
        secrets: LedgerSecretStore = self.enclave.memory.get("ledger_secrets")
        if secrets is None or generation in secrets.generations():
            return
        service_key = self.enclave.memory.get("service_key")
        if service_key is None:
            return  # not yet trusted with the service key
        seed = service_key.scalar.to_bytes(32, "big") + b"|rekey"
        secrets.add(LedgerSecret.generate(seed, generation=generation))
        if self.consensus.is_primary:
            # Re-provision the wrapped secret + recovery shares for the new
            # generation so disaster recovery keeps working (section 5.2).
            self._reprovision_recovery_shares(secrets.current())

    def _reprovision_recovery_shares(self, secret: LedgerSecret) -> None:
        from repro.recovery.shares import provision_recovery_shares

        members = {
            subject: bytes.fromhex(row["public_key"])
            for subject, row in self.store.items(maps.MEMBERS_KEYS)
            if isinstance(row, dict)
        }
        if not members:
            return
        info = self.store.get(maps.SERVICE_INFO, "service") or {}
        threshold = min(info.get("recovery_threshold", 1), len(members))
        secrets: LedgerSecretStore = self.enclave.memory.get("ledger_secrets")
        previous = tuple(
            secrets.for_generation(g)
            for g in secrets.generations()
            if g != secret.generation
        )
        tx = self.store.begin()
        ctx = RequestContext(
            Request(path="/internal/rekey"), tx, Caller("node", self.node_id), node=self
        )
        provision_recovery_shares(
            ctx, secret, members, threshold, self.scheduler.rng,
            previous_secrets=previous,
        )
        self._append_local_entry(tx.write_set)
        self._request_signature_soon()

    def reload_js_app(self) -> None:
        """Live code update (section 5): rebuild the application from the
        JS module and endpoint metadata committed in the governance maps."""
        module = self.store.get(maps.MODULES, "app")
        if not isinstance(module, dict) or "source" not in module:
            return
        endpoints = {
            name: metadata
            for name, metadata in self.store.items(maps.ENDPOINTS)
            if isinstance(metadata, dict)
        }
        from repro.app.jsapp.jsapp import build_js_app

        self.app = build_js_app(module["source"], endpoints or None)

    def _on_committed_status(self, node_id: str, status: str | None) -> None:
        if status is None:
            return
        self._committed_statuses[node_id] = status
        if node_id == self.node_id and status in (
            NodeStatus.RETIRING.value,
            NodeStatus.RETIRED.value,
        ):
            # Our own retirement is committed: stop writing, stay online
            # to replicate and vote until shut down (section 4.5).
            self.consensus.freeze_writes()
        if status == NodeStatus.RETIRED.value and node_id != self.node_id:
            # Keep replicating briefly so the retired node itself learns
            # its retirement committed (it stays online until the operator
            # shuts it down, section 4.5), then stop.
            grace = 2 * self.config.consensus.election_timeout_max

            def drop() -> None:
                if not self.stopped and self.consensus is not None:
                    self.consensus.remove_learner(node_id)

            self.scheduler.after(grace, drop)

    def _complete_retirements(self) -> None:
        """Second retirement step (section 4.5): once a RETIRING
        reconfiguration is committed, the primary records RETIRED."""
        for node_id, status in list(self._committed_statuses.items()):
            if status == NodeStatus.RETIRING.value and node_id not in self._retired_appended:
                self._retired_appended.add(node_id)
                row = self.store.get(maps.NODES_INFO, node_id)
                if not isinstance(row, dict):
                    continue
                write_set = WriteSet()
                write_set.put(
                    maps.NODES_INFO, node_id, dict(row, status=NodeStatus.RETIRED.value)
                )
                self._append_local_entry(write_set)
                self._request_signature_soon()

    def _persist_ledger(self, commit_seqno: int) -> None:
        """Write committed, signature-terminated chunks to host storage."""
        if commit_seqno <= self._persisted_seqno:
            return
        start = max(self._persisted_seqno, self.ledger.base_seqno)
        new_entries = list(self.ledger.entries(start + 1, commit_seqno))
        if not new_entries:
            return
        for chunk in chunk_entries(new_entries):
            # chunk_entries numbers chunks relative to the slice; rebuild
            # with absolute seqnos (they already carry their own txids).
            self.storage.write_chunk(chunk)
        self._persisted_seqno = commit_seqno

    def _maybe_snapshot(self, commit_seqno: int) -> None:
        interval = self.config.snapshot_interval
        if not interval or not self.consensus.is_primary:
            return
        if commit_seqno - self._last_snapshot_seqno < interval:
            return
        self._last_snapshot_seqno = commit_seqno
        metadata = self.ledger.snapshot_metadata(commit_seqno)
        # Serialized store state includes private-map plaintext, so the
        # snapshot is sealed under the current ledger secret before it can
        # touch host storage or the join path. The digest — and therefore
        # the receipt claim — covers sealed bytes only: integrity is
        # verifiable without decrypting.
        secret = self.ledger.secrets.current()
        metadata["secret_generation"] = secret.generation
        if self.config.delta_snapshots:
            # Incremental production: serialize + seal only maps that
            # changed since the previous snapshot; clean maps reuse their
            # previous sealed chunks (same content ⇒ same chunk id). The
            # receipt claim digests the manifest, which lists every chunk
            # id, so all chunks are transitively receipt-covered.
            built = statetransfer.build_chunked_snapshot(
                self.store,
                commit_seqno,
                secret,
                metadata,
                chunk_bytes=self.config.snapshot_chunk_bytes,
                baseline=self._snapshot_baseline,
            )
            digest = bytes(statetransfer.manifest_digest(built.metadata))
            obs = self.scheduler.obs
            if obs is not None:
                obs.snapshot_produced(self.node_id, commit_seqno, built.stats)
            pending = {
                "metadata": built.metadata,
                "chunks": built.chunks,
                "map_chunks": built.map_chunks,
                "table": self.store.map_table_at(commit_seqno),
                "generation": secret.generation,
            }
        else:
            # Legacy monolithic path: the whole store, one sealed blob, the
            # metadata (naming the generation) bound as AAD.
            data = self.store.serialize_at(commit_seqno)
            sealed = secret.seal_snapshot(commit_seqno, data, aad=encode_value(metadata))
            digest = bytes(sha256(sealed, encode_value(metadata)))
            pending = {"data": sealed, "metadata": metadata}
        # Snapshot evidence transaction (validated by receipt, section 4.4).
        write_set = WriteSet()
        write_set.put(
            maps.SNAPSHOT_EVIDENCE,
            commit_seqno,
            {"digest": digest.hex(), "seqno": commit_seqno},
        )
        claims = {"snapshot_digest": digest.hex()}
        entry = self._append_local_entry(write_set, claims=claims)
        pending["evidence_seqno"] = entry.txid.seqno
        pending["claims"] = claims
        self._pending_snapshot = pending
        self._request_signature_soon()

    def _finalize_snapshot_if_ready(self) -> None:
        pending = getattr(self, "_pending_snapshot", None)
        if pending is None:
            return
        evidence_seqno = pending["evidence_seqno"]
        if self.consensus.commit_seqno < evidence_seqno:
            return
        if self.ledger.next_signature_seqno(evidence_seqno) is None:
            return
        receipt = issue_receipt(
            self.ledger, evidence_seqno, self.node_certificate, claims=pending["claims"]
        )
        package = {
            "metadata": pending["metadata"],
            "receipt": receipt.to_dict(),
        }
        base_seqno = pending["metadata"]["base_seqno"]
        if "chunks" in pending:
            package["chunks"] = pending["chunks"]
            self._latest_snapshot = package
            # Persist the chunk set (content-addressed, so re-writing a
            # reused chunk is skipped) and prune chunks no manifest we still
            # serve references; the manifest file makes the snapshot
            # reconstructable from disk alone.
            for chunk_id, blob in pending["chunks"].items():
                if self.storage.read_state_chunk(chunk_id) is None:
                    self.storage.write_state_chunk(chunk_id, blob)
            self.storage.prune_state_chunks(set(pending["chunks"]))
            for name in self.storage.list_files("manifest_"):
                self.storage.delete(name, sync=False)
            self.storage.write(
                f"manifest_{base_seqno}.bin",
                encode_value(pending["metadata"]),
                sync=True,
            )
            # Next delta builds against this snapshot's table + chunks.
            self._snapshot_baseline = statetransfer.SnapshotBaseline(
                table=pending["table"],
                map_chunks=pending["map_chunks"],
                generation=pending["generation"],
            )
        else:
            package["data"] = pending["data"]
            self._latest_snapshot = package
            self.storage.write_snapshot(base_seqno, pending["data"])
        self._pending_snapshot = None

    # ==================================================================
    # Local append path (primary)

    def _trusted_set(self) -> frozenset[str]:
        return frozenset(
            node_id
            for node_id, info in self.store.items(maps.NODES_INFO)
            if isinstance(info, dict) and info.get("status") == NodeStatus.TRUSTED.value
        )

    def _handle_node_info_updates(self, write_set: WriteSet) -> None:
        """Side effects of nodes.info changes: channel establishment for new
        peers and learner bookkeeping for retiring nodes."""
        for node_id, info in write_set.updates.get(maps.NODES_INFO, {}).items():
            if not isinstance(info, dict):
                continue
            dh_hex = info.get("dh_public")
            if node_id != self.node_id and dh_hex and not self.channels.has_channel(node_id):
                self.channels.establish(node_id, bytes.fromhex(dh_hex))
            if info.get("status") == NodeStatus.RETIRING.value:
                self.consensus.note_retiring(node_id)

    def _append_local_entry(
        self, write_set: WriteSet, claims: dict | None = None
    ) -> LedgerEntry:
        """Append a locally produced transaction (primary only): apply to
        the store, frame as a ledger entry, and hand to consensus."""
        trusted_before = self._trusted_set()
        seqno = self.ledger.last_seqno + 1
        self.store.apply_write_set(write_set, seqno)
        trusted_after = self._trusted_set()
        is_reconfig = trusted_after != trusted_before
        entry = self.ledger.build_entry(
            self.consensus.view,
            write_set,
            kind=EntryKind.RECONFIGURATION if is_reconfig else EntryKind.USER,
            claims=claims,
        )
        if claims:
            # Only the digest lands in the Merkle leaf; the executing node
            # retains the claims so receipts can expose them (section 3.5).
            self._claims_by_seqno[seqno] = claims
        self.ledger.append(entry)
        self._handle_node_info_updates(write_set)
        self.consensus.note_local_append(
            entry, trusted_after if is_reconfig else None
        )
        self._txs_since_signature += 1
        self._arm_replication()
        self._arm_signature_flush()
        return entry

    def _append_signature_now(self) -> None:
        entry = self.append_signature_entry(self.consensus.view)
        self.consensus.note_local_append(entry, None)
        self._arm_replication()

    def _request_signature_soon(self) -> None:
        self._arm_signature_flush(immediate=True)

    def _arm_signature_flush(self, immediate: bool = False) -> None:
        if self._sig_flush_armed:
            if not immediate:
                return
            # An immediate request overrides a pending (possibly long) flush.
            if self._sig_flush_handle is not None:
                self._sig_flush_handle.cancel()
        self._sig_flush_armed = True
        delay = 0.0 if immediate else self.config.signature_flush_time

        def flush() -> None:
            self._sig_flush_armed = False
            self._sig_flush_handle = None
            if self.stopped or not self.consensus or not self.consensus.is_primary:
                return
            if self._txs_since_signature > 0:
                self._append_signature_now()

        self._sig_flush_handle = self.scheduler.after(delay, flush)

    def _arm_replication(self) -> None:
        if self._replication_armed:
            return
        self._replication_armed = True

        def push() -> None:
            self._replication_armed = False
            if self.stopped or not self.consensus:
                return
            self.consensus.replicate_now()

        self.scheduler.after(self.config.replication_interval, push)

    # ==================================================================
    # Network dispatch

    def _on_network_message(self, src: str, payload: object) -> None:
        if self.stopped:
            return
        if isinstance(payload, FrameSegment):
            frame = payload.frame
            if frame.box is None:
                return  # sender crashed before its end-of-event seal ran
            try:
                raw = self._frame_assembler.accept(
                    frame.sender, frame.counter, frame.box, frame.count, payload.index
                )
            except VerificationError:
                return  # unknown peer or tampered frame: drop
            if raw is not None and self.consensus is not None:
                self.consensus.dispatch(decode_message(raw))
            return
        if isinstance(payload, SealedConsensusMessage):
            try:
                raw = self.channels.open(
                    SealedMessage(sender=payload.sender, counter=payload.counter, box=payload.box)
                )
            except VerificationError:
                return  # unknown peer or tampered box: drop
            if self.consensus is not None:
                self.consensus.dispatch(decode_message(raw))
            return
        if isinstance(payload, ClientRequest):
            self._enqueue_request(src, payload.request)
            return
        if isinstance(payload, ForwardedRequest):
            self._on_forwarded_request(src, payload)
            return
        if isinstance(payload, ForwardedResponse):
            self._on_forwarded_response(payload)
            return
        if isinstance(payload, JoinRequest):
            self._on_join_request(src, payload)
            return
        if isinstance(payload, JoinResponse):
            self._on_join_response(src, payload)
            return
        if isinstance(payload, StateChunkRequest):
            self._on_state_chunk_request(src, payload)
            return
        if isinstance(payload, StateChunkResponse):
            self._on_state_chunk_response(src, payload)
            return
        if isinstance(payload, ChannelHello):
            self.channels.establish(payload.sender, payload.dh_public)
            return
        # Plain consensus message (secure_channels disabled).
        if self.consensus is not None:
            self.consensus.dispatch(payload)

    # ==================================================================
    # Frontend: request scheduling and execution

    def _enqueue_request(self, client_id: str, request: Request) -> None:
        """Admit a request into the worker pool; processing happens after
        the calibrated service time (the simulated compute cost)."""
        request = Request(
            path=request.path,
            body=request.body,
            credentials=request.credentials,
            request_id=request.request_id,
            client_id=client_id,
            session_id=request.session_id,
            after_txid=request.after_txid,
        )
        read_only = self._is_read_only(request)
        if (
            not read_only
            and self.config.batch_execution
            and self.consensus is not None
            and self.consensus.can_accept_writes
        ):
            self._enqueue_batch(request, origin_node=None)
            return
        service_time = self.cost.read_cost() if read_only else self.cost.write_cost(
            self._backup_count()
        )
        worker = min(range(len(self._workers)), key=lambda i: self._workers[i])
        start = max(self.scheduler.now, self._workers[worker])
        completion = start + service_time
        self._workers[worker] = completion
        obs = self.scheduler.obs
        if obs is not None:
            busy = sum(1 for free_at in self._workers if free_at > self.scheduler.now)
            obs.begin_execute(
                self.node_id,
                request,
                read_only,
                start - self.scheduler.now,
                service_time,
                busy,
            )
        self.scheduler.at(
            completion, lambda: self._process_request(request, worker)
        )

    def _backup_count(self) -> int:
        if self.consensus is None:
            return 0
        return max(0, len(self.consensus.configurations.current.nodes) - 1)

    def _is_read_only(self, request: Request) -> bool:
        endpoint = self._lookup_endpoint(request.path)
        return endpoint is not None and endpoint.read_only

    def _lookup_endpoint(self, path: str):
        if path.startswith("/app/"):
            return self.app.lookup(path[len("/app/"):])
        if path.startswith("/gov/") and self.governance_app is not None:
            return self.governance_app.lookup(path[len("/gov/"):])
        if path.startswith("/node/"):
            from repro.node.endpoints import BUILTIN_ENDPOINTS

            return BUILTIN_ENDPOINTS.get(path[len("/node/"):])
        return None

    def _respond(self, request: Request, response: Response) -> None:
        self.network.send(self.node_id, request.client_id, ClientResponse(response))

    def _process_request(self, request: Request, worker: int) -> None:
        if self.stopped:
            return
        obs = self.scheduler.obs
        if obs is None:
            self._process_request_inner(request, worker)
            return
        obs.enter_execute(self.node_id, request.request_id)
        try:
            self._process_request_inner(request, worker)
        finally:
            obs.finish_execute(self.node_id, request.request_id)

    def _process_request_inner(self, request: Request, worker: int) -> None:
        self.requests_processed += 1
        endpoint = self._lookup_endpoint(request.path)
        if endpoint is None:
            self._respond(
                request,
                Response(request.request_id, status=404, error=f"no endpoint {request.path}"),
            )
            return
        if self.store is None or self.consensus is None:
            self._respond(
                request,
                Response(request.request_id, status=503, error="node not yet part of a service"),
            )
            return

        if endpoint.read_only:
            if self.config.read_offload:
                # Read offload (paper's read-scaling design): serve locally
                # from the last-committed snapshot with freshness metadata;
                # session consistency comes from the after_txid floor, not
                # from following the forwarded session to the primary.
                self._execute_read(request, endpoint, offload=True)
                return
            # Session consistency: once a session was forwarded to the
            # primary, subsequent reads follow it too (section 4.3).
            if request.session_id and request.session_id in self._sessions_forwarded:
                self._forward_or_fail(request)
                return
            self._execute_read(request, endpoint)
            return

        if not self.consensus.can_accept_writes:
            self._forward_or_fail(request)
            return
        response = self._execute_write(request, endpoint, worker)
        if response is not None:
            self._respond(request, response)

    def _forward_or_fail(self, request: Request) -> None:
        leader = self.consensus.leader_id
        if leader is None or leader == self.node_id or self.network.is_down(leader):
            self._respond(
                request,
                Response(
                    request.request_id,
                    status=503,
                    error="no known primary; retry another node",
                ),
            )
            return
        self.forwards += 1
        obs = self.scheduler.obs
        if obs is not None:
            obs.request_forwarded(
                self.node_id, request.request_id, self.cost.forwarding_cost
            )
        if request.session_id:
            self._sessions_forwarded.add(request.session_id)
        self._pending_forwards[request.request_id] = (request.client_id, request)
        self.network.send(
            self.node_id,
            leader,
            ForwardedRequest(request=request, origin_node=self.node_id),
            extra_delay=self.cost.forwarding_cost,
        )

    def _on_forwarded_request(self, src: str, payload: ForwardedRequest) -> None:
        request = payload.request
        endpoint = self._lookup_endpoint(request.path)
        if endpoint is None or self.consensus is None or not self.consensus.can_accept_writes:
            response = Response(request.request_id, status=503, error="not primary")
        elif self.config.batch_execution and not endpoint.read_only:
            # Forwarded writes join the primary's execution batch like any
            # other write; the reply returns through the forwarding origin.
            self._enqueue_batch(request, origin_node=payload.origin_node)
            return
        else:
            worker = min(range(len(self._workers)), key=lambda i: self._workers[i])
            obs = self.scheduler.obs
            if obs is None:
                response = self._execute_write(request, endpoint, worker, defer_ok=False)
            else:
                # Forwarded execution runs immediately on arrival (the
                # origin node already charged the service time).
                obs.begin_execute(
                    self.node_id, request, False, 0.0, 0.0, 0, forwarded=True
                )
                obs.enter_execute(self.node_id, request.request_id)
                try:
                    response = self._execute_write(
                        request, endpoint, worker, defer_ok=False
                    )
                finally:
                    obs.finish_execute(self.node_id, request.request_id)
        self.network.send(
            self.node_id,
            payload.origin_node,
            ForwardedResponse(response=response, origin_request_id=request.request_id),
        )

    def _on_forwarded_response(self, payload: ForwardedResponse) -> None:
        pending = self._pending_forwards.pop(payload.origin_request_id, None)
        if pending is None:
            return
        client_id, request = pending
        self.network.send(self.node_id, client_id, ClientResponse(payload.response))
        del request

    # ------------------------------------------------------------------
    # Pipelined batch execution (the primary's hot path)

    def _enqueue_batch(self, request: Request, origin_node: str | None) -> None:
        """Queue a write for the next execution batch.

        Adaptive sizing: the batch closes immediately at
        ``batch_max_requests`` requests or ``batch_max_bytes`` of request
        payload, and otherwise drains ``batch_latency_budget`` after the
        first write was queued — under load batches fill, when idle a lone
        write only waits out the (sub-millisecond) latency budget.
        """
        self._batch_queue.append((request, origin_node))
        self._batch_queue_bytes += len(encode_value(request.body))
        if (
            len(self._batch_queue) >= self.config.batch_max_requests
            or self._batch_queue_bytes >= self.config.batch_max_bytes
        ):
            if self._batch_drain_handle is not None:
                self._batch_drain_handle.cancel()
                self._batch_drain_handle = None
            self._drain_batch()
            return
        if self._batch_drain_handle is None:
            self._batch_drain_handle = self.scheduler.after(
                self.config.batch_latency_budget, self._drain_batch
            )

    def _drain_batch(self) -> None:
        """Close the current batch and schedule its execution on the
        least-loaded worker after the amortized batched service time."""
        self._batch_drain_handle = None
        if self.stopped or not self._batch_queue:
            return
        batch = self._batch_queue
        batch_bytes = self._batch_queue_bytes
        self._batch_queue = []
        self._batch_queue_bytes = 0
        if self.consensus is None or not self.consensus.can_accept_writes:
            self._redirect_batch(batch)
            return
        n = len(batch)
        service_time = self.cost.batched_write_cost(n, self._backup_count())
        worker = min(range(len(self._workers)), key=lambda i: self._workers[i])
        start = max(self.scheduler.now, self._workers[worker])
        completion = start + service_time
        self._workers[worker] = completion
        obs = self.scheduler.obs
        if obs is not None:
            queue_wait = start - self.scheduler.now
            busy = sum(1 for free_at in self._workers if free_at > self.scheduler.now)
            obs.pipeline_batch(self.node_id, n, batch_bytes, queue_wait, service_time)
            per_request = service_time / n
            for request, origin_node in batch:
                obs.begin_execute(
                    self.node_id,
                    request,
                    False,
                    queue_wait,
                    per_request,
                    busy,
                    forwarded=origin_node is not None,
                    batched=True,
                )
        batch_seq = self._batch_seq
        self._batch_seq += 1
        self.scheduler.at(
            completion, lambda: self._on_batch_complete(batch_seq, batch, worker)
        )

    def _on_batch_complete(self, batch_seq: int, batch: list, worker: int) -> None:
        """A batch finished executing on its worker. Batches run on parallel
        workers but *apply* (append + respond) strictly in drain order, so
        the ledger keeps the serial oracle's arrival order even when a
        small batch overtakes a larger earlier one."""
        if self.stopped:
            return
        self._batches_completed[batch_seq] = (batch, worker)
        while self._batch_apply_next in self._batches_completed:
            ready, ready_worker = self._batches_completed.pop(self._batch_apply_next)
            self._batch_apply_next += 1
            self._execute_batch(ready, ready_worker)

    def _execute_batch(
        self, batch: list[tuple[Request, str | None]], worker: int
    ) -> None:
        """Apply one drained batch: every request executes speculatively
        against the batch-start snapshot, conflicting requests re-execute
        against the live store, and each surviving write set is appended in
        arrival order — byte-identical ledger entries, seqnos, and signature
        positions to serial execution."""
        if self.stopped:
            return
        obs = self.scheduler.obs
        if self.consensus is None or not self.consensus.can_accept_writes:
            # Primacy was lost while the batch sat in the pipe; nothing was
            # executed or appended, so redirecting is safe.
            if obs is not None:
                for request, _origin in batch:
                    obs.finish_execute(self.node_id, request.request_id, status=503)
            self._redirect_batch(batch)
            return
        tracer = self.scheduler.tracer
        if tracer is not None:
            # Fold the batch boundary into the trace digest: replay equality
            # then also proves batch composition is deterministic.
            tracer.record_mark(
                f"pipeline.batch|{self.node_id}|{self.ledger.last_seqno + 1}"
                f"|{len(batch)}"
            )
        base_maps, base_version = self.store.snapshot_view()
        written_keys: set[tuple[str, object]] = set()
        written_maps: set[str] = set()
        outgoing: list[tuple[Request, str | None, Response, float]] = []
        sig_delay = 0.0
        for request, origin_node in batch:
            self.requests_processed += 1
            if obs is not None:
                obs.enter_execute(self.node_id, request.request_id)
            try:
                response, signed = self._execute_batched_request(
                    request, base_maps, base_version, written_keys, written_maps
                )
            finally:
                if obs is not None:
                    obs.finish_execute(self.node_id, request.request_id)
            if signed:
                # The triggering request pays for the signature, exactly as
                # in serial execution (Figure 8's latency spike); later
                # responses in the batch queue behind it.
                self._workers[worker] += self.cost.signature_cost
                sig_delay += self.cost.signature_cost
            outgoing.append((request, origin_node, response, sig_delay))
        for request, origin_node, response, delay in outgoing:
            self._send_batched_response(request, origin_node, response, delay)

    def _execute_batched_request(
        self,
        request: Request,
        base_maps: dict,
        base_version: int,
        written_keys: set[tuple[str, object]],
        written_maps: set[str],
    ) -> tuple[Response, bool]:
        """Execute one request of a batch. Returns (response, signed)."""
        endpoint = self._lookup_endpoint(request.path)
        if endpoint is None:
            return (
                Response(
                    request.request_id,
                    status=404,
                    error=f"no endpoint {request.path}",
                ),
                False,
            )
        try:
            self._require_service_open(request)
            caller = self._authenticate(request, endpoint)
            # Speculative execution against the shared batch-start snapshot.
            tx = Transaction(base_maps, base_version)
            ctx = RequestContext(request, tx, caller, node=self)
            body = endpoint.handler(ctx)
            conflict = any(
                (map_name, key) in written_keys
                for map_name, key, _seen in tx.reads()
            ) or bool(tx.scanned_maps() & written_maps)
            if conflict:
                # An earlier request in this batch wrote something this one
                # read (or scanned a map it wrote): roll the speculative tx
                # back and re-execute against the live store, which already
                # holds every earlier write — exact serial semantics.
                if self.scheduler.obs is not None:
                    self.scheduler.obs.pipeline_conflict(self.node_id, request.path)
                tx = self.store.begin()
                ctx = RequestContext(request, tx, caller, node=self)
                body = endpoint.handler(ctx)
            self._check_app_write_set(request, tx.write_set)
            if tx.is_read_only:
                txid = self.ledger.txid_at(
                    min(self.store.version, self.ledger.last_seqno)
                )
                return Response(request.request_id, body=body, txid=str(txid)), False
            for map_name, entries in tx.write_set.updates.items():
                written_maps.add(map_name)
                for key in entries:
                    written_keys.add((map_name, key))
            entry = self._append_local_entry(tx.write_set, claims=ctx.claims)
            self.writes_executed += 1
            response = Response(request.request_id, body=body, txid=str(entry.txid))
            if self._txs_since_signature >= self.config.signature_interval:
                self._append_signature_now()
                return response, True
            return response, False
        except CCFError as exc:
            return self._error_response(request, exc), False

    def _send_batched_response(
        self,
        request: Request,
        origin_node: str | None,
        response: Response,
        delay: float,
    ) -> None:
        def deliver() -> None:
            if self.stopped:
                return
            if origin_node is None:
                self._respond(request, response)
            else:
                self.network.send(
                    self.node_id,
                    origin_node,
                    ForwardedResponse(
                        response=response, origin_request_id=request.request_id
                    ),
                )

        if delay > 0:
            self.scheduler.after(delay, deliver)
        else:
            deliver()

    def _redirect_batch(self, batch: list[tuple[Request, str | None]]) -> None:
        """The queued batch can no longer execute here (primacy lost):
        direct requests re-enter the forwarding path, forwarded ones bounce
        back to their origin as a retryable 503."""
        for request, origin_node in batch:
            if origin_node is None:
                self._forward_or_fail(request)
            else:
                self.network.send(
                    self.node_id,
                    origin_node,
                    ForwardedResponse(
                        response=Response(
                            request.request_id, status=503, error="not primary"
                        ),
                        origin_request_id=request.request_id,
                    ),
                )

    # ------------------------------------------------------------------
    # Execution

    def _authenticate(self, request: Request, endpoint) -> Caller:
        reader = auth_module.StoreReader(self.store.get)
        return auth_module.authenticate(request, endpoint.auth_policy, reader)

    def _require_service_open(self, request: Request) -> None:
        if request.path.startswith("/app/"):
            info = self.store.get(maps.SERVICE_INFO, "service") or {}
            if info.get("status") != maps.SERVICE_OPEN:
                raise ServiceUnavailableError(
                    "service is not open to users (status: "
                    f"{info.get('status', 'unknown')})"
                )

    def _execute_read(self, request: Request, endpoint, offload: bool = False) -> None:
        try:
            self._require_service_open(request)
            caller = self._authenticate(request, endpoint)
            if offload and not self.is_primary:
                # Backups serve from the last-committed snapshot: nothing
                # speculative can leak into (or be silently missing from)
                # an offloaded read.
                served_version = min(self.consensus.commit_seqno, self.store.version)
                served_version = max(
                    served_version, self.store.earliest_retained_version()
                )
                tx = self.store.begin_at(served_version)
            else:
                # The primary serves current state: read-your-writes for
                # sessions that stayed on the primary.
                served_version = self.store.version
                tx = self.store.begin()
            if request.after_txid:
                self._check_read_freshness(request.after_txid, served_version)
            ctx = RequestContext(request, tx, caller, node=self)
            body = endpoint.handler(ctx)
            # Read-only: reply with the ID of the last applied transaction
            # (section 3.4).
            txid = self.ledger.txid_at(min(served_version, self.ledger.last_seqno))
            self.reads_executed += 1
            response = Response(request.request_id, body=body, txid=str(txid))
            if offload:
                response.freshness = self._freshness_metadata(served_version)
                if self.scheduler.obs is not None:
                    self.scheduler.obs.offloaded_read(self.node_id, behind=False)
            self._respond(request, response)
        except CCFError as exc:
            if offload and isinstance(exc, (ReadBehindError, ReadRolledBackError)):
                if self.scheduler.obs is not None:
                    self.scheduler.obs.offloaded_read(self.node_id, behind=True)
            self._respond(request, self._error_response(request, exc))

    def _check_read_freshness(self, after_text: str, served_version: int) -> None:
        """Enforce a read's ``after_txid`` freshness floor: serve only when
        the served snapshot provably includes that exact transaction, else
        raise a *typed* error — behind (retryable) or rolled back (the
        floor can never commit). Never a silent stale answer."""
        try:
            after = TxID.parse(after_text)
        except CCFError:
            raise KVError(f"malformed after_txid {after_text!r}") from None
        status = self.consensus.status_of(after)
        if status.value == "Invalid":
            raise ReadRolledBackError(
                f"freshness floor {after_text} was rolled back and can "
                "never commit; reconcile state derived from it",
                after_txid=after_text,
            )
        if after.seqno <= served_version and self.ledger.has_txid(after):
            return
        raise ReadBehindError(
            f"snapshot at seqno {served_version} does not yet include "
            f"{after_text}; retry here later or read elsewhere",
            after_txid=after_text,
        )

    def _freshness_metadata(self, served_version: int) -> dict:
        """Metadata letting a client audit an offloaded read's freshness:
        the served snapshot seqno, this node's commit seqno, and the latest
        signature-anchored TxID at or below the served snapshot — the
        client can fetch that anchor's receipt (/node/receipt) to bind the
        snapshot to the signed Merkle root."""
        anchor_seqno = self.ledger.prev_signature_seqno(served_version)
        freshness = {
            "served_seqno": served_version,
            "commit_seqno": self.consensus.commit_seqno,
        }
        if anchor_seqno is not None:
            freshness["signature_txid"] = str(self.ledger.txid_at(anchor_seqno))
        return freshness

    @staticmethod
    def _check_app_write_set(request: Request, write_set: WriteSet) -> None:
        """Section 6.1: application logic may read but never write CCF's
        internal and governance maps — those change only through governance
        proposals and the framework itself."""
        if not request.path.startswith("/app/"):
            return
        for map_name in write_set.maps():
            if map_name.startswith(maps.GOV_PREFIX) or map_name.startswith(
                maps.INTERNAL_PREFIX
            ):
                raise AuthorizationError(
                    f"application logic may not write to {map_name}"
                )

    def _execute_write(
        self, request: Request, endpoint, worker: int, defer_ok: bool = True
    ) -> Response | None:
        try:
            self._require_service_open(request)
            caller = self._authenticate(request, endpoint)
            tx = self.store.begin()
            ctx = RequestContext(request, tx, caller, node=self)
            body = endpoint.handler(ctx)
            self._check_app_write_set(request, tx.write_set)
            if tx.is_read_only:
                txid = self.ledger.txid_at(min(self.store.version, self.ledger.last_seqno))
                return Response(request.request_id, body=body, txid=str(txid))
            entry = self._append_local_entry(tx.write_set, claims=ctx.claims)
            self.writes_executed += 1
            response = Response(request.request_id, body=body, txid=str(entry.txid))
            if self._txs_since_signature >= self.config.signature_interval:
                # The triggering request pays for the signature: its
                # response (and this worker) are delayed by the signing
                # cost — Figure 8's periodic latency spike.
                self._append_signature_now()
                self._workers[worker] += self.cost.signature_cost
                if defer_ok:
                    self.scheduler.after(
                        self.cost.signature_cost,
                        lambda: self._respond(request, response),
                    )
                    return None
            return response
        except CCFError as exc:
            return self._error_response(request, exc)

    def _error_response(self, request: Request, exc: CCFError) -> Response:
        from repro.errors import GovernanceError

        status_by_type = {
            AuthenticationError: 401,
            AuthorizationError: 403,
            ServiceUnavailableError: 503,
            # 425 Too Early: the offloaded snapshot is behind the requested
            # freshness floor — retryable here or on another node.
            ReadBehindError: 425,
            # 410 Gone: the freshness floor was rolled back and can never
            # commit — not retryable as-is.
            ReadRolledBackError: 410,
            GovernanceError: 400,
            KVError: 400,
        }
        status = 500
        for exc_type, code in status_by_type.items():
            if isinstance(exc, exc_type):
                status = code
                break
        return Response(request.request_id, status=status, error=str(exc))

    def certificate_for_node(self, node_id: str) -> Certificate:
        """The service-endorsed identity certificate for ``node_id``.

        Trusted nodes share the service key (Table 1), so any of them can
        produce the endorsement for a peer's recorded public key.
        """
        if node_id == self.node_id:
            return self.node_certificate
        row = self.store.get(maps.NODES_INFO, node_id)
        if not isinstance(row, dict) or "public_key" not in row:
            raise KVError(f"no recorded identity for node {node_id}")
        service_key = self.enclave.memory.get("service_key")
        return issue(
            node_id,
            VerifyingKey.decode(bytes.fromhex(row["public_key"])),
            self.service_certificate.subject,
            service_key,
        )

    # ==================================================================
    # Historical queries (section 3.4)

    def historical_range(self, start_seqno: int, end_seqno: int):
        """Decrypted write sets of committed entries in [start, end]."""
        end = min(end_seqno, self.consensus.commit_seqno if self.consensus else 0)
        result = []
        for entry in self.ledger.entries(max(1, start_seqno), end):
            result.append(self.ledger.decrypt_private(entry))
        return result

    # ==================================================================
    # Lifecycle

    def crash(self) -> None:
        """Simulate a machine failure: enclave memory is lost, timers die,
        the network endpoint goes dark. Host storage survives."""
        self.stopped = True
        if self.consensus is not None:
            self.consensus.stop()
        self.enclave.destroy()
        self.network.crash(self.node_id)

    @property
    def is_primary(self) -> bool:
        return self.consensus is not None and self.consensus.is_primary

    def tx_status(self, txid: TxID) -> str:
        return self.consensus.status_of(txid).value
