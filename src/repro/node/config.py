"""Node configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.raft import ConsensusConfig
from repro.errors import ConfigurationError
from repro.perf.costmodel import CostModel


@dataclass(frozen=True)
class NodeConfig:
    """Everything that parameterizes one CCF node.

    ``signature_interval`` is the number of transactions between signature
    transactions (Figure 8 uses 100); ``signature_flush_time`` bounds the
    commit latency of a trailing batch when traffic stops.
    """

    platform: str = "sgx"  # "sgx", "snp", or "virtual"
    runtime: str = "native"  # "native" (C++ analog) or "js"
    worker_threads: int = 10
    signature_interval: int = 100
    signature_flush_time: float = 0.05
    snapshot_interval: int = 0  # committed txs between snapshots; 0 = off
    replication_interval: float = 0.002  # primary push cadence for new entries
    request_timeout: float = 1.0  # frontend-side deadline for forwarded requests
    join_retry_interval: float = 1.0  # joiner re-sends until admitted + recorded
    secure_channels: bool = True  # seal node-to-node traffic (X25519 + AEAD)
    accept_virtual_attestation: bool = False
    consensus: ConsensusConfig = field(default_factory=ConsensusConfig)
    cost_model: CostModel | None = None
    # Pipelined execution (PR 8). When ``batch_execution`` is on, the
    # primary drains queued writes into execution batches applied against a
    # single KV snapshot, amortizing ledger/replication overhead per the
    # cost model's batch_overhead_fraction. Batch size is adaptive, bounded
    # by all three budgets below: a batch closes at ``batch_max_requests``
    # requests or ``batch_max_bytes`` of request payload, and otherwise
    # drains ``batch_latency_budget`` seconds after the first queued write.
    batch_execution: bool = False
    batch_max_requests: int = 50
    batch_max_bytes: int = 65536
    batch_latency_budget: float = 0.0005
    # Serve read-only requests locally from the last-committed snapshot on
    # any node (instead of forwarding reads of forwarded sessions to the
    # primary), with TxID + receipt-claim freshness metadata on responses.
    read_offload: bool = False
    # Incremental state transfer (PR 9). With ``delta_snapshots`` on,
    # snapshot production serializes only maps that changed since the last
    # snapshot into content-addressed sealed chunks (~``snapshot_chunk_bytes``
    # of canonical rows each), reusing prior chunks for clean maps, and the
    # join protocol ships a signed manifest first so joiners fetch only the
    # chunks they don't already hold, ``join_chunk_batch`` ids per round.
    # Off = legacy monolithic sealed-blob snapshots and joins.
    delta_snapshots: bool = True
    snapshot_chunk_bytes: int = 16384
    join_chunk_batch: int = 16
    # Batched ledger replay during disaster recovery (two-phase: structural
    # apply, then deferred signature verification below the anchor). The
    # serial replay remains as the differential-testing oracle.
    replay_fast_path: bool = True
    # Coalesced sealed wire frames (PR 10). All consensus messages a node
    # produces for one peer within one scheduler event share a single AEAD
    # seal and counter increment; segments still travel (and take latency
    # draws) as individual messages, so traced runs are bit-identical with
    # this on or off. Requires secure_channels (plain sends are unaffected).
    frame_coalescing: bool = True

    def __post_init__(self) -> None:
        if self.signature_interval < 1:
            raise ConfigurationError("signature_interval must be >= 1")
        if self.worker_threads < 1:
            raise ConfigurationError("worker_threads must be >= 1")
        if self.batch_max_requests < 1:
            raise ConfigurationError("batch_max_requests must be >= 1")
        if self.batch_max_bytes < 1:
            raise ConfigurationError("batch_max_bytes must be >= 1")
        if self.batch_latency_budget < 0:
            raise ConfigurationError("batch_latency_budget must be >= 0")
        if self.snapshot_chunk_bytes < 256:
            raise ConfigurationError("snapshot_chunk_bytes must be >= 256")
        if self.join_chunk_batch < 1:
            raise ConfigurationError("join_chunk_batch must be >= 1")

    def resolve_cost_model(self) -> CostModel:
        if self.cost_model is not None:
            return self.cost_model
        return CostModel(
            runtime=self.runtime,
            platform=self.platform,
            worker_threads=self.worker_threads,
        )
