"""Node configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.raft import ConsensusConfig
from repro.errors import ConfigurationError
from repro.perf.costmodel import CostModel


@dataclass(frozen=True)
class NodeConfig:
    """Everything that parameterizes one CCF node.

    ``signature_interval`` is the number of transactions between signature
    transactions (Figure 8 uses 100); ``signature_flush_time`` bounds the
    commit latency of a trailing batch when traffic stops.
    """

    platform: str = "sgx"  # "sgx", "snp", or "virtual"
    runtime: str = "native"  # "native" (C++ analog) or "js"
    worker_threads: int = 10
    signature_interval: int = 100
    signature_flush_time: float = 0.05
    snapshot_interval: int = 0  # committed txs between snapshots; 0 = off
    replication_interval: float = 0.002  # primary push cadence for new entries
    request_timeout: float = 1.0  # frontend-side deadline for forwarded requests
    join_retry_interval: float = 1.0  # joiner re-sends until admitted + recorded
    secure_channels: bool = True  # seal node-to-node traffic (X25519 + AEAD)
    accept_virtual_attestation: bool = False
    consensus: ConsensusConfig = field(default_factory=ConsensusConfig)
    cost_model: CostModel | None = None

    def __post_init__(self) -> None:
        if self.signature_interval < 1:
            raise ConfigurationError("signature_interval must be >= 1")
        if self.worker_threads < 1:
            raise ConfigurationError("worker_threads must be >= 1")

    def resolve_cost_model(self) -> CostModel:
        if self.cost_model is not None:
            return self.cost_model
        return CostModel(
            runtime=self.runtime,
            platform=self.platform,
            worker_threads=self.worker_threads,
        )
