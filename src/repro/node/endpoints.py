"""Built-in endpoints common to every CCF service (sections 3.2, 3.5, 6.4).

- ``tx`` — transaction status (Figure 4) for a transaction ID.
- ``commit`` — the current commit point.
- ``receipt`` — an offline-verifiable receipt for a committed transaction.
- ``network`` — node membership and statuses.
- ``service_info`` — service identity and lifecycle status.
- ``quote`` — this node's attestation quote.

All built-ins are read-only and unauthenticated (they expose only public,
integrity-protected facts), and can be served by any node (section 4.3).
"""

from __future__ import annotations

from repro.app.application import Endpoint
from repro.app.context import RequestContext
from repro.errors import AuthorizationError, IntegrityError
from repro.ledger.entry import TxID
from repro.ledger.receipts import issue_receipt
from repro.node import maps


def _tx_status(ctx: RequestContext):
    txid = TxID.parse(ctx.request.body["txid"])
    return {"txid": str(txid), "status": ctx.node.tx_status(txid)}


def _commit(ctx: RequestContext):
    node = ctx.node
    commit_seqno = node.consensus.commit_seqno
    txid = node.ledger.txid_at(commit_seqno) if commit_seqno else TxID(0, 0)
    return {"txid": str(txid), "seqno": commit_seqno, "view": txid.view}


def _receipt(ctx: RequestContext):
    node = ctx.node
    txid = TxID.parse(ctx.request.body["txid"])
    if not node.ledger.has_txid(txid):
        raise AuthorizationError(f"transaction {txid} is not in this node's ledger")
    if txid.seqno > node.consensus.commit_seqno:
        raise IntegrityError(f"transaction {txid} is not yet committed")
    # The receipt embeds the certificate of the node whose signature
    # transaction anchors it — not necessarily the serving node.
    signature_seqno = node.ledger.next_signature_seqno(txid.seqno)
    if signature_seqno is None:
        raise IntegrityError(f"no signature transaction after {txid} yet")
    signer = node.ledger.signature_record(signature_seqno).node_id
    # If this node executed the transaction it retains the claims; expose
    # them when the caller asks (they verify against the leaf's digest).
    claims = None
    if ctx.request.body.get("with_claims"):
        claims = node._claims_by_seqno.get(txid.seqno)
    receipt = issue_receipt(
        node.ledger, txid.seqno, node.certificate_for_node(signer), claims=claims
    )
    return {"receipt": receipt.to_dict()}


def _network(ctx: RequestContext):
    nodes = {
        node_id: {"status": info.get("status"), "platform": info.get("platform")}
        for node_id, info in ctx.items(maps.NODES_INFO)
        if isinstance(info, dict)
    }
    primary = ctx.node.consensus.leader_id if ctx.node.consensus else None
    return {"nodes": nodes, "primary": primary, "view": ctx.node.consensus.view}


def _service_info(ctx: RequestContext):
    info = ctx.get(maps.SERVICE_INFO, "service") or {}
    return dict(info)


def _quote(ctx: RequestContext):
    node = ctx.node
    quote = node.enclave.attest(node.node_key.public_key.encode())
    return {"quote": quote.to_dict()}


def _consensus(ctx: RequestContext):
    """Consensus-layer introspection: view, role, commit, configurations."""
    consensus = ctx.node.consensus
    return {
        "node_id": ctx.node.node_id,
        "view": consensus.view,
        "role": consensus.role.value,
        "leader": consensus.leader_id,
        "commit_seqno": consensus.commit_seqno,
        "last_seqno": ctx.node.ledger.last_seqno,
        "configurations": [
            {"seqno": config.seqno, "nodes": sorted(config.nodes)}
            for config in consensus.configurations._configs
        ],
        "view_history": [
            {"view": start.view, "first_seqno": start.first_seqno}
            for start in consensus.view_history.starts()
        ],
    }


BUILTIN_ENDPOINTS: dict[str, Endpoint] = {
    "tx": Endpoint(name="tx", handler=_tx_status, auth_policy="no_auth", read_only=True),
    "commit": Endpoint(name="commit", handler=_commit, auth_policy="no_auth", read_only=True),
    "receipt": Endpoint(name="receipt", handler=_receipt, auth_policy="no_auth", read_only=True),
    "network": Endpoint(name="network", handler=_network, auth_policy="no_auth", read_only=True),
    "service_info": Endpoint(
        name="service_info", handler=_service_info, auth_policy="no_auth", read_only=True
    ),
    "quote": Endpoint(name="quote", handler=_quote, auth_policy="no_auth", read_only=True),
    "consensus": Endpoint(
        name="consensus", handler=_consensus, auth_policy="no_auth", read_only=True
    ),
}
