"""CCF's built-in map names (Table 3).

All built-in maps are public: governance and internal bookkeeping can be
audited without decrypting the ledger (section 3.3).
"""

GOV_PREFIX = "public:ccf.gov."
INTERNAL_PREFIX = "public:ccf.internal."

USERS_CERTS = GOV_PREFIX + "users.certs"
MEMBERS_CERTS = GOV_PREFIX + "members.certs"
MEMBERS_KEYS = GOV_PREFIX + "members_keys"  # members' public encryption keys
NODES_INFO = GOV_PREFIX + "nodes.info"
NODES_CODE_IDS = GOV_PREFIX + "nodes.code_ids"
SERVICE_INFO = GOV_PREFIX + "service.info"
CONSTITUTION = GOV_PREFIX + "constitution"
MODULES = GOV_PREFIX + "modules"  # JavaScript application logic
ENDPOINTS = GOV_PREFIX + "endpoints"  # JavaScript endpoint metadata
PROPOSALS = GOV_PREFIX + "proposals"
PROPOSALS_INFO = GOV_PREFIX + "proposals_info"
HISTORY = GOV_PREFIX + "history"  # signed governance requests
JWT_ISSUERS = GOV_PREFIX + "jwt.issuers"

SIGNATURES = INTERNAL_PREFIX + "signatures"
TREE = INTERNAL_PREFIX + "tree"
LEDGER_SECRET = INTERNAL_PREFIX + "ledger_secret"  # wrapped ledger secret
RECOVERY_SHARES = INTERNAL_PREFIX + "recovery_shares"
SNAPSHOT_EVIDENCE = INTERNAL_PREFIX + "snapshot_evidence"

# Service lifecycle statuses stored in SERVICE_INFO under key "service".
SERVICE_OPENING = "Opening"
SERVICE_OPEN = "Open"
SERVICE_RECOVERING = "Recovering"
SERVICE_WAITING_FOR_SHARES = "WaitingForRecoveryShares"
