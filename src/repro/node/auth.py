"""Endpoint authentication policies (section 3.1).

"Each CCF endpoint declares how callers should be authenticated. Each
invocation is first checked by CCF against these declared policies and the
application logic is only called if the caller passes the checks."

Policies:

- ``no_auth`` — anonymous.
- ``user_cert`` / ``member_cert`` — the caller's certificate must appear in
  the users/members governance map. (The TLS layer's proof of key
  possession is assumed, as in the paper's client-authenticated TLS.)
- ``user_signature`` — the request carries a COSE-Sign1-style envelope
  signed by a registered user or member; the envelope payload must match
  the request body, binding the signature to this exact request.
- ``jwt`` — a bearer token verified against governance-registered issuers.
"""

from __future__ import annotations

from typing import Any

from repro.app.context import Caller, Request
from repro.crypto.certs import Certificate
from repro.crypto.cose import SignedRequest
from repro.crypto.ecdsa import VerifyingKey
from repro.errors import AuthenticationError, VerificationError
from repro.node import jwt as jwt_module
from repro.node import maps


class StoreReader:
    """The minimal read interface authentication needs (satisfied by both
    KVStore and Transaction via this tiny adapter)."""

    def __init__(self, get_fn):
        self._get = get_fn

    def get(self, map_name: str, key: Any, default: Any = None) -> Any:
        return self._get(map_name, key, default)


def _cert_from_credentials(request: Request) -> Certificate:
    cert_dict = request.credentials.get("certificate")
    if not isinstance(cert_dict, dict):
        raise AuthenticationError("endpoint requires a client certificate")
    try:
        return Certificate.from_dict(cert_dict)
    except (KeyError, ValueError) as exc:
        raise AuthenticationError(f"malformed certificate: {exc}") from exc


# Cache of certificates that already passed self-signature verification,
# keyed by (to-be-signed bytes, signature). Real CCF verifies the client
# certificate once per TLS handshake, not per request; this cache plays the
# same role for the simulated sessions. Verification is pure, so caching
# cannot change outcomes. (Certificate.from_dict and VerifyingKey.decode
# are themselves memoized, so the decoded key objects — and their fastec
# precomputation tables — are reused across requests too.) Counters are
# exported via repro.obs.metrics as ``fastpath.cert_verify_cache.*``.
_VERIFIED_CERTS: set[tuple[bytes, bytes]] = set()
_VERIFIED_CERTS_MAX = 10_000
AUTH_STATS = {"cert_verify_cache.hits": 0, "cert_verify_cache.misses": 0}


def _verify_self_signed_cached(certificate: Certificate) -> None:
    key = (certificate.to_be_signed(), certificate.signature)
    if key in _VERIFIED_CERTS:
        AUTH_STATS["cert_verify_cache.hits"] += 1
        return
    certificate.verify_self_signed()
    AUTH_STATS["cert_verify_cache.misses"] += 1
    if len(_VERIFIED_CERTS) >= _VERIFIED_CERTS_MAX:
        _VERIFIED_CERTS.clear()
    _VERIFIED_CERTS.add(key)


def _check_registered_cert(
    store: StoreReader, map_name: str, certificate: Certificate, kind: str
) -> Caller:
    """Rows in the users/members maps are keyed by subject name and hold the
    registered certificate; the presented certificate must match it exactly."""
    record = store.get(map_name, certificate.subject)
    if not isinstance(record, dict) or record.get("certificate") != certificate.to_dict():
        raise AuthenticationError(f"certificate not registered as a {kind}")
    try:
        _verify_self_signed_cached(certificate)
    except VerificationError as exc:
        raise AuthenticationError(f"invalid {kind} certificate: {exc}") from exc
    return Caller(kind=kind, identifier=certificate.subject, data=dict(record))


def _jwt_issuer_of(token: str) -> str:
    """Extract the unverified ``iss`` claim to select the issuer key."""
    import base64
    import json

    try:
        payload_b64 = token.split(".")[1]
        padding = "=" * (-len(payload_b64) % 4)
        payload = json.loads(base64.urlsafe_b64decode(payload_b64 + padding))
        return payload.get("iss", "")
    except (IndexError, ValueError) as exc:
        raise AuthenticationError(f"malformed JWT: {exc}") from exc


def authenticate(request: Request, policy: str, store: StoreReader) -> Caller:
    """Run ``policy`` against the request; return the authenticated caller
    or raise :class:`AuthenticationError`."""
    if policy == "no_auth":
        return Caller(kind="any", identifier="anonymous")

    if policy == "user_cert":
        return _check_registered_cert(
            store, maps.USERS_CERTS, _cert_from_credentials(request), "user"
        )

    if policy == "member_cert":
        return _check_registered_cert(
            store, maps.MEMBERS_CERTS, _cert_from_credentials(request), "member"
        )

    if policy == "user_signature":
        envelope_dict = request.credentials.get("signed_request")
        if not isinstance(envelope_dict, dict):
            raise AuthenticationError("endpoint requires a signed request")
        envelope = SignedRequest.from_dict(envelope_dict)
        # Look the signer up among users first, then members (members may
        # invoke user-signed endpoints, e.g. governance).
        for map_name, kind in ((maps.USERS_CERTS, "user"), (maps.MEMBERS_CERTS, "member")):
            record = store.get(map_name, envelope.signer)
            if record is not None:
                certificate = Certificate.from_dict(record["certificate"])
                try:
                    envelope.verify(certificate)
                except VerificationError as exc:
                    raise AuthenticationError(f"bad request signature: {exc}") from exc
                if envelope.payload_json() != request.body:
                    raise AuthenticationError(
                        "signed payload does not match the request body"
                    )
                return Caller(kind=kind, identifier=envelope.signer, data=dict(record))
        raise AuthenticationError(f"unknown signer {envelope.signer!r}")

    if policy == "jwt":
        token = request.credentials.get("jwt")
        if not isinstance(token, str):
            raise AuthenticationError("endpoint requires a JWT bearer token")
        issuer = _jwt_issuer_of(token)
        issuers: dict[str, VerifyingKey] = {}
        row = store.get(maps.JWT_ISSUERS, issuer)
        if row is not None:
            issuers[issuer] = VerifyingKey.decode(bytes.fromhex(row["public_key"]))
        claims = jwt_module.verify_token(token, issuers)
        return Caller(kind="jwt", identifier=str(claims.get("sub")), data=claims)

    raise AuthenticationError(f"unknown auth policy {policy!r}")
