"""Minimal JWT (RFC 7519) with an ES256-style signature over P-256.

CCF authenticates users by JWT or X.509 certificates (section 7). Tokens
are ``base64url(header).base64url(payload).base64url(signature)`` with the
signature produced by our from-scratch ECDSA. Issuer public keys are
registered in the ``public:ccf.gov.jwt.issuers`` map via governance.
"""

from __future__ import annotations

import base64
import json

from repro.crypto.ecdsa import SigningKey, VerifyingKey
from repro.errors import AuthenticationError, VerificationError


def _b64url_encode(data: bytes) -> str:
    return base64.urlsafe_b64encode(data).rstrip(b"=").decode()


def _b64url_decode(text: str) -> bytes:
    padding = "=" * (-len(text) % 4)
    return base64.urlsafe_b64decode(text + padding)


def issue_token(key: SigningKey, issuer: str, subject: str, claims: dict | None = None) -> str:
    """Mint a signed token for ``subject`` from ``issuer``."""
    header = {"alg": "ES256", "typ": "JWT"}
    payload = {"iss": issuer, "sub": subject, **(claims or {})}
    signing_input = (
        _b64url_encode(json.dumps(header, sort_keys=True).encode())
        + "."
        + _b64url_encode(json.dumps(payload, sort_keys=True).encode())
    )
    signature = key.sign(signing_input.encode())
    return signing_input + "." + _b64url_encode(signature)


def verify_token(token: str, issuer_keys: dict[str, VerifyingKey]) -> dict:
    """Verify a token against the registered issuer keys; returns the
    payload claims. Raises :class:`AuthenticationError` on any failure."""
    try:
        header_b64, payload_b64, signature_b64 = token.split(".")
        payload = json.loads(_b64url_decode(payload_b64))
        signature = _b64url_decode(signature_b64)
    except (ValueError, json.JSONDecodeError) as exc:
        raise AuthenticationError(f"malformed JWT: {exc}") from exc
    issuer = payload.get("iss")
    key = issuer_keys.get(issuer)
    if key is None:
        raise AuthenticationError(f"unknown JWT issuer {issuer!r}")
    signing_input = (header_b64 + "." + payload_b64).encode()
    try:
        key.verify(signature, signing_input)
    except VerificationError as exc:
        raise AuthenticationError("JWT signature invalid") from exc
    return payload
