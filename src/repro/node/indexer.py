"""Application-defined indexing over committed transactions (section 3.4).

"The indexer on the CCF node pre-processes in-order each transaction in the
ledger as it is committed and stores the results for future use.
Alternatively, this can also be done lazily when a historical query is
received." Applications register *strategies*; the node feeds them each
committed transaction's write set exactly once, in commit order.
"""

from __future__ import annotations

from typing import Protocol

from repro.kv.tx import REMOVED, WriteSet
from repro.ledger.entry import TxID


class IndexingStrategy(Protocol):
    """What an application-defined index must implement (section 3.4)."""

    name: str

    def handle_committed(self, txid: TxID, write_set: WriteSet) -> None:
        """Process one committed transaction (called in seqno order)."""


class KeyWriteIndex:
    """The paper's example strategy: for each key of one map, every
    transaction ID that wrote to it. Powers ``get_statement``-style
    endpoints (range queries over an account's history)."""

    def __init__(self, name: str, map_name: str):
        self.name = name
        self.map_name = map_name
        self._writes: dict[object, list[TxID]] = {}

    def handle_committed(self, txid: TxID, write_set: WriteSet) -> None:
        for key, value in write_set.updates.get(self.map_name, {}).items():
            if value is not REMOVED:
                self._writes.setdefault(key, []).append(txid)

    def txids_for_key(self, key: object) -> list[TxID]:
        return list(self._writes.get(key, []))

    # -- offload support (section 3.4: "offloaded to persistent storage
    # if needed"; section 7: that storage is AEAD-encrypted) -----------

    def serialize(self) -> bytes:
        from repro.kv.serialization import encode_value, json_safe_key

        # Sort by the tagged reversible key form, not str(key): str()
        # conflates 1 and "1" into the same sort key, making the offload
        # byte order depend on dict insertion order for such pairs.
        # json_safe_key is injective, so the ordering (and the offloaded
        # bytes) is a pure function of the index contents.
        return encode_value(
            {
                "map_name": self.map_name,
                "writes": [
                    [key, [[t.view, t.seqno] for t in txids]]
                    for key, txids in sorted(
                        self._writes.items(), key=lambda item: json_safe_key(item[0])
                    )
                ],
            }
        )

    def restore(self, data: bytes) -> None:
        from repro.kv.serialization import decode_value, freeze_key

        state = decode_value(data)
        self.map_name = state["map_name"]
        self._writes = {
            freeze_key(key): [TxID(view, seqno) for view, seqno in txids]
            for key, txids in state["writes"]
        }


class MapCountIndex:
    """A simple aggregate strategy: committed write counts per map."""

    def __init__(self, name: str = "map_counts"):
        self.name = name
        self.counts: dict[str, int] = {}

    def handle_committed(self, txid: TxID, write_set: WriteSet) -> None:
        for map_name, entries in write_set.updates.items():
            self.counts[map_name] = self.counts.get(map_name, 0) + len(entries)


class Indexer:
    """Per-node registry of strategies, fed in commit order.

    ``last_indexed`` tracks progress so the node can feed exactly the range
    (last_indexed, commit_seqno] as commit advances, surviving rollbacks of
    *uncommitted* entries for free (only committed entries are indexed).
    """

    def __init__(self) -> None:
        self._strategies: dict[str, IndexingStrategy] = {}
        self.last_indexed = 0

    def install(self, strategy: IndexingStrategy) -> None:
        self._strategies[strategy.name] = strategy

    def strategy(self, name: str) -> IndexingStrategy:
        try:
            return self._strategies[name]
        except KeyError:
            raise KeyError(f"no indexing strategy named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._strategies)

    def feed(self, txid: TxID, write_set: WriteSet) -> None:
        """Feed one committed transaction to every strategy."""
        if txid.seqno <= self.last_indexed:
            return  # already processed (e.g. replayed during catch-up)
        for strategy in self._strategies.values():
            strategy.handle_committed(txid, write_set)
        self.last_indexed = txid.seqno

    def feed_batch(self, items: list[tuple[TxID, WriteSet]]) -> int:
        """Consume one *batched* commit notification.

        Pipelined execution commits whole batches at once, and catch-up
        replay can overlap a range an eager feed already covered — so the
        input may arrive unordered and may overlap ``last_indexed``.
        Entries are applied in seqno order, each exactly once (the
        double-indexing guard is positional, not per-call). Returns how
        many entries were newly indexed."""
        fed = 0
        for txid, write_set in sorted(items, key=lambda item: item[0].seqno):
            if txid.seqno <= self.last_indexed:
                continue
            for strategy in self._strategies.values():
                strategy.handle_committed(txid, write_set)
            self.last_indexed = txid.seqno
            fed += 1
        return fed

    def rebuild_lazily(self, ledger, through_seqno: int) -> int:
        """Section 3.4's lazy alternative: instead of indexing eagerly at
        commit time, (re)build the index from the ledger when a historical
        query arrives. Feeds every committed entry in ``(last_indexed,
        through_seqno]`` in order; returns how many were processed."""
        processed = 0
        start = max(self.last_indexed, ledger.base_seqno)
        for entry in ledger.entries(start + 1, through_seqno):
            self.feed(entry.txid, ledger.decrypt_private(entry))
            processed += 1
        return processed

    # ------------------------------------------------------------------
    # Offload to untrusted persistent storage (sections 3.4 & 7): index
    # state leaves the enclave only AEAD-sealed under an enclave key.

    def offload(self, storage, key) -> int:
        """Seal every offloadable strategy's state onto host ``storage``.
        Returns the number of strategies offloaded."""
        from repro.crypto.aead import nonce_from_counter
        from repro.kv.serialization import encode_value

        count = 0
        for name in self.names():
            strategy = self._strategies[name]
            serialize = getattr(strategy, "serialize", None)
            if serialize is None:
                continue
            payload = encode_value(
                {"name": name, "last_indexed": self.last_indexed, "state": serialize()}
            )
            sealed = key.seal(
                nonce_from_counter(self.last_indexed, domain=0x49),  # 'I'
                payload,
                aad=name.encode(),
            )
            storage.write(f"index_{name}_{self.last_indexed}.sealed", sealed)
            count += 1
        return count

    def load_offloaded(self, storage, key, name: str, seqno: int) -> None:
        """Restore one strategy's sealed state from host storage; tampering
        by the host fails the AEAD check."""
        from repro.crypto.aead import nonce_from_counter
        from repro.kv.serialization import decode_value

        sealed = storage.read(f"index_{name}_{seqno}.sealed")
        payload = decode_value(
            key.open(nonce_from_counter(seqno, domain=0x49), sealed, aad=name.encode())
        )
        strategy = self._strategies[name]
        strategy.restore(payload["state"])
        self.last_indexed = max(self.last_indexed, payload["last_indexed"])
