"""The CCF node: enclave + KV + ledger + consensus + frontend (Figure 2)."""

from repro.node.config import NodeConfig
from repro.node.node import CCFNode

__all__ = ["NodeConfig", "CCFNode"]
