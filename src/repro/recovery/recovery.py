"""The disaster recovery protocol (section 5.2).

If more than a majority of nodes fail, the service restarts — best effort —
from the persistent ledger files of as little as one host:

1. A node starts in recovery mode with the salvaged ledger files.
2. The *public* parts of transactions are restored by replay; signature
   transactions are verified against the node identities recorded in the
   (public) governance maps, and any unverifiable suffix is dropped.
3. The recovered service presents a **new service identity**, making the
   recovery (and any rollback it implies) detectable by users.
4. Members submit recovery shares; the previous ledger secret is
   reconstructed in the TEE and the private state decrypted.
5. Members vote to open the recovered service, naming the old and new
   service identities to bind the proposal to this exact recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.ecdsa import VerifyingKey
from repro.errors import IntegrityError, RecoveryError, VerificationError
from repro.kv.store import KVStore
from repro.ledger.chunking import LedgerChunk
from repro.ledger.entry import LedgerEntry
from repro.ledger.ledger import SIGNATURES_MAP, Ledger, SignatureRecord
from repro.ledger.secrets import LedgerSecretStore
from repro.node import maps
from repro.storage.host_storage import HostStorage


@dataclass(frozen=True)
class SalvageWarning:
    """One chunk file the salvage had to drop, and why — typed so callers
    (and the recovery summary users vote on) can tell a torn tail from a
    structural gap without parsing strings."""

    kind: str  # "torn-chunk" | "empty-chunk" | "overlapping-chunk" | "gap"
    filename: str
    detail: str

    def describe(self) -> str:
        return f"{self.kind} {self.filename}: {self.detail}"


def salvage_ledger_entries(
    storage: HostStorage,
) -> tuple[list[LedgerEntry], list[SalvageWarning]]:
    """Best-effort reassembly of a crashed disk's chunk files.

    Unlike :func:`repro.ledger.chunking.reassemble_chunks` (which is strict
    — the auditor *wants* a torn file to be a finding), salvage keeps going:
    a chunk that fails to decode (torn mid-blob by a power loss, corrupted
    by the host) is dropped with a typed warning, stale open chunks that
    overlap a complete successor are dropped, and anything beyond the first
    gap is dropped — the result is the longest decodable prefix from seqno
    1. Verification (signature transactions) still happens in the caller;
    this function only rescues structure."""
    warnings: list[SalvageWarning] = []
    decoded: list[tuple[str, LedgerChunk]] = []
    for name in storage.list_files("ledger_"):
        try:
            chunk = LedgerChunk.decode(storage.read(name))
        # A torn or corrupted file can fail decoding in arbitrary ways;
        # every failure becomes a typed warning, never an abort.
        # repro-lint: disable=PROTO002
        except Exception as exc:
            warnings.append(SalvageWarning("torn-chunk", name, str(exc)))
            continue
        if not chunk.entries:
            warnings.append(SalvageWarning("empty-chunk", name, "no entries"))
            continue
        decoded.append((name, chunk))
    # Complete chunks win over open chunks covering the same range (a crash
    # between writing the complete chunk and deleting its open predecessor
    # legitimately leaves both on disk).
    decoded.sort(key=lambda pair: (pair[1].first_seqno, not pair[1].is_complete))
    entries: list[LedgerEntry] = []
    expected = 1
    gap_at: int | None = None
    for name, chunk in decoded:
        if gap_at is not None:
            warnings.append(SalvageWarning(
                "gap", name,
                f"unreachable past the gap at seqno {gap_at}",
            ))
            continue
        if chunk.last_seqno < expected:
            warnings.append(SalvageWarning(
                "overlapping-chunk", name,
                f"covered by a complete chunk through seqno {expected - 1}",
            ))
            continue
        if chunk.first_seqno > expected:
            gap_at = expected
            warnings.append(SalvageWarning(
                "gap", name,
                f"expected seqno {expected}, chunk starts at {chunk.first_seqno}",
            ))
            continue
        fresh = [e for e in chunk.entries if e.txid.seqno >= expected]
        if any(e.txid.seqno != s for e, s in zip(fresh, range(expected, expected + len(fresh)))):
            warnings.append(SalvageWarning(
                "torn-chunk", name, "entries are not densely numbered"
            ))
            gap_at = expected
            continue
        entries.extend(fresh)
        expected += len(fresh)
    return entries, warnings


@dataclass
class PublicReplayResult:
    """What a recovery replay yields before shares arrive."""

    ledger: Ledger
    store: KVStore  # public state only
    verified_seqno: int  # last seqno covered by a verified signature
    last_view: int
    previous_service_identity: dict | None
    warnings: list[SalvageWarning] = field(default_factory=list)


def replay_public_ledger(
    storage: HostStorage, *, fast_path: bool = True
) -> PublicReplayResult:
    """Rebuild ledger + public store from untrusted chunk files, verifying
    every signature transaction against node identities found in the public
    state itself. Entries after the last verifiable signature are dropped,
    and so are chunk files a crash tore or a host corrupted — each with a
    typed :class:`SalvageWarning` (best effort, as the paper specifies).

    ``fast_path`` selects the batched replay (:func:`_replay_entries_fast`);
    the serial replay stays available as the differential-testing oracle —
    both produce byte-identical results on any salvaged input."""
    try:
        entries, salvage_warnings = salvage_ledger_entries(storage)
    # Salvaged disks hold arbitrary bytes; any failure to even enumerate
    # them means "not recoverable from this disk", typed for the caller.
    # repro-lint: disable=PROTO002
    except Exception as exc:
        raise RecoveryError(f"ledger files unreadable: {exc}") from exc
    if not entries:
        raise RecoveryError(
            "no ledger entries salvageable from this disk"
            + (f" ({salvage_warnings[0].describe()})" if salvage_warnings else "")
        )
    replay = _replay_entries_fast if fast_path else _replay_entries_slow
    return replay(entries, salvage_warnings)


def _replay_entries_slow(
    entries: list[LedgerEntry], salvage_warnings: list[SalvageWarning]
) -> PublicReplayResult:
    """The reference replay: strictly serial, one entry at a time, every
    signature verified the moment it is appended. This is the oracle the
    fast path is differentially tested against — keep it boring."""
    ledger = Ledger(LedgerSecretStore())
    store = KVStore()
    verified_seqno = 0
    last_view = 0
    for entry in entries:
        try:
            ledger.append(entry)
            store.apply_write_set(entry.public_writes, entry.txid.seqno)
        # A tampered suffix can break replay in arbitrary ways; per the
        # paper we keep the verified prefix. repro-lint: disable=PROTO002
        except Exception:
            break  # structurally broken suffix: stop here
        last_view = entry.txid.view
        if entry.is_signature:
            try:
                record = ledger.signature_record(entry.txid.seqno)
                key = _node_public_key(store, record.node_id)
            except RecoveryError:
                # The signer's identity is not recorded yet — true only for
                # the service-opening signature that precedes the genesis
                # transaction. Skip it without advancing the verified point.
                continue
            try:
                ledger.verify_signature_entry(entry.txid.seqno, key)
            except (IntegrityError, VerificationError):
                break  # tampered: nothing at or past this point is trusted
            verified_seqno = entry.txid.seqno
    return _finish_replay(ledger, store, verified_seqno, last_view, salvage_warnings)


def _replay_entries_fast(
    entries: list[LedgerEntry], salvage_warnings: list[SalvageWarning]
) -> PublicReplayResult:
    """Batched replay below the verified signature anchor.

    Two phases instead of one interleaved loop:

    1. **Structural**: validate ordering and apply each entry's public
       write set (the KV store needs per-entry versions for rollback), but
       defer the ledger work. Signature entries are *collected* — the
       signer's key is resolved here, against the store exactly as the
       serial replay would see it at that seqno.
    2. **Batched verify**: append every structurally sound entry in one
       ``append_batch`` (the Merkle extension folds into a single tight
       loop), then verify the collected signatures in order — each one a
       historical-root lookup (O(log n) via the subtree/spine caches) plus
       one ECDSA check on the fastec double-scalar path. The first failure
       is the anchor cut-off, exactly as in the serial replay.

    The result is byte-identical to :func:`_replay_entries_slow` by
    construction (and by the differential suite): entries past a failing
    signature were applied here but are discarded by the same
    truncate/rollback tail, and ``last_view`` is taken from the failing
    signature when there is one, matching where the serial loop stops."""
    ledger = Ledger(LedgerSecretStore())
    store = KVStore()
    accepted: list[LedgerEntry] = []
    # (seqno, signer key) for every signature entry whose signer identity
    # was recorded at collection time.
    collected: list[tuple[int, VerifyingKey]] = []
    expected_seqno = 1
    highest_view = 0
    for entry in entries:
        try:
            if entry.txid.seqno != expected_seqno:
                raise RecoveryError(
                    f"entry seqno {entry.txid.seqno} != expected {expected_seqno}"
                )
            if entry.txid.view < highest_view:
                raise RecoveryError("entry view regresses")
            store.apply_write_set(entry.public_writes, entry.txid.seqno)
        # Same best-effort contract as the serial loop: keep the sound
        # prefix, drop the broken suffix. repro-lint: disable=PROTO002
        except Exception:
            break
        accepted.append(entry)
        expected_seqno += 1
        highest_view = entry.txid.view
        if entry.is_signature:
            try:
                record = SignatureRecord.from_value(
                    entry.public_writes.updates[SIGNATURES_MAP]["latest"]
                )
                key = _node_public_key(store, record.node_id)
            except RecoveryError:
                continue  # pre-genesis service-opening signature: skip
            collected.append((entry.txid.seqno, key))
    ledger.append_batch(accepted)
    verified_seqno = 0
    failed_seqno: int | None = None
    for seqno, key in collected:
        try:
            ledger.verify_signature_entry(seqno, key)
        except (IntegrityError, VerificationError):
            failed_seqno = seqno
            break
        verified_seqno = seqno
    if failed_seqno is not None:
        # The serial replay stops *at* the failing signature, so its
        # last_view is that entry's view, not the newest appended one.
        last_view = ledger.txid_at(failed_seqno).view
    else:
        last_view = accepted[-1].txid.view if accepted else 0
    return _finish_replay(ledger, store, verified_seqno, last_view, salvage_warnings)


def _finish_replay(
    ledger: Ledger,
    store: KVStore,
    verified_seqno: int,
    last_view: int,
    salvage_warnings: list[SalvageWarning],
) -> PublicReplayResult:
    """Shared replay tail: cut to the verified prefix and package up."""
    if verified_seqno == 0:
        raise RecoveryError("no verifiable signature transaction in the ledger files")
    # Drop everything after the verified prefix.
    ledger.truncate(verified_seqno)
    store.rollback_to(verified_seqno)
    store.compact(verified_seqno)
    service_row = store.get(maps.SERVICE_INFO, "service")
    previous_identity = service_row.get("certificate") if service_row else None
    return PublicReplayResult(
        ledger=ledger,
        store=store,
        verified_seqno=verified_seqno,
        last_view=last_view,
        previous_service_identity=previous_identity,
        warnings=salvage_warnings,
    )


def _node_public_key(store: KVStore, node_id: str) -> VerifyingKey:
    row = store.get(maps.NODES_INFO, node_id)
    if not isinstance(row, dict) or "public_key" not in row:
        raise RecoveryError(f"no recorded identity for signing node {node_id}")
    return VerifyingKey.decode(bytes.fromhex(row["public_key"]))
