"""The disaster recovery protocol (section 5.2).

If more than a majority of nodes fail, the service restarts — best effort —
from the persistent ledger files of as little as one host:

1. A node starts in recovery mode with the salvaged ledger files.
2. The *public* parts of transactions are restored by replay; signature
   transactions are verified against the node identities recorded in the
   (public) governance maps, and any unverifiable suffix is dropped.
3. The recovered service presents a **new service identity**, making the
   recovery (and any rollback it implies) detectable by users.
4. Members submit recovery shares; the previous ledger secret is
   reconstructed in the TEE and the private state decrypted.
5. Members vote to open the recovered service, naming the old and new
   service identities to bind the proposal to this exact recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ecdsa import VerifyingKey
from repro.errors import IntegrityError, RecoveryError, VerificationError
from repro.kv.store import KVStore
from repro.ledger.entry import LedgerEntry
from repro.ledger.ledger import Ledger
from repro.ledger.secrets import LedgerSecretStore
from repro.node import maps
from repro.storage.host_storage import HostStorage


@dataclass
class PublicReplayResult:
    """What a recovery replay yields before shares arrive."""

    ledger: Ledger
    store: KVStore  # public state only
    verified_seqno: int  # last seqno covered by a verified signature
    last_view: int
    previous_service_identity: dict | None


def replay_public_ledger(storage: HostStorage) -> PublicReplayResult:
    """Rebuild ledger + public store from untrusted chunk files, verifying
    every signature transaction against node identities found in the public
    state itself. Entries after the last verifiable signature are dropped
    (best effort, as the paper specifies)."""
    try:
        entries: list[LedgerEntry] = storage.read_ledger_entries()
    # Salvaged disks hold arbitrary bytes; any decode failure means "not
    # recoverable from this disk", typed for the caller.
    # repro-lint: disable=PROTO002
    except Exception as exc:
        raise RecoveryError(f"ledger files unreadable: {exc}") from exc

    ledger = Ledger(LedgerSecretStore())
    store = KVStore()
    verified_seqno = 0
    last_view = 0
    for entry in entries:
        try:
            ledger.append(entry)
            store.apply_write_set(entry.public_writes, entry.txid.seqno)
        # A tampered suffix can break replay in arbitrary ways; per the
        # paper we keep the verified prefix. repro-lint: disable=PROTO002
        except Exception:
            break  # structurally broken suffix: stop here
        last_view = entry.txid.view
        if entry.is_signature:
            try:
                record = ledger.signature_record(entry.txid.seqno)
                key = _node_public_key(store, record.node_id)
            except RecoveryError:
                # The signer's identity is not recorded yet — true only for
                # the service-opening signature that precedes the genesis
                # transaction. Skip it without advancing the verified point.
                continue
            try:
                ledger.verify_signature_entry(entry.txid.seqno, key)
            except (IntegrityError, VerificationError):
                break  # tampered: nothing at or past this point is trusted
            verified_seqno = entry.txid.seqno
    if verified_seqno == 0:
        raise RecoveryError("no verifiable signature transaction in the ledger files")
    # Drop everything after the verified prefix.
    ledger.truncate(verified_seqno)
    store.rollback_to(verified_seqno)
    store.compact(verified_seqno)
    service_row = store.get(maps.SERVICE_INFO, "service")
    previous_identity = service_row.get("certificate") if service_row else None
    return PublicReplayResult(
        ledger=ledger,
        store=store,
        verified_seqno=verified_seqno,
        last_view=last_view,
        previous_service_identity=previous_identity,
    )


def _node_public_key(store: KVStore, node_id: str) -> VerifyingKey:
    row = store.get(maps.NODES_INFO, node_id)
    if not isinstance(row, dict) or "public_key" not in row:
        raise RecoveryError(f"no recorded identity for signing node {node_id}")
    return VerifyingKey.decode(bytes.fromhex(row["public_key"]))
