"""Recovery shares (section 5.2).

The ledger secret is wrapped by the *ledger secret wrapping key*, which is
split k-of-n: each share is encrypted to one consortium member's public
encryption key and recorded in the ledger. During recovery, members decrypt
their shares and submit them to the recovering service; once ``k`` arrive,
the wrapping key is reconstructed inside the TEE, the previous ledger
secret unwrapped, and the old private state decrypted.
"""

from __future__ import annotations

import hashlib
import random

from repro.app.context import RequestContext
from repro.crypto import ct_eq, ecies, shamir
from repro.crypto.aead import nonce_from_counter
from repro.crypto.fastaead import FastAEADKey
from repro.errors import CCFError, GovernanceError, RecoveryError
from repro.ledger.secrets import LedgerSecret
from repro.node import maps

_WRAP_DOMAIN = 0x57  # 'W': nonce domain for wrapped ledger secrets


def wrap_ledger_secret(wrapping_key: bytes, secret: LedgerSecret) -> dict:
    """Encrypt the ledger secret under the wrapping key for ledger storage."""
    key = FastAEADKey(wrapping_key)
    sealed = key.seal(
        nonce_from_counter(secret.generation, _WRAP_DOMAIN),
        secret.key_bytes,
        aad=secret.suite.encode(),
    )
    return {"generation": secret.generation, "wrapped": sealed.hex(), "suite": secret.suite}


def unwrap_ledger_secret(wrapping_key: bytes, row: dict) -> LedgerSecret:
    """Decrypt a wrapped ledger secret; raises on a wrong wrapping key —
    this is how the protocol detects insufficient/incorrect shares."""
    key = FastAEADKey(wrapping_key)
    key_bytes = key.open(
        nonce_from_counter(row["generation"], _WRAP_DOMAIN),
        bytes.fromhex(row["wrapped"]),
        aad=row["suite"].encode(),
    )
    return LedgerSecret(generation=row["generation"], key_bytes=key_bytes, suite=row["suite"])


def provision_recovery_shares(
    ctx: RequestContext,
    secret: LedgerSecret,
    members: dict[str, bytes],  # subject -> encryption public key
    threshold: int,
    rng: random.Random,
    previous_secrets: tuple[LedgerSecret, ...] = (),
) -> None:
    """Write the wrapped ledger secret(s) and the per-member encrypted
    shares into the governance maps (Table 3: ledger_secret,
    recovery_shares). On rekey, every *previous* generation is re-wrapped
    under the new wrapping key so a later disaster recovery can decrypt the
    entire ledger history, not just post-rekey entries."""
    if not 1 <= threshold <= len(members):
        raise RecoveryError(
            f"recovery threshold {threshold} invalid for {len(members)} members"
        )
    wrapping_key = rng.getrandbits(256).to_bytes(32, "big")
    ctx.put(maps.LEDGER_SECRET, "current", wrap_ledger_secret(wrapping_key, secret))
    for previous in previous_secrets:
        ctx.put(
            maps.LEDGER_SECRET,
            f"generation_{previous.generation}",
            wrap_ledger_secret(wrapping_key, previous),
        )
    shares = shamir.split(wrapping_key, threshold, len(members), rng)
    for (subject, enc_public), share in zip(sorted(members.items()), shares):
        plaintext = share.encode()
        box = ecies.encrypt(
            enc_public, plaintext, entropy=wrapping_key + subject.encode()
        )
        # The digest is a public commitment to the member's share: at
        # submission time it lets the node reject a wrong share *before* it
        # enters (and poisons) the Shamir reconstruction. It reveals nothing
        # about the share (preimage resistance over 32 random bytes) —
        # hashing is not an approved declassifier, so this judgement is
        # recorded for the taint analyzer's boundary map:
        # repro-taint: declassify=share-commitment
        ctx.put(
            maps.RECOVERY_SHARES,
            subject,
            {"share": box.hex(), "share_digest": hashlib.sha256(plaintext).hexdigest()},
        )
    # Former members' shares are useless (new wrapping key) and misleading:
    # drop them.
    for subject, _row in list(ctx.items(maps.RECOVERY_SHARES)):
        if subject not in members:
            ctx.remove(maps.RECOVERY_SHARES, subject)
    info = ctx.get(maps.SERVICE_INFO, "service") or {}
    ctx.put(maps.SERVICE_INFO, "service", dict(info, recovery_threshold=threshold))


def handle_share_submission(ctx: RequestContext):
    """The ``/gov/submit_recovery_share`` endpoint body (section 5.2).

    Members submit their *decrypted* shares over their authenticated
    session; the node accumulates them in enclave memory and, at the
    threshold, reconstructs the wrapping key and unwraps the previous
    ledger secret.
    """
    node = ctx.node
    info = ctx.get(maps.SERVICE_INFO, "service") or {}
    if info.get("status") != maps.SERVICE_WAITING_FOR_SHARES:
        raise GovernanceError("service is not waiting for recovery shares")
    share_hex = ctx.request.body.get("share")
    if not isinstance(share_hex, str):
        raise GovernanceError("submission must carry the decrypted share hex")
    obs = node.scheduler.obs
    try:
        share_bytes = bytes.fromhex(share_hex)
        share = shamir.Share.decode(share_bytes)
    except (ValueError, CCFError) as exc:
        if obs is not None:
            obs.recovery_event(node.node_id, "share_rejected", reason="malformed")
        raise GovernanceError(f"malformed recovery share: {exc}") from exc
    # Check the share against its provisioned commitment *before* letting it
    # anywhere near the reconstruction: a wrong share is a typed rejection,
    # not a poisoned combine() that fails for everyone.
    row = ctx.get(maps.RECOVERY_SHARES, ctx.caller.identifier)
    expected_digest = row.get("share_digest") if isinstance(row, dict) else None
    if expected_digest is not None:
        if not ct_eq(hashlib.sha256(share_bytes).hexdigest(), expected_digest):
            if obs is not None:
                obs.recovery_event(
                    node.node_id, "share_rejected", reason="commitment-mismatch"
                )
            raise GovernanceError(
                "recovery share does not match this member's provisioned "
                "share commitment"
            )
    submitted = node.enclave.memory.get("recovery_submissions") or {}
    threshold = info.get("recovery_threshold", 1)
    previous = submitted.get(ctx.caller.identifier)
    if previous is not None and ct_eq(previous.encode(), share.encode()):
        # Duplicate resubmission (a retry over a flaky network): no-op.
        return {
            "submitted": len(submitted),
            "required": threshold,
            "recovered": False,
            "duplicate": True,
        }
    submitted[ctx.caller.identifier] = share
    node.enclave.memory.put("recovery_submissions", submitted)
    if obs is not None:
        obs.recovery_event(
            node.node_id, "share_submitted",
            submitted=len(submitted), required=threshold,
        )
    if len(submitted) < threshold:
        return {"submitted": len(submitted), "required": threshold, "recovered": False}
    # Threshold reached: reconstruct in-enclave and unwrap.
    wrapped_row = ctx.get(maps.LEDGER_SECRET, "current")
    if wrapped_row is None:
        raise RecoveryError("no wrapped ledger secret recorded")
    try:
        wrapping_key = shamir.combine(list(submitted.values()))
        recovered_secrets = [unwrap_ledger_secret(wrapping_key, wrapped_row)]
        # Older generations re-wrapped at rekey time (same wrapping key).
        for key, row in ctx.items(maps.LEDGER_SECRET):
            if isinstance(key, str) and key.startswith("generation_"):
                recovered_secrets.append(unwrap_ledger_secret(wrapping_key, row))
    except (CCFError, ValueError, KeyError, TypeError) as exc:
        raise RecoveryError(f"share reconstruction failed: {exc}") from exc
    if obs is not None:
        obs.recovery_event(
            node.node_id, "reconstructed", generations=len(recovered_secrets)
        )
    node.complete_private_recovery(recovered_secrets)
    ctx.put(maps.SERVICE_INFO, "service", dict(info, status=maps.SERVICE_RECOVERING))
    return {"submitted": len(submitted), "required": threshold, "recovered": True}
