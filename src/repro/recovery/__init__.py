"""Disaster recovery (section 5.2)."""

from repro.recovery.shares import provision_recovery_shares, handle_share_submission
from repro.recovery.recovery import replay_public_ledger

__all__ = [
    "provision_recovery_shares",
    "handle_share_submission",
    "replay_public_ledger",
]
