"""Host↔enclave ringbuffers (section 7).

"The host and the TEE communicate via a pair of lock-free multi-producer
single-consumer ringbuffers to minimize the expensive transitions to/from
the TEE." In the simulation the buffers are bounded queues; their purpose
here is (a) to make the trust boundary explicit in code — everything
crossing it is a serialized message through these buffers — and (b) to
count transitions for the cost model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import CCFError


class RingBufferFullError(CCFError):
    """Writer outpaced the consumer; callers should apply backpressure."""


@dataclass
class RingBuffer:
    """A bounded MPSC byte-message queue crossing the trust boundary."""

    capacity: int = 4096
    _queue: deque = field(default_factory=deque)
    messages_written: int = 0
    messages_read: int = 0

    def write(self, message: bytes) -> None:
        if len(self._queue) >= self.capacity:
            raise RingBufferFullError("ringbuffer full")
        self._queue.append(bytes(message))
        self.messages_written += 1

    def try_read(self) -> bytes | None:
        if not self._queue:
            return None
        self.messages_read += 1
        return self._queue.popleft()

    def drain(self) -> list[bytes]:
        messages = []
        while True:
            message = self.try_read()
            if message is None:
                return messages
            messages.append(message)

    def __len__(self) -> int:
        return len(self._queue)


@dataclass
class HostInterface:
    """The pair of ringbuffers between one node's host and its enclave.

    ``to_enclave`` carries network input and storage completions inward;
    ``to_host`` carries outbound messages and storage writes outward.
    ``transitions`` counts consumer wake-ups — the quantity whose cost the
    ringbuffer design amortizes on real SGX.
    """

    to_enclave: RingBuffer = field(default_factory=RingBuffer)
    to_host: RingBuffer = field(default_factory=RingBuffer)
    transitions: int = 0

    def host_send(self, message: bytes) -> None:
        """Host side: push a message toward the enclave."""
        self.to_enclave.write(message)

    def enclave_send(self, message: bytes) -> None:
        """Enclave side: push a message toward the host."""
        self.to_host.write(message)

    def enclave_poll(self) -> list[bytes]:
        """Enclave side: consume all pending inbound messages (one
        transition regardless of batch size)."""
        if len(self.to_enclave):
            self.transitions += 1
        return self.to_enclave.drain()

    def host_poll(self) -> list[bytes]:
        """Host side: consume all pending outbound messages."""
        if len(self.to_host):
            self.transitions += 1
        return self.to_host.drain()
