"""The enclave container: code identity and enclave-only memory.

A CCF node's trusted half lives here: its identity keys, the ledger secret,
and the service private key (when trusted) exist only inside
:class:`EnclaveMemory` — the simulation's stand-in for SGX's encrypted
memory. The container also fixes the node's *code identity*, the digest that
attestation quotes report and that governance approves via
``add_node_code`` (Listing 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import sha256
from repro.errors import AttestationError
from repro.tee.attestation import AttestationQuote, HardwareRoot
from repro.tee.platform import Platform, get_platform
from repro.tee.ringbuffer import HostInterface


def code_id_for(code_name: str, version: int) -> str:
    """The code identity (MRENCLAVE analog) of a CCF build.

    Real SGX measures the enclave binary; we hash a (name, version) pair so
    tests and live code updates can mint distinct, stable code ids.
    """
    return sha256(b"ccf-code", code_name.encode(), version.to_bytes(4, "big")).hex()


@dataclass
class EnclaveMemory:
    """Key-material store that never crosses the trust boundary.

    Reads from the host side must go through :meth:`Enclave.host_read`,
    which refuses — making "the private key is kept only in enclave memory"
    (Table 1) an enforced property of the simulation, not a comment.
    """

    _secrets: dict[str, Any] = field(default_factory=dict)

    def put(self, name: str, value: Any) -> None:
        self._secrets[name] = value

    def get(self, name: str) -> Any:
        return self._secrets.get(name)

    def has(self, name: str) -> bool:
        return name in self._secrets

    def wipe(self) -> None:
        """Crash / shutdown: enclave memory does not survive (section 6.2 —
        nodes are ephemeral and must rejoin with a fresh identity)."""
        self._secrets.clear()

    def __repr__(self) -> str:  # pragma: no cover - never leak contents
        return f"EnclaveMemory({len(self._secrets)} secrets)"


class Enclave:
    """The TEE instance backing one CCF node."""

    def __init__(self, platform_name: str, code_id: str, hardware: HardwareRoot):
        self.platform: Platform = get_platform(platform_name)
        self.code_id = code_id
        self._hardware = hardware
        self.memory = EnclaveMemory()
        self.host_interface = HostInterface()
        self._destroyed = False
        # Optional observability wiring (set by the owning node).
        self.obs = None
        self.obs_owner = ""

    def attest(self, report_data: bytes) -> AttestationQuote:
        """Produce this enclave's quote binding ``report_data`` (the node's
        public identity key) to its code identity."""
        if self._destroyed:
            raise AttestationError("enclave has been destroyed")
        if self.obs is not None:
            self.obs.enclave_transition(self.obs_owner, "attest")
        return self._hardware.quote(self.platform.name, self.code_id, report_data)

    def host_read(self, name: str) -> Any:
        """The untrusted host trying to read enclave memory — always fails."""
        raise AttestationError(
            f"host attempted to read enclave secret {name!r}: enclave memory "
            "is not accessible from outside the TEE"
        )

    def destroy(self) -> None:
        """Tear the enclave down, wiping all secrets."""
        self.memory.wipe()
        self._destroyed = True
        if self.obs is not None:
            self.obs.enclave_transition(self.obs_owner, "destroy")

    @property
    def is_destroyed(self) -> bool:
        return self._destroyed
