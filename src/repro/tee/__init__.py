"""The simulated trusted execution environment.

Real CCF runs each node's trusted half inside an Intel SGX enclave; enclave
execution is infeasible here, so this package preserves the *protocol* shape
of the TEE while simulating the hardware:

- :mod:`repro.tee.attestation` — a synthetic hardware root of trust issues
  quotes binding (code id, node identity); verifiers check the quote chain
  and the governance-approved code-id policy exactly as in the paper.
- :mod:`repro.tee.enclave` — the enclave container: code identity, enclave
  memory (key material that never leaves), and the host interface.
- :mod:`repro.tee.ringbuffer` — the host↔enclave ringbuffer pair from
  section 7, with transition accounting feeding the cost model.
- :mod:`repro.tee.platform` — platform descriptors (sgx / snp / virtual)
  and their cost multipliers (Table 5's SGX-vs-virtual gap).
"""

from repro.tee.attestation import AttestationQuote, HardwareRoot, verify_quote
from repro.tee.platform import Platform, PLATFORMS

__all__ = ["AttestationQuote", "HardwareRoot", "verify_quote", "Platform", "PLATFORMS"]
