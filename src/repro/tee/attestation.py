"""Simulated remote attestation.

Attestation is "the process by which a host can produce a verifiable proof
that it has a TEE and of what code is running inside the TEE" (section 2).
The protocol-visible artifact is the *quote*: a signature by the hardware
manufacturer's key over (platform, code id, report data), where CCF puts the
node's public identity key in the report data so the quote binds code to
key. Joining nodes present a quote; the service verifies it against the
hardware root and checks the code id against the governance-approved
``nodes.code_ids`` map (Table 3, Listing 1).

Here the "hardware manufacturer" is a simulated root key. Everything above
the root — quote structure, binding, policy check — is the real code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ct import ct_eq
from repro.crypto.ecdsa import SigningKey, VerifyingKey
from repro.errors import AttestationError, VerificationError
from repro.kv.serialization import decode_value, encode_value


@dataclass(frozen=True)
class AttestationQuote:
    """A quote: the manufacturer's signature over platform, code, and report
    data (the node's public key)."""

    platform: str  # "sgx", "snp", or "virtual"
    code_id: str  # hex digest of the enclave's code (MRENCLAVE analog)
    report_data: bytes  # the attested node's public identity key
    signature: bytes

    def signed_payload(self) -> bytes:
        return encode_value(
            {
                "platform": self.platform,
                "code_id": self.code_id,
                "report_data": self.report_data,
            }
        )

    def to_dict(self) -> dict:
        return {
            "platform": self.platform,
            "code_id": self.code_id,
            "report_data": self.report_data.hex(),
            "signature": self.signature.hex(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttestationQuote":
        return cls(
            platform=data["platform"],
            code_id=data["code_id"],
            report_data=bytes.fromhex(data["report_data"]),
            signature=bytes.fromhex(data["signature"]),
        )

    def encode(self) -> bytes:
        return encode_value(self.to_dict())

    @classmethod
    def decode(cls, data: bytes) -> "AttestationQuote":
        return cls.from_dict(decode_value(data))


class HardwareRoot:
    """The simulated hardware manufacturer: issues quotes for enclaves.

    A single instance is shared by all nodes of a simulation — the analog of
    "all our VMs have Intel CPUs". Verifiers hold only the public half.
    """

    def __init__(self, seed: bytes = b"hardware-root"):
        self._key = SigningKey.generate(seed)

    @property
    def public_key(self) -> VerifyingKey:
        return self._key.public_key

    def quote(self, platform: str, code_id: str, report_data: bytes) -> AttestationQuote:
        """Produce a quote. ``virtual`` platform quotes are unsigned — a
        virtual-mode node cannot prove anything (section 6.4)."""
        if platform == "virtual":
            return AttestationQuote(
                platform=platform, code_id=code_id, report_data=report_data, signature=b""
            )
        unsigned = AttestationQuote(
            platform=platform, code_id=code_id, report_data=report_data, signature=b""
        )
        return AttestationQuote(
            platform=platform,
            code_id=code_id,
            report_data=report_data,
            signature=self._key.sign(unsigned.signed_payload()),
        )


def verify_quote(
    quote: AttestationQuote,
    hardware_key: VerifyingKey,
    allowed_code_ids: set[str],
    expected_report_data: bytes,
    accept_virtual: bool = False,
) -> None:
    """Full join-time verification: hardware signature, code-id policy, and
    report-data binding. Raises :class:`AttestationError` on any failure."""
    if quote.platform == "virtual":
        if not accept_virtual:
            raise AttestationError("virtual-mode quote rejected by policy")
    else:
        try:
            hardware_key.verify(quote.signature, quote.signed_payload())
        except VerificationError as exc:
            raise AttestationError(f"quote signature invalid: {exc}") from exc
    if quote.code_id not in allowed_code_ids:
        raise AttestationError(
            f"code id {quote.code_id[:16]}… is not in the allowed set"
        )
    if not ct_eq(quote.report_data, expected_report_data):
        raise AttestationError("quote does not bind the presented node key")
