"""TEE platform descriptors and their performance factors.

Table 5 shows SGX costing roughly 1.8–2.8× over virtual mode for this
workload (memory encryption, EPC behaviour, transition costs); AMD SEV-SNP
early numbers are 2–8% overhead (section 7). These factors scale the
simulated execution costs in :mod:`repro.perf.costmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Platform:
    """One TEE platform's identity and cost profile."""

    name: str
    # Multiplier on in-enclave execution time relative to native.
    execution_factor: float
    # Cost of one host<->enclave transition pair, in seconds. On SGX these
    # are the expensive ECALL/OCALL-style switches that the ringbuffer
    # design amortizes (section 7).
    transition_cost: float
    # Whether quotes from this platform are hardware-signed.
    attestable: bool

    def __post_init__(self) -> None:
        if self.execution_factor < 1.0 or self.transition_cost < 0:
            raise ConfigurationError(f"invalid platform profile {self.name}")


PLATFORMS: dict[str, Platform] = {
    # Calibrated so that the five-node logging workload lands near Table 5's
    # SGX-vs-virtual ratios (~1.8× writes, ~1.4–2.4× reads).
    "sgx": Platform(name="sgx", execution_factor=1.75, transition_cost=4.0e-6, attestable=True),
    "snp": Platform(name="snp", execution_factor=1.05, transition_cost=0.5e-6, attestable=True),
    "virtual": Platform(name="virtual", execution_factor=1.0, transition_cost=0.0, attestable=False),
}


def get_platform(name: str) -> Platform:
    try:
        return PLATFORMS[name]
    except KeyError:
        raise ConfigurationError(f"unknown TEE platform {name!r}") from None
