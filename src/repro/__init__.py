"""repro — a pure-Python reproduction of the Confidential Consortium Framework.

CCF (Howard et al., VLDB 2023) is a framework for building confidential,
integrity-protected, highly available multiparty services on untrusted
infrastructure, combining TEEs with a ledger-backed replicated key-value
store and programmable multiparty governance.

This package reproduces the full system as a deterministic discrete-event
simulation with real cryptography. Start with :class:`repro.CCFService`:

    from repro import CCFService, ServiceSetup, NodeConfig

    service = CCFService(ServiceSetup(n_nodes=3))
    service.bootstrap()
    user = service.any_user_client()
    primary = service.primary_node()
    response = user.call(primary.node_id, "/app/write_message",
                         {"id": 1, "msg": "hello"})

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.app.application import Application
from repro.app.context import Request, RequestContext, Response
from repro.ledger.entry import TxID
from repro.ledger.receipts import Receipt
from repro.node.config import NodeConfig
from repro.node.node import CCFNode
from repro.service.client import ClosedLoopClient, ServiceClient
from repro.service.operator import Operator
from repro.service.service import CCFService, ServiceSetup

__version__ = "1.0.0"

__all__ = [
    "Application",
    "Request",
    "RequestContext",
    "Response",
    "TxID",
    "Receipt",
    "NodeConfig",
    "CCFNode",
    "ServiceClient",
    "ClosedLoopClient",
    "Operator",
    "CCFService",
    "ServiceSetup",
    "__version__",
]
