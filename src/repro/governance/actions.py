"""Built-in governance actions (Table 4, Listing 1).

Each action is a ``(validate, apply)`` pair: ``validate`` checks the
argument shapes when a proposal is submitted; ``apply`` executes the action
inside the accepting transaction, writing to the governance maps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.app.context import RequestContext
from repro.consensus.state import NodeStatus
from repro.errors import GovernanceError
from repro.node import maps


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise GovernanceError(message)


def _check_type(args: dict, key: str, expected: type, type_name: str) -> None:
    _check(key in args, f"missing argument {key!r}")
    _check(isinstance(args[key], expected), f"argument {key!r} must be a {type_name}")


@dataclass(frozen=True)
class Action:
    """One governance action: argument validation plus the state change."""

    name: str
    validate: Callable[[dict], None]
    apply: Callable[[RequestContext, dict, str], None]


def _invalidate_other_open_proposals(ctx: RequestContext, proposal_id: str) -> None:
    """Listing 1's invalidateOtherOpenProposals: actions that change the
    trust assumptions drop every other open proposal so stale ballots
    cannot accept them under the new rules."""
    for pid, info in list(ctx.items(maps.PROPOSALS_INFO)):
        if pid != proposal_id and isinstance(info, dict) and info.get("state") == "Open":
            ctx.put(maps.PROPOSALS_INFO, pid, dict(info, state="Dropped"))


# ----------------------------------------------------------------------
# Action implementations


def _apply_set_user(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    ctx.put(
        maps.USERS_CERTS,
        args["subject"],
        {"certificate": args["certificate"], "data": args.get("data", {})},
    )


def _apply_remove_user(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    ctx.remove(maps.USERS_CERTS, args["subject"])


def _apply_set_member(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    ctx.put(
        maps.MEMBERS_CERTS,
        args["subject"],
        {"certificate": args["certificate"], "data": args.get("data", {})},
    )
    if args.get("encryption_public_key"):
        ctx.put(
            maps.MEMBERS_KEYS, args["subject"],
            {"public_key": args["encryption_public_key"]},
        )
    _invalidate_other_open_proposals(ctx, proposal_id)


def _apply_remove_member(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    ctx.remove(maps.MEMBERS_CERTS, args["subject"])
    ctx.remove(maps.MEMBERS_KEYS, args["subject"])
    _invalidate_other_open_proposals(ctx, proposal_id)


def _apply_add_node_code(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    # Listing 1, verbatim semantics: allow a code id to join.
    ctx.put(maps.NODES_CODE_IDS, args["code_id"], "AllowedToJoin")
    _invalidate_other_open_proposals(ctx, proposal_id)


def _apply_remove_node_code(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    ctx.remove(maps.NODES_CODE_IDS, args["code_id"])
    _invalidate_other_open_proposals(ctx, proposal_id)


def _apply_transition_node_to_trusted(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    node_id = args["node_id"]
    row = ctx.get(maps.NODES_INFO, node_id)
    _check(isinstance(row, dict), f"unknown node {node_id}")
    _check(
        row["status"] == NodeStatus.PENDING.value,
        f"node {node_id} is {row['status']}, not Pending",
    )
    ctx.put(maps.NODES_INFO, node_id, dict(row, status=NodeStatus.TRUSTED.value))


def _apply_remove_node(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    node_id = args["node_id"]
    row = ctx.get(maps.NODES_INFO, node_id)
    _check(isinstance(row, dict), f"unknown node {node_id}")
    if row["status"] == NodeStatus.TRUSTED.value:
        # First retirement step; the primary appends the RETIRED record
        # once this transaction commits (section 4.5).
        ctx.put(maps.NODES_INFO, node_id, dict(row, status=NodeStatus.RETIRING.value))
    elif row["status"] == NodeStatus.PENDING.value:
        ctx.remove(maps.NODES_INFO, node_id)


def _apply_set_js_app(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    """Live code update of the JavaScript application (section 5's live
    code updates; Table 3's modules/endpoints maps)."""
    ctx.put(maps.MODULES, "app", {"source": args["source"]})
    for endpoint_name, metadata in args.get("endpoints", {}).items():
        ctx.put(maps.ENDPOINTS, endpoint_name, metadata)


def _apply_set_constitution(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    ctx.put(maps.CONSTITUTION, "constitution", dict(args["constitution"]))
    _invalidate_other_open_proposals(ctx, proposal_id)


def _apply_transition_service_to_open(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    info = ctx.get(maps.SERVICE_INFO, "service")
    _check(isinstance(info, dict), "service info missing")
    was_recovering = info.get("status") == maps.SERVICE_RECOVERING
    if was_recovering or args.get("previous_service_identity"):
        # Recovery binding (section 5.2): the proposal names the previous
        # and next identities so it applies to exactly one recovery.
        _check(
            args.get("next_service_identity") == info["certificate"]["public_key"],
            "next_service_identity does not match this service",
        )
        recorded_previous = info.get("previous_identity") or {}
        if isinstance(recorded_previous, dict) and recorded_previous.get("public_key"):
            _check(
                args.get("previous_service_identity")
                == recorded_previous["public_key"],
                "previous_service_identity does not match the recovered ledger",
            )
    ctx.put(maps.SERVICE_INFO, "service", dict(info, status=maps.SERVICE_OPEN))
    if was_recovering and ctx.node is not None:
        obs = ctx.node.scheduler.obs
        if obs is not None:
            obs.recovery_event(ctx.node.node_id, "open")


def _apply_set_recovery_threshold(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    _check(args["recovery_threshold"] >= 1, "recovery threshold must be >= 1")
    info = ctx.get(maps.SERVICE_INFO, "service") or {}
    ctx.put(
        maps.SERVICE_INFO, "service",
        dict(info, recovery_threshold=args["recovery_threshold"]),
    )


def _apply_set_jwt_issuer(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    ctx.put(maps.JWT_ISSUERS, args["issuer"], {"public_key": args["public_key"]})


def _apply_trigger_ledger_rekey(ctx: RequestContext, args: dict, proposal_id: str) -> None:
    """Request a ledger-secret rotation (Table 1 notes CCF provides
    rekeying). The committed marker makes every trusted node derive the
    next-generation secret in-enclave from the shared service key — the new
    secret itself never crosses the network; the primary then records the
    wrapped form and fresh recovery shares."""
    current = ctx.get(maps.LEDGER_SECRET, "current") or {"generation": 0}
    ctx.put(
        maps.LEDGER_SECRET,
        "rekey_request",
        {"new_generation": current["generation"] + 1, "proposal_id": proposal_id},
    )


# ----------------------------------------------------------------------
# Validation


def _validate_subject_cert(args: dict) -> None:
    _check_type(args, "subject", str, "string")
    _check_type(args, "certificate", dict, "certificate dict")


def _validate_subject(args: dict) -> None:
    _check_type(args, "subject", str, "string")


def _validate_code_id(args: dict) -> None:
    _check_type(args, "code_id", str, "string")


def _validate_node_id(args: dict) -> None:
    _check_type(args, "node_id", str, "string")


def _validate_js_app(args: dict) -> None:
    _check_type(args, "source", str, "string")


def _validate_constitution(args: dict) -> None:
    _check_type(args, "constitution", dict, "constitution descriptor")


def _validate_open(args: dict) -> None:
    pass  # identity-binding args are optional outside recovery


def _validate_threshold(args: dict) -> None:
    _check_type(args, "recovery_threshold", int, "integer")


def _validate_jwt_issuer(args: dict) -> None:
    _check_type(args, "issuer", str, "string")
    _check_type(args, "public_key", str, "hex string")


GOVERNANCE_ACTIONS: dict[str, Action] = {
    action.name: action
    for action in (
        Action("set_user", _validate_subject_cert, _apply_set_user),
        Action("remove_user", _validate_subject, _apply_remove_user),
        Action("set_member", _validate_subject_cert, _apply_set_member),
        Action("remove_member", _validate_subject, _apply_remove_member),
        Action("add_node_code", _validate_code_id, _apply_add_node_code),
        Action("remove_node_code", _validate_code_id, _apply_remove_node_code),
        Action(
            "transition_node_to_trusted",
            _validate_node_id,
            _apply_transition_node_to_trusted,
        ),
        Action("remove_node", _validate_node_id, _apply_remove_node),
        Action("set_js_app", _validate_js_app, _apply_set_js_app),
        Action("set_constitution", _validate_constitution, _apply_set_constitution),
        Action(
            "transition_service_to_open", _validate_open, _apply_transition_service_to_open
        ),
        Action("set_recovery_threshold", _validate_threshold, _apply_set_recovery_threshold),
        Action("set_jwt_issuer", _validate_jwt_issuer, _apply_set_jwt_issuer),
        Action("trigger_ledger_rekey", lambda args: None, _apply_trigger_ledger_rekey),
    )
}


def validate_actions(actions: list[dict]) -> None:
    """Validate a proposal's action list against the registry."""
    _check(isinstance(actions, list) and actions, "proposal must contain actions")
    for action in actions:
        _check(isinstance(action, dict) and "name" in action, "malformed action")
        registered = GOVERNANCE_ACTIONS.get(action["name"])
        _check(registered is not None, f"unknown governance action {action['name']!r}")
        registered.validate(action.get("args", {}))


def apply_actions(ctx: RequestContext, actions: list[dict], proposal_id: str) -> None:
    """Execute all of an accepted proposal's actions, in order, atomically
    (they share the accepting transaction)."""
    for action in actions:
        registered = GOVERNANCE_ACTIONS[action["name"]]
        registered.apply(ctx, action.get("args", {}), proposal_id)
