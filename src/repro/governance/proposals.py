"""Governance endpoints: proposals and ballots (section 5.1, Listing 2).

Proposals and ballots are member-signed requests recorded — with their
signatures — on the ledger in public maps, so governance is auditable
offline. Resolution happens inside the same transaction that records the
deciding ballot, exactly as in Listing 2 where txid 3.209096 contains both
the accepting ballot and the node status changes it triggered.
"""

from __future__ import annotations

from repro.app.application import Application
from repro.app.context import RequestContext
from repro.crypto.hashing import sha256
from repro.errors import GovernanceError
from repro.governance.constitution import (
    PROPOSAL_ACCEPTED,
    PROPOSAL_OPEN,
    PROPOSAL_WITHDRAWN,
    constitution_for,
)
from repro.kv.serialization import encode_value
from repro.node import maps


def _proposal_id_for(ctx: RequestContext) -> str:
    """Deterministic proposal id: digest of the signed request."""
    envelope = ctx.request.credentials.get("signed_request", {})
    return sha256(encode_value(
        {"sig": envelope.get("signature", ""), "payload": envelope.get("payload", "")}
    )).hex()[:16]


def _record_history(ctx: RequestContext, key: str) -> None:
    """Store the member-signed envelope on the ledger (Table 3's history)."""
    envelope = ctx.request.credentials.get("signed_request")
    if envelope is not None:
        ctx.put(maps.HISTORY, key, dict(envelope))


def _resolve_and_maybe_apply(
    ctx: RequestContext, proposal_id: str, proposal: dict, info: dict
) -> dict:
    constitution = constitution_for(ctx)
    votes: dict[str, bool] = {}
    for member_id, ballot in info.get("ballots", {}).items():
        votes[member_id] = constitution.evaluate_ballot(
            ballot, proposal, info["proposer_id"]
        )
    state = constitution.resolve(ctx, proposal, info["proposer_id"], votes)
    info = dict(info, state=state)
    if state == PROPOSAL_ACCEPTED:
        info["final_votes"] = dict(votes)
        # Apply within this same transaction: ballots and effects land
        # in one atomic ledger entry (Listing 2, txid 3.209096).
        ctx.put(maps.PROPOSALS_INFO, proposal_id, info)
        constitution.apply(ctx, proposal, proposal_id)
        # apply may have rewritten proposals_info rows (e.g. dropping other
        # proposals); our own row was written before apply so re-read and
        # keep the accepted state authoritative.
        current = ctx.get(maps.PROPOSALS_INFO, proposal_id)
        if current != info:
            ctx.put(maps.PROPOSALS_INFO, proposal_id, info)
    else:
        ctx.put(maps.PROPOSALS_INFO, proposal_id, info)
    return info


def build_governance_app() -> Application:
    """The governance endpoint set, mounted at ``/gov/`` on every node."""
    app = Application(name="governance")

    @app.endpoint("propose", auth_policy="user_signature")
    def propose(ctx: RequestContext):
        ctx.require(ctx.caller.kind == "member", "only members may propose")
        actions = ctx.request.body.get("actions")
        constitution = constitution_for(ctx)
        constitution.validate({"actions": actions})
        proposal_id = _proposal_id_for(ctx)
        if ctx.get(maps.PROPOSALS, proposal_id) is not None:
            raise GovernanceError(f"duplicate proposal {proposal_id}")
        proposal = {"actions": actions}
        info = {"proposer_id": ctx.caller.identifier, "state": PROPOSAL_OPEN, "ballots": {}}
        ctx.put(maps.PROPOSALS, proposal_id, proposal)
        _record_history(ctx, f"propose:{proposal_id}")
        info = _resolve_and_maybe_apply(ctx, proposal_id, proposal, info)
        return {"proposal_id": proposal_id, "state": info["state"]}

    @app.endpoint("vote", auth_policy="user_signature")
    def vote(ctx: RequestContext):
        ctx.require(ctx.caller.kind == "member", "only members may vote")
        proposal_id = ctx.request.body["proposal_id"]
        ballot = ctx.request.body["ballot"]
        proposal = ctx.get(maps.PROPOSALS, proposal_id)
        info = ctx.get(maps.PROPOSALS_INFO, proposal_id)
        ctx.require(proposal is not None and info is not None, f"no proposal {proposal_id}")
        if info["state"] != PROPOSAL_OPEN:
            raise GovernanceError(
                f"proposal {proposal_id} is {info['state']}, not Open"
            )
        ballots = dict(info.get("ballots", {}))
        ballots[ctx.caller.identifier] = ballot
        info = dict(info, ballots=ballots)
        _record_history(ctx, f"vote:{proposal_id}:{ctx.caller.identifier}")
        info = _resolve_and_maybe_apply(ctx, proposal_id, proposal, info)
        return {"proposal_id": proposal_id, "state": info["state"]}

    @app.endpoint("withdraw", auth_policy="user_signature")
    def withdraw(ctx: RequestContext):
        ctx.require(ctx.caller.kind == "member", "only members may withdraw")
        proposal_id = ctx.request.body["proposal_id"]
        info = ctx.get(maps.PROPOSALS_INFO, proposal_id)
        ctx.require(info is not None, f"no proposal {proposal_id}")
        ctx.require(
            info["proposer_id"] == ctx.caller.identifier,
            "only the proposer may withdraw a proposal",
        )
        if info["state"] != PROPOSAL_OPEN:
            raise GovernanceError(f"proposal {proposal_id} is {info['state']}")
        ctx.put(maps.PROPOSALS_INFO, proposal_id, dict(info, state=PROPOSAL_WITHDRAWN))
        _record_history(ctx, f"withdraw:{proposal_id}")
        return {"proposal_id": proposal_id, "state": PROPOSAL_WITHDRAWN}

    @app.endpoint("proposal", auth_policy="no_auth", read_only=True)
    def proposal_status(ctx: RequestContext):
        proposal_id = ctx.request.body["proposal_id"]
        proposal = ctx.get(maps.PROPOSALS, proposal_id)
        info = ctx.get(maps.PROPOSALS_INFO, proposal_id)
        ctx.require(proposal is not None, f"no proposal {proposal_id}")
        return {"proposal_id": proposal_id, "proposal": proposal, "info": info}

    @app.endpoint("members", auth_policy="no_auth", read_only=True)
    def members(ctx: RequestContext):
        return {
            "members": sorted(subject for subject, _row in ctx.items(maps.MEMBERS_CERTS))
        }

    @app.endpoint("encrypted_recovery_share", auth_policy="member_cert", read_only=True)
    def encrypted_recovery_share(ctx: RequestContext):
        """A member fetching their own encrypted share (they could equally
        read it from the public ledger offline)."""
        row = ctx.get(maps.RECOVERY_SHARES, ctx.caller.identifier)
        ctx.require(row is not None, "no recovery share recorded for this member")
        return {"member": ctx.caller.identifier, "encrypted_share": row["share"]}

    @app.endpoint("submit_recovery_share", auth_policy="user_signature")
    def submit_recovery_share(ctx: RequestContext):
        ctx.require(ctx.caller.kind == "member", "only members may submit shares")
        from repro.recovery.shares import handle_share_submission

        return handle_share_submission(ctx)

    return app
