"""Multiparty governance (section 5).

Consortium members oversee the service through *proposals* (sets of
governance actions) and *ballots* (votes on proposals), processed by the
programmable *constitution*. Everything is recorded in public maps with the
members' signatures, so governance is auditable offline.
"""

from repro.governance.constitution import (
    Constitution,
    DefaultConstitution,
    constitution_for,
)
from repro.governance.proposals import build_governance_app
from repro.governance.actions import GOVERNANCE_ACTIONS

__all__ = [
    "Constitution",
    "DefaultConstitution",
    "constitution_for",
    "build_governance_app",
    "GOVERNANCE_ACTIONS",
]
