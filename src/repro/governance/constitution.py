"""The programmable constitution (section 5.1).

The constitution is the contract between consortium members: it defines the
available governance actions, the ``resolve`` function that decides when a
proposal is accepted given the submitted ballots, and the ``apply`` function
that executes accepted proposals.

Two runtimes are provided, selected by the descriptor stored in the
``public:ccf.gov.constitution`` map:

- ``{"kind": "default"}`` — the built-in majority constitution: a proposal
  is accepted once a strict majority of active members vote for it
  (the paper's default constitution [87]).
- ``{"kind": "js", "resolve": <source>}`` — a resolve function written in
  the embedded mini-JavaScript, mirroring the real CCF where the whole
  constitution is JavaScript. Ballots may also be JS vote functions
  (Listing 2's ``export function vote (proposal, proposer_id) ...``).

The constitution itself can be replaced through governance
(``set_constitution``), if the current constitution permits it.
"""

from __future__ import annotations

from typing import Protocol

from repro.app.context import RequestContext
from repro.errors import GovernanceError
from repro.governance.actions import apply_actions, validate_actions
from repro.node import maps

PROPOSAL_OPEN = "Open"
PROPOSAL_ACCEPTED = "Accepted"
PROPOSAL_REJECTED = "Rejected"
PROPOSAL_WITHDRAWN = "Withdrawn"
PROPOSAL_DROPPED = "Dropped"


class Constitution(Protocol):
    """What a constitution must provide (section 5.1)."""

    def validate(self, proposal: dict) -> None:
        """Check a proposal's shape on submission; raise GovernanceError."""

    def evaluate_ballot(self, ballot: dict, proposal: dict, proposer_id: str) -> bool:
        """Interpret one member's ballot as a for/against vote."""

    def resolve(self, ctx: RequestContext, proposal: dict, proposer_id: str,
                votes: dict[str, bool]) -> str:
        """Decide the proposal state given the evaluated votes."""

    def apply(self, ctx: RequestContext, proposal: dict, proposal_id: str) -> None:
        """Execute an accepted proposal's actions."""


def _active_member_count(ctx: RequestContext) -> int:
    return sum(1 for _k, _v in ctx.items(maps.MEMBERS_CERTS))


class DefaultConstitution:
    """Strict-majority voting over the active consortium members."""

    def validate(self, proposal: dict) -> None:
        validate_actions(proposal.get("actions", []))

    def evaluate_ballot(self, ballot: dict, proposal: dict, proposer_id: str) -> bool:
        if not isinstance(ballot, dict):
            raise GovernanceError("ballot must be an object")
        if "js" in ballot:
            from repro.app.jsapp.interp import evaluate_vote_function

            return bool(evaluate_vote_function(ballot["js"], proposal, proposer_id))
        if "approve" in ballot:
            return bool(ballot["approve"])
        raise GovernanceError("ballot must contain 'approve' or a 'js' vote function")

    def resolve(
        self, ctx: RequestContext, proposal: dict, proposer_id: str, votes: dict[str, bool]
    ) -> str:
        members = _active_member_count(ctx)
        approvals = sum(1 for approved in votes.values() if approved)
        if approvals > members // 2:
            return PROPOSAL_ACCEPTED
        # A proposal everyone has voted against can never pass.
        rejections = sum(1 for approved in votes.values() if not approved)
        if members and rejections >= members - members // 2:
            return PROPOSAL_REJECTED
        return PROPOSAL_OPEN

    def apply(self, ctx: RequestContext, proposal: dict, proposal_id: str) -> None:
        apply_actions(ctx, proposal.get("actions", []), proposal_id)


class JSConstitution(DefaultConstitution):
    """A constitution whose resolve logic is mini-JavaScript source.

    The resolve function receives ``(proposal, proposer_id, votes,
    member_count)`` where votes is a list of ``{member_id, vote}`` objects,
    and must return "Open", "Accepted", or "Rejected". Actions still apply
    through the shared registry — the JS layer decides *whether*, the
    action table defines *what* (Table 4).
    """

    def __init__(self, resolve_source: str):
        self.resolve_source = resolve_source

    def resolve(
        self, ctx: RequestContext, proposal: dict, proposer_id: str, votes: dict[str, bool]
    ) -> str:
        from repro.app.jsapp.interp import evaluate_resolve_function

        vote_rows = [
            {"member_id": member_id, "vote": approved}
            for member_id, approved in sorted(votes.items())
        ]
        outcome = evaluate_resolve_function(
            self.resolve_source, proposal, proposer_id, vote_rows,
            _active_member_count(ctx),
        )
        if outcome not in (PROPOSAL_OPEN, PROPOSAL_ACCEPTED, PROPOSAL_REJECTED):
            raise GovernanceError(f"constitution returned invalid state {outcome!r}")
        return outcome


# The mini-JS source equivalent of the default constitution, used when a
# service installs a JS constitution (and by tests mirroring the paper).
DEFAULT_JS_RESOLVE = """
function resolve(proposal, proposer_id, votes, member_count) {
  var approvals = 0;
  var rejections = 0;
  for (var i = 0; i < votes.length; i = i + 1) {
    if (votes[i].vote) { approvals = approvals + 1; }
    else { rejections = rejections + 1; }
  }
  if (approvals > Math.floor(member_count / 2)) { return "Accepted"; }
  if (rejections >= member_count - Math.floor(member_count / 2)) { return "Rejected"; }
  return "Open";
}
"""


def constitution_for(ctx: RequestContext) -> Constitution:
    """Instantiate the constitution currently installed in the store."""
    descriptor = ctx.get(maps.CONSTITUTION, "constitution") or {"kind": "default"}
    kind = descriptor.get("kind", "default")
    if kind == "default":
        return DefaultConstitution()
    if kind == "js":
        return JSConstitution(descriptor["resolve"])
    raise GovernanceError(f"unknown constitution kind {kind!r}")
