"""Bounded adversarial exploration of the consensus protocol.

Inspired by the paper's TLA+ model checking [88]: instead of exhaustive
state-space enumeration (infeasible in-process), the explorer drives many
*randomized adversarial schedules* — crash/restart patterns, partitions,
message loss — over small clusters, checking every safety invariant after
every scheduling step. A seed fully determines a schedule, so any violation
is replayable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.raft import ConsensusConfig
from repro.errors import NotPrimaryError
from repro.verification.invariants import InvariantViolation, check_all_invariants


@dataclass
class ExplorationResult:
    """Aggregate outcome of a batch of adversarial schedules."""

    schedules_run: int = 0
    steps_checked: int = 0
    elections_observed: int = 0
    commits_observed: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def explore(
    n_nodes: int = 3,
    schedules: int = 20,
    steps_per_schedule: int = 40,
    seed: int = 0,
    loss_probability: float = 0.05,
) -> ExplorationResult:
    """Run ``schedules`` adversarial schedules over fresh clusters.

    Each step advances simulated time by a random amount, optionally
    injects a fault (crash of a minority node, a partition, heal), and may
    submit writes/signatures at the current primary. All invariants are
    checked after every step.
    """
    from repro.verification.harness import Cluster

    result = ExplorationResult()
    for schedule_index in range(schedules):
        cluster = Cluster(
            n_nodes,
            seed=seed * 10_007 + schedule_index,
            config=ConsensusConfig(),
        )
        cluster.start()
        rng = cluster.scheduler.rng
        cluster.network.set_loss_probability(loss_probability)
        crashed: list[str] = []
        partitioned = False
        max_crashes = (n_nodes - 1) // 2
        for _step in range(steps_per_schedule):
            action = rng.random()
            if action < 0.15 and len(crashed) < max_crashes:
                victim = rng.choice(
                    [h.node_id for h in cluster.alive_hosts()]
                )
                cluster.network.crash(victim)
                crashed.append(victim)
            elif action < 0.25 and crashed:
                # A crashed node's enclave state is gone; in the protocol
                # harness we model restart as network healing of a node that
                # kept its ledger (a stop-failure, not a disk loss).
                revived = crashed.pop(rng.randrange(len(crashed)))
                cluster.network.restart(revived)
                cluster.hosts[revived].consensus.resume()
            elif action < 0.35 and not partitioned and n_nodes >= 3:
                ids = [h.node_id for h in cluster.alive_hosts()]
                rng.shuffle(ids)
                cut = max(1, len(ids) // 3)
                cluster.network.partition_groups(ids[:cut], ids[cut:])
                partitioned = True
            elif action < 0.45 and partitioned:
                cluster.network.heal()
                partitioned = False
            elif action < 0.8:
                primary = cluster.primary()
                if primary is not None and not cluster.network.is_down(primary.node_id):
                    try:
                        primary.submit_write(("k", _step), rng.randrange(1000))
                        if rng.random() < 0.4:
                            primary.sign_now()
                    except NotPrimaryError:
                        pass  # lost primacy between check and call
            cluster.run(rng.uniform(0.02, 0.3))
            engines = [host.consensus for host in cluster.hosts.values()]
            try:
                check_all_invariants(engines)
            except InvariantViolation as violation:  # recorded, not raised
                result.violations.append(
                    f"schedule {schedule_index} step {_step}: {violation}"
                )
                break
            result.steps_checked += 1
        result.schedules_run += 1
        result.elections_observed += sum(
            host.consensus.elections_started for host in cluster.hosts.values()
        )
        result.commits_observed += max(
            host.consensus.commit_seqno for host in cluster.hosts.values()
        )
    return result
