"""Mechanical checking of the consensus protocol.

The paper's authors model-checked CCF's consensus (including
reconfiguration) in TLA+ [68, 88]. This package provides the laptop-scale
analog for the reproduction:

- :mod:`repro.verification.invariants` — the classic safety invariants
  (election safety, log matching, leader completeness, commit safety)
  as executable checks over a set of live nodes.
- :mod:`repro.verification.explorer` — a bounded explicit-state explorer
  that drives small clusters through many adversarial schedules (message
  orderings, crashes, partitions) derived from a seed, checking the
  invariants at every step.
"""

from repro.verification.invariants import check_all_invariants, InvariantViolation
from repro.verification.explorer import explore, ExplorationResult
from repro.verification.model import check as model_check, ModelResult

__all__ = [
    "check_all_invariants",
    "InvariantViolation",
    "explore",
    "ExplorationResult",
    "model_check",
    "ModelResult",
]
