"""End-to-end disaster-recovery invariants (section 5.2).

The chaos-era invariants (:mod:`repro.verification.invariants`,
:mod:`repro.verification.liveness`) judge a running consensus group. A
*disaster* schedule ends in a different place: the original service is
gone, a recovered one stands in its place, and the questions are about the
contract between the two — what survived, what was lost, and whether every
loss was *visible*. The orchestrator (:mod:`repro.sim.disaster`) collects
its observations into :class:`DisasterEvidence` and the three checkers
below turn them into violations:

1. **Committed-receipt durability** — when at least one salvaged disk was
   untouched by the adversary, no transaction a client holds a receipt for
   may be lost: fsynced complete chunks survive any power loss, and a
   receipt is only ever issued for a transaction under a committed
   signature, which the primary persists (and fsyncs) before serving it.
2. **Rollback detectability** — the recovered service must present a new
   identity (reported to the client as a typed
   :class:`~repro.errors.ServiceIdentityChangedError`), and the set of
   acknowledged writes the client reports lost (typed
   :class:`~repro.errors.LostWriteError`) must *exactly* equal the set the
   recovered ledger actually dropped. No silent rollback — and no false
   alarms, which would train users to ignore the real thing.
3. **Recovery liveness** — once the member shares reach the threshold, the
   service must open within the schedule's bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DisasterEvidence:
    """What one disaster schedule observed, as plain data."""

    # Client-side record (before the disaster).
    acked_txids: list[str] = field(default_factory=list)
    receipted_txids: list[str] = field(default_factory=list)

    # Salvage facts.
    intact_salvaged: bool = False  # >= 1 salvaged disk the adversary skipped
    durable_floor: int = 0  # max synced_ledger_seqno over intact salvaged disks

    # Recovered-service ground truth (read from the recovery node's ledger,
    # not through the client path the detectability check exercises).
    recovered: bool = False
    verified_seqno: int = 0
    committed_txids: set[str] = field(default_factory=set)
    receipted_reads_ok: bool = True  # receipted payloads read back intact

    # Client-side audit after reconnecting (typed findings).
    identity_change_reported: bool = False
    reported_lost_txids: set[str] = field(default_factory=set)

    # Liveness facts.
    shares_reached_threshold: bool = False
    service_opened: bool = False
    open_within_bound: bool = True


def check_committed_receipt_durability(evidence: DisasterEvidence) -> list[str]:
    """No receipted transaction is lost when an intact disk was salvaged."""
    if not evidence.intact_salvaged:
        return []  # every salvaged disk was tampered with: best effort only
    violations = []
    if not evidence.recovered:
        violations.append(
            "receipt-durability: an intact disk was salvaged but recovery "
            "did not reach a running service"
        )
        return violations
    lost = [t for t in evidence.receipted_txids if t not in evidence.committed_txids]
    if lost:
        violations.append(
            f"receipt-durability: receipted transactions lost despite an "
            f"intact salvaged disk: {sorted(lost)}"
        )
    if not evidence.receipted_reads_ok:
        violations.append(
            "receipt-durability: a receipted payload did not read back "
            "intact after recovery"
        )
    return violations


def check_rollback_detectability(evidence: DisasterEvidence) -> list[str]:
    """Every dropped acknowledged write is reported typed; the identity
    change is reported typed; and nothing is reported that did not happen."""
    if not evidence.recovered:
        return []  # no recovered service to silently roll anything back
    violations = []
    if not evidence.identity_change_reported:
        violations.append(
            "rollback-detectability: the recovered service's new identity "
            "was not reported to the reconnecting client"
        )
    actually_lost = {
        t for t in evidence.acked_txids if t not in evidence.committed_txids
    }
    silent = actually_lost - evidence.reported_lost_txids
    if silent:
        violations.append(
            f"rollback-detectability: acknowledged writes silently lost "
            f"(no typed LostWriteError): {sorted(silent)}"
        )
    phantom = evidence.reported_lost_txids - actually_lost
    if phantom:
        violations.append(
            f"rollback-detectability: writes reported lost that the "
            f"recovered ledger still commits: {sorted(phantom)}"
        )
    return violations


def check_recovery_liveness(evidence: DisasterEvidence) -> list[str]:
    """The service opens within the bound once shares reach the threshold."""
    if not evidence.shares_reached_threshold:
        return []  # never enough shares: nothing to be live about
    violations = []
    if not evidence.service_opened:
        violations.append(
            "recovery-liveness: shares reached the threshold but the "
            "service never opened"
        )
    elif not evidence.open_within_bound:
        violations.append(
            "recovery-liveness: the service opened, but not within the "
            "schedule's bound"
        )
    return violations


def check_disaster_invariants(evidence: DisasterEvidence) -> list[str]:
    """All three §5.2 invariants; empty list means the schedule passed."""
    return (
        check_committed_receipt_durability(evidence)
        + check_rollback_detectability(evidence)
        + check_recovery_liveness(evidence)
    )
