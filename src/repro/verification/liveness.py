"""Liveness and recovery checkers for the full service stack.

The safety invariants (:mod:`repro.verification.invariants`) say nothing
about *progress*: a cluster that elects nobody and commits nothing forever
violates none of them. Following the CCF follow-up work on smart casual
verification (Howard et al., 2024), chaos schedules therefore also check
bounded-time liveness after the environment heals:

- a primary is re-elected within a bound;
- the commit index resumes advancing;
- clients observe a minimum availability floor;
- no reconfiguration stays permanently stuck (every node's active
  configuration list collapses back to one entry).

Each checker is a predicate over live consensus engines plus a driver
(:func:`await_liveness`) that advances simulated time until the predicate
holds or the bound expires. A liveness violation is an environmental
*finding*, reported with its seed — unlike a safety violation it can also
indicate too tight a bound, so the bound is part of the finding text.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.consensus.raft import ConsensusNode
from repro.consensus.state import Role
from repro.errors import CCFError
from repro.sim.scheduler import Scheduler


class LivenessViolation(CCFError):
    """A bounded-time progress property did not hold within its bound."""


def await_liveness(
    scheduler: Scheduler,
    predicate: Callable[[], bool],
    bound: float,
    description: str,
) -> str | None:
    """Advance simulated time until ``predicate`` holds. Returns None on
    success, or a violation string when the bound expires (or the event
    queue drains) first."""
    deadline = scheduler.now + bound
    while not predicate():
        if scheduler.now >= deadline:
            return f"liveness: {description} not reached within {bound}s"
        if not scheduler.step():
            return f"liveness: {description} unreachable (event queue drained)"
    return None


def has_live_primary(engines: Sequence[ConsensusNode]) -> bool:
    """Some live engine believes it is primary (bounded-time re-election)."""
    return any(engine.role is Role.PRIMARY for engine in engines)


def max_commit(engines: Sequence[ConsensusNode]) -> int:
    return max((engine.commit_seqno for engine in engines), default=0)


def commit_advanced(engines: Sequence[ConsensusNode], baseline: int) -> bool:
    """The committed prefix grew past ``baseline`` (commit resumes)."""
    return max_commit(engines) > baseline


def configurations_settled(engines: Sequence[ConsensusNode]) -> bool:
    """No engine is mid-reconfiguration: every active-configuration list
    has collapsed back to a single committed entry."""
    return all(len(engine.configurations) == 1 for engine in engines)


def availability_floor(
    completion_times: Sequence[float],
    window_start: float,
    window_end: float,
    min_events: int,
) -> str | None:
    """Client-observed availability: at least ``min_events`` requests
    completed inside the window. Returns None or a violation string."""
    observed = sum(1 for t in completion_times if window_start <= t < window_end)
    if observed >= min_events:
        return None
    return (
        f"liveness: availability floor violated — {observed} completions in "
        f"[{window_start:.3f}, {window_end:.3f}), needed {min_events}"
    )
