"""Exhaustive bounded model checking of an abstract CCF consensus model.

The paper model-checks CCF's consensus in TLA+ [68, 88]. This module is the
reproduction's equivalent: a small-state abstraction of the protocol whose
*entire* reachable state space (under explicit bounds) is explored by BFS,
checking safety at every state. Unlike :mod:`repro.verification.explorer`
(randomized schedules over the real implementation), this explores **all**
interleavings of the abstract model — the classic trade of fidelity for
exhaustiveness.

The abstraction (mirroring the shape of the TLA+ spec):

- per-node state: view, role, log (tuple of ``(view, is_signature)``
  entries), commit index;
- atomic quorum actions instead of individual messages (a standard
  abstraction): an election happens in one step with an explicit voter set,
  each voter checked against CCF's last-signature voting rule; replication
  copies the primary's log prefix to one follower in one step;
- commit advances to the highest current-view signature entry whose prefix
  is replicated on a quorum.

Checked invariants: election safety, log matching, and — the central one —
**committed-prefix stability**: once any state commits entry ``e`` at
position ``i``, no reachable successor ever commits a different entry at
``i``.

``buggy_ack=True`` re-introduces the match-index bug the randomized
explorer found in this repository's own implementation (a follower's stale
log suffix counted as replicated): the checker then produces a concrete
violation trace, demonstrating that the state space genuinely contains the
bug and that the fixed rule excludes it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

BACKUP, PRIMARY = 0, 1

# A node: (view, role, log, commit) with log = tuple of (view, is_sig).
NodeState = tuple[int, int, tuple[tuple[int, bool], ...], int]
# Global state: tuple of nodes.
State = tuple[NodeState, ...]


@dataclass
class ModelResult:
    """Outcome of one bounded exhaustive exploration."""

    states_explored: int = 0
    transitions: int = 0
    violation: str | None = None
    trace: list[str] = field(default_factory=list)
    hit_bounds: bool = False

    @property
    def ok(self) -> bool:
        return self.violation is None


def _last_sig(log: tuple) -> tuple[int, int]:
    """(view, seqno) of the last signature entry; (0, 0) if none."""
    for index in range(len(log) - 1, -1, -1):
        view, is_sig = log[index]
        if is_sig:
            return (view, index + 1)
    return (0, 0)


def _quorums(n: int) -> list[frozenset[int]]:
    majority = n // 2 + 1
    result = []
    for mask in range(1 << n):
        members = frozenset(i for i in range(n) if mask >> i & 1)
        if len(members) >= majority:
            result.append(members)
    return result


def initial_state(n_nodes: int) -> State:
    """Node 0 starts as the view-1 primary with its opening signature."""
    nodes = []
    for i in range(n_nodes):
        if i == 0:
            nodes.append((1, PRIMARY, ((1, True),), 1))
        else:
            nodes.append((1, BACKUP, ((1, True),), 0))
    return tuple(nodes)


def successors(state: State, max_view: int, max_log: int, buggy_ack: bool):
    """Yield (action description, next state) pairs."""
    n = len(state)
    quorums = _quorums(n)

    # --- primary appends an entry (user or signature) -------------------
    for i, (view, role, log, commit) in enumerate(state):
        if role is not PRIMARY or len(log) >= max_log:
            continue
        for is_sig in (False, True):
            new_log = log + ((view, is_sig),)
            new_node = (view, role, new_log, commit)
            yield (
                f"append({i}, {'sig' if is_sig else 'user'})",
                state[:i] + (new_node,) + state[i + 1:],
            )

    # --- replication: primary overwrites one follower's divergent suffix
    for i, (p_view, p_role, p_log, p_commit) in enumerate(state):
        if p_role is not PRIMARY:
            continue
        for j, (f_view, f_role, f_log, f_commit) in enumerate(state):
            if i == j or f_view > p_view:
                continue
            if f_log == p_log and f_view == p_view:
                continue
            new_follower = (p_view, BACKUP, p_log, f_commit)
            yield (
                f"replicate({i}->{j})",
                state[:j] + (new_follower,) + state[j + 1:],
            )

    # --- commit: highest current-view signature replicated on a quorum --
    for i, (view, role, log, commit) in enumerate(state):
        if role is not PRIMARY:
            continue
        for seqno in range(len(log), commit, -1):
            entry_view, is_sig = log[seqno - 1]
            if not is_sig or entry_view != view:
                continue
            prefix = log[:seqno]
            for quorum in quorums:
                if i not in quorum:
                    continue
                if all(
                    _acks(state[m], prefix, buggy_ack) for m in quorum if m != i
                ):
                    new_node = (view, role, log, seqno)
                    yield (
                        f"commit({i}, {seqno})",
                        state[:i] + (new_node,) + state[i + 1:],
                    )
                    break  # one quorum suffices; others yield same state
            break  # only the highest eligible signature matters

    # --- election: atomic quorum vote per the last-signature rule -------
    for i, (view, role, log, commit) in enumerate(state):
        new_view = max(node[0] for node in state) + 1
        if new_view > max_view:
            continue
        candidate_sig = _last_sig(log)
        for quorum in quorums:
            if i not in quorum:
                continue
            if not all(
                _would_vote(state[m], candidate_sig) for m in quorum if m != i
            ):
                continue
            # Winner truncates to its last signature and opens the view
            # with a fresh signature transaction.
            sig_seqno = candidate_sig[1]
            new_log = log[:sig_seqno] + ((new_view, True),)
            if len(new_log) > max_log:
                continue
            nodes = list(state)
            nodes[i] = (new_view, PRIMARY, new_log, commit)
            for m in quorum:
                if m != i:
                    m_view, _m_role, m_log, m_commit = state[m]
                    nodes[m] = (new_view, BACKUP, m_log, m_commit)
            # Old primaries outside the quorum eventually observe the new
            # view; model that eagerly to keep the state space small, but
            # only for primaries (their role is what matters for safety).
            yield (f"election({i}, view {new_view}, voters {sorted(quorum)})",
                   tuple(nodes))


def _would_vote(voter: NodeState, candidate_sig: tuple[int, int]) -> bool:
    voter_sig = _last_sig(voter[2])
    return candidate_sig[0] > voter_sig[0] or (
        candidate_sig[0] == voter_sig[0] and candidate_sig[1] >= voter_sig[1]
    )


def _acks(follower: NodeState, prefix: tuple, buggy_ack: bool) -> bool:
    """Does this follower count as having replicated ``prefix``?

    Correct rule: its log must literally start with the prefix.
    Buggy rule (the bug the explorer found in our implementation): the
    follower acks its *log length*, so any log at least as long counts —
    even if the suffix diverges.
    """
    f_log = follower[2]
    if buggy_ack:
        return len(f_log) >= len(prefix)
    return f_log[: len(prefix)] == prefix


def _check_state(state: State) -> str | None:
    """Invariants over a single state."""
    # Election safety: at most one primary per view.
    primaries: dict[int, int] = {}
    for i, (view, role, _log, _commit) in enumerate(state):
        if role is PRIMARY:
            if view in primaries:
                return f"two primaries in view {view}: {primaries[view]} and {i}"
            primaries[view] = i
    # Commit agreement: any two nodes' committed prefixes coincide.
    for i, (_vi, _ri, log_i, commit_i) in enumerate(state):
        for j in range(i + 1, len(state)):
            _vj, _rj, log_j, commit_j = state[j]
            common = min(commit_i, commit_j)
            if log_i[:common] != log_j[:common]:
                return (
                    f"commit safety: nodes {i} and {j} disagree within their "
                    f"committed prefixes ({log_i[:common]} vs {log_j[:common]})"
                )
    return None


def _check_edge(parent: State, child: State) -> str | None:
    """Invariants over a transition: a node's committed prefix is stable —
    committed entries are never replaced and commit never regresses."""
    for i, (parent_node, child_node) in enumerate(zip(parent, child)):
        _pv, _pr, p_log, p_commit = parent_node
        _cv, _cr, c_log, c_commit = child_node
        if c_commit < p_commit:
            return f"node {i}: commit regressed {p_commit} -> {c_commit}"
        if c_log[:p_commit] != p_log[:p_commit]:
            return (
                f"node {i}: committed prefix rewritten "
                f"({p_log[:p_commit]} -> {c_log[:p_commit]})"
            )
    return None


def check_state(state: State) -> str | None:
    """Public single-state invariant check (election safety + commit
    agreement). Returns a violation description or None. Used by the trace
    conformance checker (:mod:`repro.obs.checker`) to validate abstract
    states folded from a real run's trace — the "Smart Casual Verification"
    style of replaying execution traces against the spec."""
    return _check_state(state)


def check_edge(parent: State, child: State) -> str | None:
    """Public transition invariant check (commit monotonicity + committed-
    prefix stability). Returns a violation description or None."""
    return _check_edge(parent, child)


def check(
    n_nodes: int = 3,
    max_view: int = 3,
    max_log: int = 4,
    max_states: int = 300_000,
    buggy_ack: bool = False,
) -> ModelResult:
    """BFS the abstract model's reachable states under the given bounds."""
    result = ModelResult()
    start = initial_state(n_nodes)
    parents: dict[State, tuple[State | None, str]] = {start: (None, "init")}
    queue: deque[State] = deque([start])
    seen = {start}

    def report(state: State, violation: str) -> ModelResult:
        result.violation = violation
        trace = []
        cursor: State | None = state
        while cursor is not None:
            parent, action = parents[cursor]
            trace.append(action)
            cursor = parent
        result.trace = list(reversed(trace))
        return result

    while queue:
        state = queue.popleft()
        result.states_explored += 1
        violation = _check_state(state)
        if violation is not None:
            return report(state, violation)
        if result.states_explored >= max_states:
            result.hit_bounds = True
            return result
        for action, next_state in successors(state, max_view, max_log, buggy_ack):
            result.transitions += 1
            edge_violation = _check_edge(state, next_state)
            if edge_violation is not None:
                if next_state not in parents:
                    parents[next_state] = (state, action)
                return report(next_state, edge_violation)
            if next_state not in seen:
                seen.add(next_state)
                parents[next_state] = (state, action)
                queue.append(next_state)
    return result
