"""Executable safety invariants for CCF's consensus (section 4).

Each check takes the consensus engines of all (live and dead) nodes and
raises :class:`InvariantViolation` with a diagnostic if the corresponding
property is broken. They are the runtime analog of the TLA+ spec's
invariants [88]:

- **Election safety** — at most one primary per view.
- **Log matching** — if two ledgers contain the same transaction ID, they
  are identical up to and including that transaction (section 4.1's
  prev-txid induction).
- **Commit safety** — the committed prefixes of any two nodes agree
  entry-for-entry.
- **Signature commit rule** — every node's commit point is at a signature
  transaction (or 0 / its snapshot base).
- **Configuration agreement** — nodes agree on the configuration
  established at any committed reconfiguration seqno.
"""

from __future__ import annotations

from repro.consensus.raft import ConsensusNode
from repro.consensus.state import Role
from repro.errors import CCFError


class InvariantViolation(CCFError):
    """A consensus safety property was violated (this is a bug, not an
    environmental failure)."""


def check_election_safety(nodes: list[ConsensusNode]) -> None:
    primaries_by_view: dict[int, list[str]] = {}
    for node in nodes:
        if node.role is Role.PRIMARY:
            primaries_by_view.setdefault(node.view, []).append(node.node_id)
    for view, primaries in primaries_by_view.items():
        if len(primaries) > 1:
            raise InvariantViolation(
                f"election safety: view {view} has primaries {primaries}"
            )


def check_log_matching(nodes: list[ConsensusNode]) -> None:
    for i, node_a in enumerate(nodes):
        for node_b in nodes[i + 1:]:
            last_common = min(node_a.ledger.last_seqno, node_b.ledger.last_seqno)
            base = max(node_a.ledger.base_seqno, node_b.ledger.base_seqno)
            # Find the highest seqno where the txids agree; everything
            # before it must agree too.
            for seqno in range(last_common, base, -1):
                if node_a.ledger.txid_at(seqno) == node_b.ledger.txid_at(seqno):
                    for earlier in range(base + 1, seqno + 1):
                        entry_a = node_a.ledger.entry_at(earlier) \
                            if earlier > node_a.ledger.base_seqno else None
                        entry_b = node_b.ledger.entry_at(earlier) \
                            if earlier > node_b.ledger.base_seqno else None
                        if entry_a is None or entry_b is None:
                            continue  # below a snapshot base on one side
                        if entry_a.encode() != entry_b.encode():
                            raise InvariantViolation(
                                "log matching: "
                                f"{node_a.node_id} and {node_b.node_id} share txid "
                                f"{node_a.ledger.txid_at(seqno)} but differ at "
                                f"seqno {earlier}"
                            )
                    break


def check_commit_safety(nodes: list[ConsensusNode]) -> None:
    for i, node_a in enumerate(nodes):
        for node_b in nodes[i + 1:]:
            common_commit = min(node_a.commit_seqno, node_b.commit_seqno)
            base = max(node_a.ledger.base_seqno, node_b.ledger.base_seqno)
            for seqno in range(base + 1, common_commit + 1):
                if node_a.ledger.txid_at(seqno) != node_b.ledger.txid_at(seqno):
                    raise InvariantViolation(
                        f"commit safety: {node_a.node_id} committed "
                        f"{node_a.ledger.txid_at(seqno)} at {seqno} but "
                        f"{node_b.node_id} committed {node_b.ledger.txid_at(seqno)}"
                    )


def check_commit_at_signature(nodes: list[ConsensusNode]) -> None:
    for node in nodes:
        commit = node.commit_seqno
        if commit == 0 or commit <= node.ledger.base_seqno:
            continue
        if commit > node.ledger.last_seqno:
            raise InvariantViolation(
                f"{node.node_id}: commit {commit} beyond ledger end"
            )
        entry = node.ledger.entry_at(commit)
        if not entry.is_signature:
            raise InvariantViolation(
                f"{node.node_id}: commit point {commit} is a "
                f"{entry.kind.value} transaction, not a signature"
            )


def check_configuration_agreement(nodes: list[ConsensusNode]) -> None:
    established: dict[int, tuple[str, frozenset]] = {}
    for node in nodes:
        for config in node.configurations._configs:
            if config.seqno > node.commit_seqno:
                continue  # pending configs may legitimately differ
            seen = established.get(config.seqno)
            if seen is None:
                established[config.seqno] = (node.node_id, config.nodes)
            elif seen[1] != config.nodes:
                raise InvariantViolation(
                    f"configuration agreement: seqno {config.seqno} is "
                    f"{sorted(seen[1])} on {seen[0]} but "
                    f"{sorted(config.nodes)} on {node.node_id}"
                )


ALL_INVARIANTS = (
    check_election_safety,
    check_log_matching,
    check_commit_safety,
    check_commit_at_signature,
    check_configuration_agreement,
)


def check_all_invariants(nodes: list[ConsensusNode]) -> None:
    """Run every invariant; raises on the first violation."""
    live = [node for node in nodes if node is not None]
    for invariant in ALL_INVARIANTS:
        invariant(live)
