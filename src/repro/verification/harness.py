"""A minimal consensus-only harness: ConsensusNode + ledger + simulated
network, without the application/governance stack.

Used by the consensus test suite and by the adversarial explorer
(:mod:`repro.verification.explorer`): it runs the *real* consensus engine
and ledger with a thin host, so protocol behaviour is exactly that of the
full node minus the application layer.
"""

from __future__ import annotations

from repro.consensus.raft import ConsensusConfig, ConsensusNode
from repro.crypto.ecdsa import SigningKey
from repro.errors import NotPrimaryError
from repro.kv.store import KVStore
from repro.kv.tx import WriteSet
from repro.ledger.entry import EntryKind, LedgerEntry
from repro.ledger.ledger import Ledger
from repro.ledger.secrets import LedgerSecret, LedgerSecretStore
from repro.net.network import LinkConfig, Network
from repro.sim.scheduler import Scheduler

NODES_INFO_MAP = "public:ccf.gov.nodes.info"


class MiniHost:
    """Implements ConsensusHost over a bare ledger + KV store."""

    def __init__(self, node_id: str, network: Network, secrets_seed: bytes = b"shared"):
        self.node_id = node_id
        self.network = network
        self.ledger = Ledger(LedgerSecretStore(LedgerSecret.generate(secrets_seed)))
        self.store = KVStore()
        self.signing_key = SigningKey.generate(node_id.encode())
        self.committed: list[int] = []
        self.consensus: ConsensusNode | None = None

    # -- ConsensusHost interface ----------------------------------------

    def send_consensus_message(self, to: str, message: object) -> None:
        self.network.send(self.node_id, to, message)

    def apply_replicated_entry(self, entry: LedgerEntry):
        self.ledger.append(entry)
        write_set = self.ledger.decrypt_private(entry)
        self.store.apply_write_set(write_set, entry.txid.seqno)
        if entry.is_reconfiguration:
            self._note_retirements(write_set)
            return self._configuration_from_store()
        return None

    def _note_retirements(self, write_set) -> None:
        for node_id, info in write_set.updates.get(NODES_INFO_MAP, {}).items():
            if isinstance(info, dict) and info.get("status") == "Retiring":
                self.consensus.note_retiring(node_id)

    def truncate_to(self, seqno: int) -> None:
        self.ledger.truncate(seqno)
        self.store.rollback_to(seqno)

    def append_signature_entry(self, view: int) -> LedgerEntry:
        entry = self.ledger.build_signature_entry(view, self.node_id, self.signing_key)
        self.ledger.append(entry)
        self.store.apply_write_set(entry.public_writes, entry.txid.seqno)
        return entry

    def on_commit(self, seqno: int) -> None:
        self.committed.append(seqno)
        self.store.compact(seqno)

    def on_become_primary(self) -> None:
        pass

    def on_lose_primacy(self) -> None:
        pass

    # -- Driving helpers --------------------------------------------------

    def _configuration_from_store(self) -> frozenset[str]:
        trusted = {
            node_id
            for node_id, info in self.store.items(NODES_INFO_MAP)
            if info.get("status") == "Trusted"
        }
        return frozenset(trusted)

    def _require_primary(self) -> None:
        if self.consensus is None or not self.consensus.is_primary:
            raise NotPrimaryError(
                f"{self.node_id} is not the primary (an election may have "
                "intervened between check and call)"
            )

    def submit_write(self, key, value, map_name: str = "data") -> LedgerEntry:
        """Primary-side user write: execute + append + notify consensus.

        Raises :class:`NotPrimaryError` when this node is not (or is no
        longer) the primary — an environmental race, not a bug.
        """
        self._require_primary()
        write_set = WriteSet()
        write_set.put(map_name, key, value)
        entry = self.ledger.build_entry(self.consensus.view, write_set)
        self.ledger.append(entry)
        self.store.apply_write_set(write_set, entry.txid.seqno)
        self.consensus.note_local_append(entry, None)
        self.consensus.replicate_now()
        return entry

    def submit_reconfiguration(self, statuses: dict[str, str]) -> LedgerEntry:
        """Primary-side reconfiguration: write node statuses to nodes.info."""
        self._require_primary()
        write_set = WriteSet()
        merged = dict(self.store.items(NODES_INFO_MAP))
        for node_id, status in statuses.items():
            merged[node_id] = {"status": status}
            write_set.put(NODES_INFO_MAP, node_id, {"status": status})
        entry = self.ledger.build_entry(
            self.consensus.view, write_set, kind=EntryKind.RECONFIGURATION
        )
        self.ledger.append(entry)
        self.store.apply_write_set(write_set, entry.txid.seqno)
        new_config = frozenset(
            node_id for node_id, info in merged.items() if info["status"] == "Trusted"
        )
        self.consensus.note_local_append(entry, new_config)
        self._note_retirements(write_set)
        self.consensus.replicate_now()
        return entry

    def sign_now(self) -> LedgerEntry:
        """Primary-side signature transaction (commit point)."""
        self._require_primary()
        entry = self.append_signature_entry(self.consensus.view)
        self.consensus.note_local_append(entry, None)
        self.consensus.replicate_now()
        return entry


class Cluster:
    """N MiniHost nodes wired through one simulated network."""

    def __init__(self, n: int, seed: int = 1, config: ConsensusConfig | None = None):
        self.scheduler = Scheduler(seed=seed)
        self.network = Network(self.scheduler, LinkConfig(base_latency=0.0005, jitter=0.0001))
        self.config = config if config is not None else ConsensusConfig()
        self.node_ids = [f"n{i}" for i in range(n)]
        self.hosts: dict[str, MiniHost] = {}
        initial = frozenset(self.node_ids)
        for node_id in self.node_ids:
            host = MiniHost(node_id, self.network)
            consensus = ConsensusNode(
                node_id=node_id,
                ledger=host.ledger,
                scheduler=self.scheduler,
                host=host,
                initial_nodes=initial,
                config=self.config,
            )
            host.consensus = consensus
            self.hosts[node_id] = host
            self.network.register(
                node_id,
                lambda src, msg, c=consensus: c.dispatch(msg),
            )

    def start(self, initial_primary: str = "n0") -> None:
        for node_id, host in self.hosts.items():
            if node_id == initial_primary:
                host.consensus.start_as_initial_primary()
            else:
                host.consensus.start()

    def run(self, seconds: float) -> None:
        self.scheduler.run_until(self.scheduler.now + seconds)

    def primary(self) -> MiniHost | None:
        primaries = [
            host
            for host in self.hosts.values()
            if host.consensus.is_primary and not self.network.is_down(host.node_id)
        ]
        # At most one live primary per view; return the highest-view one.
        if not primaries:
            return None
        return max(primaries, key=lambda host: host.consensus.view)

    def crash(self, node_id: str) -> None:
        self.network.crash(node_id)
        self.hosts[node_id].consensus.stop()

    def alive_hosts(self) -> list[MiniHost]:
        return [
            host for host in self.hosts.values() if not self.network.is_down(host.node_id)
        ]
