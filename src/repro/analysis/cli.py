"""Command line for the linter: ``python -m repro.analysis [paths]``.

Exit codes: 0 clean, 1 findings (or parse errors), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.core import RULES, AnalysisResult, Baseline, analyze_paths

DEFAULT_BASELINE = "analysis-baseline.json"


def _print_text(result: AnalysisResult, out) -> None:
    for finding in [*result.parse_errors, *result.findings]:
        print(f"{finding.location()}: {finding.rule} {finding.message}", file=out)
        if finding.snippet:
            print(f"    {finding.snippet}", file=out)
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_analyzed} file(s)"
        f" ({result.baselined} baselined, {result.suppressed} suppressed)"
    )
    if result.parse_errors:
        summary += f", {len(result.parse_errors)} parse error(s)"
    print(summary, file=out)


def _print_json(result: AnalysisResult, out) -> None:
    payload = {
        "findings": [finding.to_dict() for finding in result.findings],
        "parse_errors": [finding.to_dict() for finding in result.parse_errors],
        "files_analyzed": result.files_analyzed,
        "baselined": result.baselined,
        "suppressed": result.suppressed,
        "clean": result.clean,
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def _list_rules(out) -> None:
    from repro.analysis import rules as _rules  # noqa: F401 - populate registry

    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        print(f"{rule_id}  {rule.title}", file=out)
        print(f"        {rule.rationale}", file=out)


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & protocol-hygiene linter for the CCF "
        "reproduction. Run `--list-rules` for the catalog; suppress a "
        "reviewed exception with `# repro-lint: disable=RULE -- reason`.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--rules", help="comma-separated rule ids (default: all)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE} if present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the accepted baseline")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(out)
        return 0

    rules = None
    if args.rules:
        rules = [rule.strip().upper() for rule in args.rules.split(",") if rule.strip()]
        from repro.analysis import rules as _rules  # noqa: F401

        unknown = [rule for rule in rules if rule not in RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    baseline_path = Path(args.baseline) if args.baseline else Path(DEFAULT_BASELINE)
    baseline = None
    if not args.write_baseline and baseline_path.exists():
        baseline = Baseline.load(baseline_path)

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    result = analyze_paths(paths, root=Path.cwd(), rules=rules, baseline=baseline)

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print(f"wrote {len(result.findings)} finding(s) to {baseline_path}", file=out)
        return 0

    if args.format == "json":
        _print_json(result, out)
    else:
        _print_text(result, out)
    return 0 if result.clean else 1
