"""Command line for the analyzers.

Two subcommands share the flag surface and output formats:

- ``python -m repro.analysis lint [paths]``  — the syntactic rule catalog
  (DET/SEC/PROTO rules). Invoking without a subcommand is equivalent, so
  the historical ``python -m repro.analysis src`` form keeps working.
- ``python -m repro.analysis taint [paths]`` — the interprocedural
  secret-flow analyzer (TAINT rules). ``--boundary-map`` prints the
  machine-readable trust-boundary map instead of findings.

Exit codes: 0 clean, 1 findings (or parse errors), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.core import RULES, Baseline, analyze_paths
from repro.analysis.sarif import to_sarif

DEFAULT_BASELINE = "analysis-baseline.json"
DEFAULT_TAINT_BASELINE = "taint-baseline.json"


def _print_text(result, out) -> None:
    for finding in [*result.parse_errors, *result.findings]:
        print(f"{finding.location()}: {finding.rule} {finding.message}", file=out)
        if finding.snippet:
            print(f"    {finding.snippet}", file=out)
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_analyzed} file(s)"
        f" ({result.baselined} baselined, {result.suppressed} suppressed)"
    )
    if result.parse_errors:
        summary += f", {len(result.parse_errors)} parse error(s)"
    print(summary, file=out)


def _print_json(result, out) -> None:
    payload = {
        "findings": [finding.to_dict() for finding in result.findings],
        "parse_errors": [finding.to_dict() for finding in result.parse_errors],
        "files_analyzed": result.files_analyzed,
        "baselined": result.baselined,
        "suppressed": result.suppressed,
        "clean": result.clean,
    }
    json.dump(payload, out, indent=2)
    out.write("\n")


def _print_sarif(result, out, tool_name: str) -> None:
    out.write(to_sarif(result.findings, result.parse_errors, tool_name))


def _list_rules(out) -> None:
    from repro.analysis import rules as _rules  # noqa: F401 - populate registry
    from repro.analysis import taint as _taint  # noqa: F401 - populate registry

    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        print(f"{rule_id}  {rule.title}", file=out)
        print(f"        {rule.rationale}", file=out)


def _build_parser(mode: str) -> argparse.ArgumentParser:
    if mode == "taint":
        parser = argparse.ArgumentParser(
            prog="python -m repro.analysis taint",
            description="Interprocedural secret-flow analyzer: proves no "
            "declared secret reaches an untrusted-host sink except through "
            "an approved declassifier or an audited "
            "`# repro-taint: declassify=REASON` annotation.",
        )
        parser.add_argument("--boundary-map", action="store_true",
                            help="print the machine-readable trust-boundary "
                            "map (sources, sinks, declassifiers, audited "
                            "annotations) instead of findings")
        default_baseline = DEFAULT_TAINT_BASELINE
    else:
        parser = argparse.ArgumentParser(
            prog="python -m repro.analysis",
            description="Determinism & protocol-hygiene linter for the CCF "
            "reproduction. Run `--list-rules` for the catalog; suppress a "
            "reviewed exception with `# repro-lint: disable=RULE -- reason`.",
        )
        parser.add_argument("--rules",
                            help="comma-separated rule ids (default: all)")
        default_baseline = DEFAULT_BASELINE
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: {default_baseline} "
                        "if present)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record current findings as the accepted baseline")
    parser.add_argument("--list-rules", action="store_true")
    parser.set_defaults(default_baseline=default_baseline)
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    argv = list(sys.argv[1:] if argv is None else argv)
    mode = "lint"
    if argv and argv[0] in ("lint", "taint"):
        mode = argv.pop(0)
    parser = _build_parser(mode)
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(out)
        return 0

    if mode == "taint" and args.boundary_map:
        from repro.analysis.taint import analyze_taint, boundary_map

        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print(f"no such path: {', '.join(map(str, missing))}",
                  file=sys.stderr)
            return 2
        result = analyze_taint(paths, root=Path.cwd())
        json.dump(boundary_map(result), out, indent=2, sort_keys=True)
        out.write("\n")
        return 0

    rules = None
    if mode == "lint" and args.rules:
        rules = [rule.strip().upper() for rule in args.rules.split(",")
                 if rule.strip()]
        from repro.analysis import rules as _rules  # noqa: F401

        unknown = [rule for rule in rules if rule not in RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    baseline_path = Path(args.baseline or args.default_baseline)
    baseline = None
    if not args.write_baseline and baseline_path.exists():
        baseline = Baseline.load(baseline_path)

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    if mode == "taint":
        from repro.analysis.taint import analyze_taint

        result = analyze_taint(paths, root=Path.cwd(), baseline=baseline)
        tool_name = "repro.analysis.taint"
    else:
        result = analyze_paths(paths, root=Path.cwd(), rules=rules,
                               baseline=baseline)
        tool_name = "repro.analysis"

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(baseline_path)
        print(f"wrote {len(result.findings)} finding(s) to {baseline_path}",
              file=out)
        return 0

    if args.format == "json":
        _print_json(result, out)
    elif args.format == "sarif":
        _print_sarif(result, out, tool_name)
    else:
        _print_text(result, out)
    return 0 if result.clean else 1
