"""Replay-divergence sanitizer: the runtime half of the determinism
discipline.

The static rules (:mod:`repro.analysis.rules`) keep nondeterminism *out of
the source*; this sanitizer checks the property they protect end-to-end: a
seeded chaos schedule, run twice, must fold to the **identical trace
digest** — every scheduler event, in order, with every RNG draw. When the
digests differ, the checkpoint lists are binary-searched (sound because
the digest is a running hash) to the first event where the runs disagreed,
which is usually enough to name the offending callback outright.

CLI::

    python -m repro.analysis.sanitizer --seed 7          # 2-run replay check
    python -m repro.analysis.sanitizer --selftest        # prove localization

The selftest injects one stolen RNG draw at a known event index in the
second run and asserts the sanitizer localizes the divergence to exactly
that event — guarding the machinery itself against bit-rot.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.sim.chaos import ChaosEngine, ChaosSpec, ScheduleReport
from repro.sim.trace import Divergence, TraceRecorder, first_divergence


@dataclass(frozen=True)
class ReplayCheck:
    """Outcome of a 2-run determinism check."""

    seed: int
    events: int
    rng_draws: int
    digest: str  # first run's final digest
    divergence: Divergence | None
    fingerprints_match: bool  # ScheduleReport fingerprints (coarser signal)

    @property
    def ok(self) -> bool:
        return self.divergence is None and self.fingerprints_match

    def describe(self) -> str:
        if self.ok:
            return (
                f"seed {self.seed}: deterministic over {self.events} events, "
                f"{self.rng_draws} rng draws (digest {self.digest[:16]}…)"
            )
        if self.divergence is not None:
            return f"seed {self.seed}: {self.divergence.describe()}"
        return (
            f"seed {self.seed}: trace digests match but schedule report "
            f"fingerprints differ — report fields escape the traced state"
        )


def run_traced_schedule(
    spec: ChaosSpec, seed: int, perturb_at: int | None = None
) -> tuple[ScheduleReport, TraceRecorder]:
    """Run one chaos schedule under a trace recorder."""
    recorder = TraceRecorder(perturb_at=perturb_at)
    report = ChaosEngine(spec).run_schedule(seed, tracer=recorder)
    return report, recorder


def check_replay_determinism(spec: ChaosSpec, seed: int) -> ReplayCheck:
    """Run the same seeded schedule twice and compare traces."""
    report_a, trace_a = run_traced_schedule(spec, seed)
    report_b, trace_b = run_traced_schedule(spec, seed)
    return ReplayCheck(
        seed=seed,
        events=trace_a.event_count,
        rng_draws=trace_a.rng_draws,
        digest=trace_a.digest,
        divergence=first_divergence(trace_a, trace_b),
        fingerprints_match=report_a.fingerprint() == report_b.fingerprint(),
    )


def localization_selftest(spec: ChaosSpec, seed: int) -> tuple[bool, str]:
    """Inject nondeterminism at a known event and check the sanitizer finds
    it. Returns (passed, description)."""
    _, clean = run_traced_schedule(spec, seed)
    if clean.event_count < 4:
        return False, f"schedule too short to perturb ({clean.event_count} events)"
    target = clean.event_count // 2
    _, perturbed = run_traced_schedule(spec, seed, perturb_at=target)
    divergence = first_divergence(clean, perturbed)
    if divergence is None:
        return False, f"stolen rng draw at event {target} went unnoticed"
    if divergence.event_index != target:
        return False, (
            f"divergence injected at event {target} but localized to "
            f"event {divergence.event_index}"
        )
    return True, (
        f"injected divergence at event {target}/{clean.event_count} "
        f"localized exactly ({divergence.comparisons} checkpoint "
        f"comparisons): {divergence.describe()}"
    )


# ----------------------------------------------------------------------
# CLI (used by CI's analysis job, next to the chaos smoke)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.sanitizer",
        description="Replay a seeded chaos schedule twice and verify the "
        "trace digests match; localize the first divergence otherwise.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--schedules", type=int, default=1,
                        help="consecutive seeds to check, starting at --seed")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--selftest", action="store_true",
                        help="also inject nondeterminism and require exact "
                        "localization")
    args = parser.parse_args(argv)

    spec = ChaosSpec()
    overrides = {}
    if args.nodes is not None:
        overrides["n_nodes"] = args.nodes
    if args.steps is not None:
        overrides["steps"] = args.steps
    if overrides:
        spec = dataclasses.replace(spec, **overrides)

    failed = False
    for seed in range(args.seed, args.seed + args.schedules):
        check = check_replay_determinism(spec, seed)
        print(check.describe())
        failed = failed or not check.ok

    if args.selftest:
        passed, description = localization_selftest(spec, args.seed)
        print(f"selftest: {description}")
        failed = failed or not passed

    return 1 if failed else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
