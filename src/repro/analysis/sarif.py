"""Minimal, deterministic SARIF 2.1.0 output for lint and taint findings.

Just enough of the standard for CI annotation UIs: one run, one tool
driver, rule metadata from the registry, one result per finding with a
single physical location. Output is byte-stable: keys are emitted sorted
and every collection is ordered by the (already deterministic) finding
order.
"""

from __future__ import annotations

import json

from repro.analysis.core import Finding, RULES

_SARIF_VERSION = "2.1.0"
_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
           "Schemata/sarif-schema-2.1.0.json")


def _rule_metadata(rule_ids: list[str]) -> list[dict]:
    rules = []
    for rule_id in rule_ids:
        rule = RULES.get(rule_id)
        entry: dict = {"id": rule_id}
        if rule is not None:
            entry["shortDescription"] = {"text": rule.title}
            entry["help"] = {"text": rule.rationale}
        rules.append(entry)
    return rules


def _result(finding: Finding) -> dict:
    message = finding.message
    if finding.symbol:
        message = f"[{finding.symbol}] {message}"
    return {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.column, 1),
                    },
                }
            }
        ],
    }


def to_sarif(findings: list[Finding], parse_errors: list[Finding],
             tool_name: str) -> str:
    """Render findings as a SARIF JSON document (trailing newline included)."""
    everything = [*parse_errors, *findings]
    rule_ids = sorted({f.rule for f in everything})
    document = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri":
                            "https://github.com/microsoft/CCF",
                        "rules": _rule_metadata(rule_ids),
                    }
                },
                "results": [_result(f) for f in everything],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
