"""The rule catalog: determinism (DET*), secret hygiene (SEC*), and
protocol-error discipline (PROTO*).

Every rule is an AST heuristic tuned to this codebase: precise enough that
``python -m repro.analysis src`` runs with an **empty baseline**, strict
enough that the nondeterminism and hygiene classes it names cannot silently
reappear. Reviewed exceptions use ``# repro-lint: disable=<RULE>`` comments
with a reason, never the baseline.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.core import FileContext, Finding, Rule, register

# ----------------------------------------------------------------------
# Shared AST helpers


def qual_name(node: ast.AST) -> str | None:
    """Dotted name of a Name/Attribute chain (``a.b.c``), else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The last component of a Name/Attribute chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _name_tokens(name: str) -> set[str]:
    return {token for token in re.split(r"[_\d]+", name.lower()) if token}


def _is_constant_name(node: ast.AST) -> bool:
    """ALL_CAPS names follow the module-constant convention and are never
    treated as secret material."""
    name = terminal_name(node)
    return name is not None and name.upper() == name and any(c.isalpha() for c in name)


def _is_trivial_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float, bool, type(None))
    )


# ----------------------------------------------------------------------
# DET001 — wall-clock / unseeded entropy


@register
class WallClockRule(Rule):
    rule_id = "DET001"
    title = "wall-clock or unseeded entropy outside the entropy boundary"
    rationale = (
        "Replay-from-seed only holds if all time comes from the simulated "
        "scheduler and all randomness from its seeded RNG. Wall-clock reads "
        "and process-global entropy sources make runs unreproducible."
    )

    # Fully resolved call targets that read ambient time or entropy.
    FORBIDDEN_CALLS = {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbits", "secrets.randbelow", "secrets.choice",
    }
    # datetime constructors that capture "now" (matched on the trailing
    # two components so both datetime.now and datetime.datetime.now hit).
    FORBIDDEN_TAILS = {
        "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    }
    # The module-global random.* API shares one process-wide, unseeded (or
    # racily reseeded) generator; only instance RNGs threaded from the
    # scheduler are deterministic.
    GLOBAL_RANDOM_FNS = {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "getrandbits", "randbytes", "gauss",
        "normalvariate", "expovariate", "betavariate", "seed",
    }
    # Paths (relative, posix) allowed to touch ambient entropy: the
    # designated boundary where real entropy may enter (none today — the
    # whole tree is seed-deterministic).
    ENTROPY_BOUNDARY: tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.rel_path in self.ENTROPY_BOUNDARY:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve_call_name(qual_name(node.func))
            if resolved is None:
                continue
            if resolved in self.FORBIDDEN_CALLS:
                yield ctx.finding(
                    self.rule_id, node,
                    f"call to {resolved}() reads ambient time/entropy; use the "
                    "scheduler's virtual clock or its seeded RNG",
                )
                continue
            parts = resolved.split(".")
            if len(parts) >= 2 and ".".join(parts[-2:]) in self.FORBIDDEN_TAILS:
                yield ctx.finding(
                    self.rule_id, node,
                    f"{resolved}() captures the wall clock; derive timestamps "
                    "from scheduler.now",
                )
                continue
            if (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in self.GLOBAL_RANDOM_FNS
            ):
                yield ctx.finding(
                    self.rule_id, node,
                    f"module-level random.{parts[1]}() uses the process-global "
                    "RNG; thread a seeded random.Random instance instead",
                )


# ----------------------------------------------------------------------
# DET002 — unsorted set iteration feeding serialization / messages


def _is_set_expr(node: ast.AST, set_vars: set[str]) -> bool:
    """Syntactic over-approximation of 'this expression is a set'."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return terminal_name(node.func) in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_vars) or _is_set_expr(node.right, set_vars)
    if isinstance(node, ast.Name):
        return node.id in set_vars
    return False


def _annotation_is_set(annotation: ast.AST | None) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, (ast.Name, ast.Attribute)):
            if terminal_name(node) in {"set", "frozenset", "Set", "FrozenSet"}:
                return True
    return False


@register
class SetIterationRule(Rule):
    rule_id = "DET002"
    title = "unsorted set iteration flowing into a deterministic sink"
    rationale = (
        "Set iteration order depends on PYTHONHASHSEED and insertion "
        "history. When the loop emits messages, hashes, serializes, or "
        "writes state, the order becomes protocol-visible and replay "
        "diverges across processes. Wrap the iterable in sorted()."
    )

    # Only protocol-visible packages: order inside pure computation is fine.
    SCOPED_PACKAGES = ("repro/ledger/", "repro/consensus/", "repro/governance/",
                       "repro/node/")
    SINKS = {
        "send", "send_consensus_message", "send_to", "broadcast", "emit",
        "encode", "encode_value", "serialize", "sha256", "update", "write",
        "append", "append_leaf_hash", "put", "seal", "sign", "dump", "dumps",
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not any(ctx.rel_path.startswith(p) or f"/{p}" in ctx.rel_path
                   for p in self.SCOPED_PACKAGES):
            return
        for scope in ast.walk(ctx.tree):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_scope(ctx, scope)

    def _check_scope(self, ctx: FileContext, fn: ast.AST) -> Iterator[Finding]:
        set_vars: set[str] = set()
        args = fn.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is_set(arg.annotation):
                set_vars.add(arg.arg)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_set_expr(node.value, set_vars):
                    set_vars.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _annotation_is_set(node.annotation):
                    set_vars.add(node.target.id)

        for node in ast.walk(fn):
            if isinstance(node, ast.For) and _is_set_expr(node.iter, set_vars):
                if self._body_has_sink(node.body):
                    yield ctx.finding(
                        self.rule_id, node.iter,
                        "iterating a set in hash-seed order while the loop "
                        "body feeds a deterministic sink; use "
                        "sorted(...) for a stable order",
                    )
            elif isinstance(node, ast.Call) and terminal_name(node.func) in self.SINKS:
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    for comp in ast.walk(arg):
                        if isinstance(comp, (ast.GeneratorExp, ast.ListComp)):
                            for gen in comp.generators:
                                if _is_set_expr(gen.iter, set_vars):
                                    yield ctx.finding(
                                        self.rule_id, gen.iter,
                                        "comprehension over a set feeds "
                                        f"{terminal_name(node.func)}(); wrap the "
                                        "iterable in sorted(...)",
                                    )

    @staticmethod
    def _body_has_sink(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and (
                    terminal_name(node.func) in SetIterationRule.SINKS
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# DET003 — object identity / salted hashing


@register
class ObjectIdentityRule(Rule):
    rule_id = "DET003"
    title = "id()/hash() ordering or PYTHONHASHSEED-dependent behavior"
    rationale = (
        "id() is an address (different every run); builtin hash() is salted "
        "for str/bytes by PYTHONHASHSEED. Neither may influence protocol "
        "state, ordering, or serialized bytes. Use content-derived keys "
        "(e.g. the FNV hash in repro.kv.champ) instead."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id == "id" and len(node.args) == 1:
                    yield ctx.finding(
                        self.rule_id, node,
                        "id() yields a per-process address; derive ordering "
                        "from stable content instead",
                    )
                elif node.func.id == "hash" and len(node.args) == 1:
                    yield ctx.finding(
                        self.rule_id, node,
                        "builtin hash() is salted by PYTHONHASHSEED for "
                        "str/bytes; use a content-derived hash",
                    )
            elif isinstance(node, ast.keyword) and node.arg == "key":
                if isinstance(node.value, ast.Name) and node.value.id in {"id", "hash"}:
                    yield ctx.finding(
                        self.rule_id, node.value,
                        f"sorting key={node.value.id} orders by a per-process "
                        "value; sort by stable content",
                    )
            elif isinstance(node, ast.Subscript):
                if (
                    terminal_name(node.value) == "environ"
                    and isinstance(node.slice, ast.Constant)
                    and node.slice.value == "PYTHONHASHSEED"
                ):
                    yield ctx.finding(
                        self.rule_id, node,
                        "behavior keyed on PYTHONHASHSEED is nondeterministic "
                        "across processes",
                    )


# ----------------------------------------------------------------------
# SEC001 — non-constant-time authenticator comparison


_SENSITIVE_TOKENS = {"mac", "hmac", "tag", "digest", "fingerprint"}
_SENSITIVE_EXACT = {
    "root", "expected_root", "computed_root", "signed_root", "report_data",
    "share", "shares", "signature", "auth_tag",
}


def _is_sensitive_operand(node: ast.AST) -> bool:
    """Does this comparison operand look like an authenticator value?"""
    if _is_constant_name(node):
        return False
    name = terminal_name(node)
    if name is not None:
        return name in _SENSITIVE_EXACT or bool(_name_tokens(name) & _SENSITIVE_TOKENS)
    if isinstance(node, ast.Call):
        # bytes(x) / x.hex() / x.digest() wrappers around a sensitive value.
        fn_name = terminal_name(node.func)
        if fn_name in {"hexdigest", "digest"}:
            return True
        if isinstance(node.func, ast.Attribute):
            if fn_name in {"hex", "encode"} and _is_sensitive_operand(node.func.value):
                return True
            # dict.get("claims_digest") and friends.
            if fn_name == "get" and node.args:
                key = node.args[0]
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    return bool(_name_tokens(key.value) & _SENSITIVE_TOKENS)
        if fn_name == "bytes" and node.args:
            return _is_sensitive_operand(node.args[0])
        return False
    if isinstance(node, ast.Subscript):
        if (
            isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and _name_tokens(node.slice.value) & _SENSITIVE_TOKENS
        ):
            return True
        return _is_sensitive_operand(node.value)
    return False


@register
class ConstantTimeCompareRule(Rule):
    rule_id = "SEC001"
    title = "non-constant-time comparison of an authenticator"
    rationale = (
        "== / != on MACs, digests, Merkle roots, shares, or signatures "
        "short-circuits at the first differing byte, leaking match length "
        "through timing. Use repro.crypto.ct_eq."
    )

    # The designated constant-time sink itself.
    EXCLUDED_PATHS = ("repro/crypto/ct.py",)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if any(ctx.rel_path.endswith(p) for p in self.EXCLUDED_PATHS):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not all(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(_is_trivial_literal(op) or _is_constant_name(op) for op in operands):
                continue  # length checks, enum-style tags, counters
            if any(_is_sensitive_operand(op) for op in operands):
                yield ctx.finding(
                    self.rule_id, node,
                    "authenticator compared with ==/!=; use "
                    "repro.crypto.ct_eq(a, b) to avoid a timing side channel",
                )


# ----------------------------------------------------------------------
# SEC002 — secret material in logs / exception strings


_SECRET_TOKENS = {"secret", "private", "scalar", "password", "passphrase", "wrapping"}
_SECRET_EXACT = {
    "key_bytes", "signing_key", "private_key", "wrapping_key", "secret_key",
    "master_key", "seed_bytes", "share", "shares", "otk", "keystream",
}
_PUBLIC_EXCEPTIONS = {"public_key", "verifying_key", "secret_size"}


def _is_secret_name(node: ast.AST) -> bool:
    if _is_constant_name(node):
        return False
    name = terminal_name(node)
    if name is None:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            # x.hex() / x.decode() of a secret is still the secret.
            if node.func.attr in {"hex", "decode", "encode"}:
                return _is_secret_name(node.func.value)
        return False
    lowered = name.lower()
    if lowered in _PUBLIC_EXCEPTIONS:
        return False
    return lowered in _SECRET_EXACT or bool(_name_tokens(name) & _SECRET_TOKENS)


@register
class SecretLeakRule(Rule):
    rule_id = "SEC002"
    title = "secret key material reaching logs or exception strings"
    rationale = (
        "Exception messages and logs cross the enclave boundary (reports, "
        "fault logs, host stdout). Interpolating keys, shares, or seeds "
        "into them leaks secrets to the untrusted host."
    )

    LOG_FNS = {"debug", "info", "warning", "error", "critical", "exception",
               "log", "print"}

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                yield from self._check_payload(ctx, node.exc, "exception message")
            elif isinstance(node, ast.Call) and terminal_name(node.func) in self.LOG_FNS:
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    yield from self._check_payload(ctx, arg, "log output")

    def _check_payload(self, ctx: FileContext, root: ast.AST, where: str):
        for node in ast.walk(root):
            target: ast.AST | None = None
            if isinstance(node, ast.FormattedValue):
                target = node.value
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                    and node.func.id in {"str", "repr"} and node.args:
                target = node.args[0]
            elif isinstance(node, (ast.Name, ast.Attribute)):
                target = node
            if target is not None and _is_secret_name(target):
                yield ctx.finding(
                    self.rule_id, node,
                    f"secret value {terminal_name(target) or 'expression'!r} "
                    f"flows into {where}; describe the failure without the material",
                )
                return  # one finding per raise/log call is enough


# ----------------------------------------------------------------------
# PROTO001 — assert as protocol control flow


@register
class ProtocolAssertRule(Rule):
    rule_id = "PROTO001"
    title = "assert used for protocol control flow"
    rationale = (
        "asserts vanish under python -O and raise untyped AssertionError "
        "otherwise; protocol checks must raise typed errors from "
        "repro.errors so callers can distinguish failure domains."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield ctx.finding(
                    self.rule_id, node,
                    "assert in protocol code; raise a typed repro.errors "
                    "exception instead (it survives -O and can be handled)",
                )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                name = terminal_name(exc.func if isinstance(exc, ast.Call) else exc)
                if name == "AssertionError":
                    yield ctx.finding(
                        self.rule_id, node,
                        "raising AssertionError directly; use a typed "
                        "repro.errors exception",
                    )


# ----------------------------------------------------------------------
# PROTO002 — broad exception handlers


@register
class BroadExceptRule(Rule):
    rule_id = "PROTO002"
    title = "broad except handler that can swallow real defects"
    rationale = (
        "except Exception (or bare except) converts programming errors "
        "into silent protocol behavior. Catch the typed errors the guarded "
        "code actually raises; where 'any corruption is the verdict' is "
        "genuinely the contract, suppress with a reasoned comment."
    )

    BROAD = {"Exception", "BaseException"}

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self.rule_id, node,
                    "bare except catches everything including KeyboardInterrupt; "
                    "catch typed errors",
                )
                continue
            names = (
                [terminal_name(elt) for elt in node.type.elts]
                if isinstance(node.type, ast.Tuple)
                else [terminal_name(node.type)]
            )
            broad = [name for name in names if name in self.BROAD]
            if broad:
                yield ctx.finding(
                    self.rule_id, node,
                    f"except {broad[0]} swallows unrelated defects; narrow to "
                    "the typed errors this block can actually raise",
                )
