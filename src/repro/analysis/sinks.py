"""Untrusted-host sinks and approved declassifiers.

A *sink* is a program point where a value becomes visible to the untrusted
host (paper §2 threat model): the simulated network, host storage, log and
exception text, observability exports (span attributes, metrics labels),
JSON serialization, and public-map KV writes (which the ledger persists in
plain text). A secret reaching a sink without passing through an approved
*declassifier* is a confidentiality violation.

Declassifiers are the approved exits from the secret world: AEAD sealing,
ECIES encryption, signature production, constant-time comparison results,
certificate issuance, and plain sizes. Hashing is deliberately NOT a
declassifier — a digest of a secret is only safe when the preimage space
is large, which is a human judgement recorded with an explicit
``# repro-taint: declassify=REASON`` annotation at the site.
"""

from __future__ import annotations

from dataclasses import dataclass, field

ALL_ARGS = -1  # sentinel: every positional argument is sink-relevant


@dataclass(frozen=True)
class Sink:
    """One class of host-visible output."""

    sink_id: str
    rule: str  # TAINTnnn rule id reported for this sink
    description: str
    # Matchers (any may be empty): resolved dotted names, bare callable
    # names, method names, and receiver terminal-name hints. A method
    # matcher with hints requires the receiver's terminal name to end with
    # one of the hints; without hints the method name alone matches.
    qualnames: frozenset[str] = frozenset()
    names: frozenset[str] = frozenset()
    methods: frozenset[str] = frozenset()
    receiver_hints: frozenset[str] = frozenset()
    args: tuple[int, ...] = (ALL_ARGS,)  # positional indices that leak
    kwargs_leak: bool = True  # do keyword arguments leak too?


SINKS: tuple[Sink, ...] = (
    Sink(
        sink_id="network-send", rule="TAINT001",
        description="payload handed to the simulated (untrusted) network",
        qualnames=frozenset({"repro.net.network.Network.send"}),
        methods=frozenset({"send"}),
        receiver_hints=frozenset({"network"}),
        args=(2,), kwargs_leak=True,
    ),
    Sink(
        sink_id="host-storage-write", rule="TAINT002",
        description="bytes written to untrusted host storage",
        qualnames=frozenset({
            "repro.storage.host_storage.HostStorage.write",
            "repro.storage.host_storage.HostStorage.write_buffered",
            "repro.storage.host_storage.HostStorage.write_chunk",
            "repro.storage.host_storage.HostStorage.write_snapshot",
        }),
        methods=frozenset({"write", "write_buffered", "write_chunk", "write_snapshot"}),
        receiver_hints=frozenset({"storage"}),
    ),
    Sink(
        sink_id="log-text", rule="TAINT003",
        description="log/console text readable by the host",
        names=frozenset({"print"}),
        methods=frozenset({"debug", "info", "warning", "error", "critical",
                           "exception", "log"}),
    ),
    Sink(
        sink_id="exception-text", rule="TAINT004",
        description="exception message (host-visible crash/trace text)",
        # Matched structurally at `raise` statements by the engine.
    ),
    Sink(
        sink_id="obs-span-attr", rule="TAINT005",
        description="span attribute / event payload exported by the tracer",
        receiver_hints=frozenset({"obs"}),
    ),
    Sink(
        sink_id="metrics-label", rule="TAINT006",
        description="metrics label exported in registry snapshots",
        methods=frozenset({"counter", "gauge", "histogram"}),
        receiver_hints=frozenset({"registry"}),
        args=(),  # the metric name is a literal; only labels leak
    ),
    Sink(
        sink_id="wire-serialization", rule="TAINT007",
        description="JSON text (wire/report serialization readable by the host)",
        qualnames=frozenset({"json.dumps", "json.dump"}),
        args=(0,), kwargs_leak=False,
    ),
    Sink(
        sink_id="public-kv-write", rule="TAINT008",
        description="value written to a public: map (persisted in plain text)",
        methods=frozenset({"put"}),
        # Applies only when the map-name argument resolves to "public:*";
        # the engine checks that, then treats the value argument as leaked.
        args=(2,), kwargs_leak=False,
    ),
)

SINKS_BY_ID: dict[str, Sink] = {sink.sink_id: sink for sink in SINKS}


@dataclass(frozen=True)
class Declassifier:
    """One approved way a secret-derived value becomes public."""

    category: str
    rationale: str
    qualnames: frozenset[str] = frozenset()
    methods: frozenset[str] = frozenset()
    names: frozenset[str] = frozenset()


DECLASSIFIERS: tuple[Declassifier, ...] = (
    Declassifier(
        category="aead-seal",
        rationale="AEAD ciphertext is indistinguishable without the key",
        methods=frozenset({"seal", "seal_snapshot", "seal_chunk"}),
    ),
    Declassifier(
        category="ecies-encrypt",
        rationale="ECIES box opens only with the member's private key",
        qualnames=frozenset({"repro.crypto.ecies.encrypt"}),
        methods=frozenset({"encrypt"}),
    ),
    Declassifier(
        category="signature",
        rationale="ECDSA signatures do not reveal the signing scalar",
        methods=frozenset({"sign"}),
    ),
    Declassifier(
        category="certificate",
        rationale="certificates carry only public keys and signatures",
        qualnames=frozenset({"repro.crypto.certs.issue",
                             "repro.crypto.certs.self_signed"}),
        names=frozenset({"issue", "self_signed"}),
    ),
    Declassifier(
        category="constant-time-compare",
        rationale="a boolean equality verdict, compared in constant time",
        qualnames=frozenset({"repro.crypto.ct.ct_eq"}),
        names=frozenset({"ct_eq"}),
    ),
    Declassifier(
        category="decrypt-reentry",
        rationale="decrypted payloads re-enter as application data, which "
                  "has its own (non-key-material) classification",
        methods=frozenset({"open", "open_snapshot", "open_chunk"}),
    ),
    Declassifier(
        category="size",
        rationale="lengths/counts of secrets are public in this model",
        names=frozenset({"len", "bool", "isinstance", "type"}),
    ),
)


def declassifier_for(qualname: str | None, method: str | None,
                     bare_name: str | None) -> Declassifier | None:
    for decl in DECLASSIFIERS:
        if qualname is not None and qualname in decl.qualnames:
            return decl
        if method is not None and method in decl.methods:
            return decl
        if bare_name is not None and bare_name in decl.names:
            return decl
    return None


def catalog() -> dict[str, list[dict]]:
    """The sinks + declassifiers halves of the boundary map."""
    sinks = [
        {
            "sink_id": sink.sink_id,
            "rule": sink.rule,
            "description": sink.description,
            "matches": sorted(
                [*sink.qualnames, *(f"{n}()" for n in sink.names)]
                + [
                    (f"<{'|'.join(sorted(sink.receiver_hints))}>.{m}()"
                     if sink.receiver_hints else f".{m}()")
                    for m in sorted(sink.methods)
                ]
                + ([f"<{'|'.join(sorted(sink.receiver_hints))}>.*()"]
                   if sink.receiver_hints and not sink.methods else [])
                + (["raise <tainted>"] if sink.sink_id == "exception-text" else [])
            ),
        }
        for sink in SINKS
    ]
    declassifiers = [
        {
            "category": decl.category,
            "rationale": decl.rationale,
            "matches": sorted(
                [*decl.qualnames, *(f"{n}()" for n in decl.names)]
                + [f".{m}()" for m in sorted(decl.methods)]
            ),
        }
        for decl in DECLASSIFIERS
    ]
    return {"sinks": sinks, "declassifiers": declassifiers}


@dataclass
class SinkHit:
    """A matched sink call site (engine-internal)."""

    sink: Sink
    detail: str = ""
    extra: dict = field(default_factory=dict)
