"""Secret sources: where confidential values enter the dataflow analysis.

Everything here is a declaration, not code: the taint engine
(:mod:`repro.analysis.taint`) seeds taint whenever a call, attribute read,
or enclave-memory fetch matches one of these catalogs. The catalog is the
first half of the trust-boundary map (``analysis taint --boundary-map``);
the sink/declassifier half lives in :mod:`repro.analysis.sinks`.

The guiding rule (paper §3/§5.2, Table 1): ledger secrets, the service and
node private keys, channel/session keys, ECIES/HKDF-derived keys, recovery
shares, and the private-map half of the KV store exist only inside the TEE.
Any value derived from them is secret until an approved declassifier
(AEAD seal, signature, ECIES box, ...) launders it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Source:
    """One way a secret enters the program."""

    source_id: str
    description: str


# -- calls whose *result* is secret, by resolved dotted name -------------

SOURCE_CALLS: dict[str, Source] = {
    # Ledger secrets (Table 1): the symmetric keys for private map updates.
    "repro.ledger.secrets.LedgerSecret": Source(
        "ledger-secret", "a ledger secret generation (raw AEAD key)"),
    "repro.ledger.secrets.LedgerSecret.generate": Source(
        "ledger-secret", "a freshly derived ledger secret"),
    "repro.ledger.secrets.LedgerSecretStore.current": Source(
        "ledger-secret", "the current ledger secret generation"),
    "repro.ledger.secrets.LedgerSecretStore.for_generation": Source(
        "ledger-secret", "a historical ledger secret generation"),
    # Node / service identity keys.
    "repro.crypto.ecdsa.SigningKey": Source(
        "signing-key", "an ECDSA private signing key"),
    "repro.crypto.ecdsa.SigningKey.generate": Source(
        "signing-key", "a freshly generated ECDSA private key"),
    # Channel key agreement.
    "repro.crypto.x25519.DHPrivateKey": Source(
        "dh-secret", "an X25519 private key"),
    "repro.crypto.x25519.DHPrivateKey.generate": Source(
        "dh-secret", "a freshly generated X25519 private key"),
    "repro.crypto.x25519.DHPrivateKey.exchange": Source(
        "dh-secret", "an X25519 shared secret"),
    # Derived keys.
    "repro.crypto.hkdf.hkdf": Source(
        "hkdf-derived-key", "an HKDF-derived key"),
    "repro.crypto.hkdf.hkdf_extract": Source(
        "hkdf-derived-key", "an HKDF PRK"),
    "repro.crypto.hkdf.hkdf_expand": Source(
        "hkdf-derived-key", "HKDF output keying material"),
    # AEAD key handles (hold raw key bytes).
    "repro.crypto.aead.AEADKey": Source("aead-key", "an AEAD key"),
    "repro.crypto.aead.AEADKey.generate": Source("aead-key", "an AEAD key"),
    "repro.crypto.fastaead.FastAEADKey": Source("aead-key", "an AEAD key"),
    "repro.crypto.fastaead.make_key": Source("aead-key", "an AEAD key"),
    # Recovery shares and the wrapping key they reconstruct (§5.2).
    "repro.crypto.shamir.split": Source(
        "recovery-share", "Shamir shares of the wrapping key"),
    "repro.crypto.shamir.combine": Source(
        "recovery-wrapping-key", "the reconstructed wrapping key"),
    "repro.crypto.shamir.Share": Source("recovery-share", "a recovery share"),
    "repro.crypto.shamir.Share.decode": Source(
        "recovery-share", "a decoded recovery share"),
    # Member encryption keys / decrypted ECIES plaintext.
    "repro.crypto.ecies.EncryptionKeyPair": Source(
        "encryption-key", "an ECIES decryption key pair"),
    "repro.crypto.ecies.EncryptionKeyPair.generate": Source(
        "encryption-key", "an ECIES decryption key pair"),
    "repro.crypto.ecies.EncryptionKeyPair.decrypt": Source(
        "ecies-plaintext", "plaintext recovered from an ECIES box"),
    # The serialized KV store contains private-map plaintext: treating it
    # as secret is what lets the analyzer prove snapshots never leave the
    # enclave unsealed.
    "repro.kv.store.KVStore.serialize_at": Source(
        "kv-private-state", "serialized store state incl. private maps"),
    "repro.kv.store.KVStore.serialize": Source(
        "kv-private-state", "serialized store state incl. private maps"),
}

# -- method-name fallbacks, for receivers the index cannot type ----------
# (method name, receiver terminal name) -> Source

SOURCE_METHOD_HINTS: dict[tuple[str, str], Source] = {
    ("current", "secrets"): SOURCE_CALLS["repro.ledger.secrets.LedgerSecretStore.current"],
    ("for_generation", "secrets"): SOURCE_CALLS[
        "repro.ledger.secrets.LedgerSecretStore.for_generation"],
    ("serialize_at", "store"): SOURCE_CALLS["repro.kv.store.KVStore.serialize_at"],
    ("serialize", "store"): SOURCE_CALLS["repro.kv.store.KVStore.serialize"],
}

# -- attribute names whose *read* yields a secret ------------------------
# These are the raw-material fields of the key objects above; reading one
# re-taints even when the engine lost track of the holding object.

SOURCE_ATTRS: dict[str, Source] = {
    "key_bytes": Source("ledger-secret", "raw ledger secret key bytes"),
    "scalar": Source("signing-key", "the ECDSA private scalar"),
    "node_key": Source("signing-key", "the node identity signing key"),
    "dh_key": Source("dh-secret", "the node channel DH private key"),
    "signing_key": Source("signing-key", "a private signing key"),
    "wrapping_key": Source("recovery-wrapping-key", "the share wrapping key"),
    "_dh": Source("dh-secret", "the channel DH private key"),
    "_keys": Source("channel-session-key", "established channel session keys"),
    "secrets": Source("ledger-secret", "the enclave's ledger secret store"),
}

# -- enclave memory: `*.memory.get("<name>")` for these names ------------

SECRET_ENCLAVE_KEYS: dict[str, Source] = {
    "service_key": Source("signing-key", "the service identity private key"),
    "node_key": Source("signing-key", "the node identity private key"),
    "ledger_secrets": Source("ledger-secret", "all ledger secret generations"),
    "recovery_submissions": Source(
        "recovery-share", "recovery shares accumulated in enclave memory"),
}

# -- projections that are public by construction -------------------------
# Reading one of these attributes off a secret-tainted object yields a
# public value (public halves of key pairs, version counters, suite ids).

PUBLIC_PROJECTIONS: frozenset[str] = frozenset(
    {"public", "public_key", "verifying_key", "generation", "suite", "index",
     "node_id"}
)


def catalog() -> list[dict]:
    """The sources half of the boundary map, deterministic order."""
    rows: dict[tuple[str, str, str], dict] = {}
    for qualname, source in sorted(SOURCE_CALLS.items()):
        rows[("call", qualname, source.source_id)] = {
            "kind": "call", "match": qualname,
            "source_id": source.source_id, "description": source.description,
        }
    for (method, hint), source in sorted(SOURCE_METHOD_HINTS.items()):
        rows[("method-hint", f"{hint}.{method}", source.source_id)] = {
            "kind": "method-hint", "match": f"<{hint}>.{method}()",
            "source_id": source.source_id, "description": source.description,
        }
    for attr, source in sorted(SOURCE_ATTRS.items()):
        rows[("attr", attr, source.source_id)] = {
            "kind": "attribute", "match": f".{attr}",
            "source_id": source.source_id, "description": source.description,
        }
    for name, source in sorted(SECRET_ENCLAVE_KEYS.items()):
        rows[("enclave", name, source.source_id)] = {
            "kind": "enclave-memory", "match": f'memory.get("{name}")',
            "source_id": source.source_id, "description": source.description,
        }
    return [rows[key] for key in sorted(rows)]
