"""Interprocedural secret-flow analysis over the ``repro`` tree.

The engine statically proves the TEE confidentiality boundary (paper §2,
§3, §5.2): no value derived from a declared secret source
(:mod:`repro.analysis.sources`) may reach an untrusted-host sink
(:mod:`repro.analysis.sinks`) unless it passes through an approved
declassifier or carries an audited ``# repro-taint: declassify=REASON``
annotation.

Architecture — dependency-free, two layers:

1. **Program index**: every module under the analyzed paths is parsed once;
   imports, module-level string constants, classes (with method tables and
   dataclass-ness), and functions (including nested ones) are indexed by
   dotted qualname.
2. **Summary fixpoint**: each function gets a dataflow summary —
   ``param_to_return`` (which parameters flow into the return value),
   ``source_to_return`` (secrets originating inside, possibly via callees),
   and ``param_to_sink`` (parameters that reach a sink inside the function
   or its callees). Functions are re-analyzed until no summary grows.
   Summaries are sets of abstract taints, so the fixpoint terminates;
   witness call-chains are recorded on first discovery and reported as the
   full source → call-chain → sink path of each violation.

Precision notes (documented in DESIGN.md § Trust boundary map):

- Secret-bearing *value carriers* (dataclasses without an explicit
  ``__init__``) propagate constructor-argument taint; *behaviour objects*
  (classes with an explicit ``__init__``) are clean handles whose secret
  extraction points are cataloged (``LedgerSecretStore.current``, the
  ``secrets``/``key_bytes`` attributes, ...).
- ``self.attr`` assignments of secret-tainted values are tracked per
  class, so a secret parked in instance state and leaked from another
  method is still caught (this is how the unsealed-snapshot flow through
  ``_pending_snapshot`` was found).
- Public projections (``.public_key``, ``.generation``, ...) yield clean
  values; hashing is *not* a declassifier and needs an annotation.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis import sinks as sink_catalog
from repro.analysis import sources as source_catalog
from repro.analysis.core import (
    Baseline,
    Finding,
    RULES,
    Rule,
    iter_python_files,
    register,
)
from repro.analysis.sinks import ALL_ARGS, DECLASSIFIERS, SINKS, declassifier_for
from repro.analysis.sources import (
    PUBLIC_PROJECTIONS,
    SECRET_ENCLAVE_KEYS,
    SOURCE_ATTRS,
    SOURCE_CALLS,
    SOURCE_METHOD_HINTS,
)

# The lookbehind skips quoted/backticked grammar *examples* in docstrings.
_ANNOTATION_RE = re.compile(
    r"(?<![`'\"])#.*?\brepro-taint:\s*declassify=([A-Za-z0-9_.:\-\/]+)")

_MAX_PASSES = 20
_MAX_CHAIN = 12

# Method names too generic for the unique-name call-resolution fallback
# (they collide with builtin collection/string methods).
_GENERIC_METHODS = frozenset({
    "append", "extend", "add", "get", "put", "pop", "items", "keys", "values",
    "update", "send", "write", "read", "open", "close", "encode", "decode",
    "copy", "clear", "remove", "split", "join", "sort", "index", "count",
    "replace", "format", "start", "run", "stop", "next", "setdefault",
})


def _terminal_name(node: ast.AST) -> str | None:
    """The last identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` as a string, or None for non-trivial expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# Program index


@dataclass
class FunctionInfo:
    qualname: str  # module.Class.method or module.func
    symbol: str  # Class.method / func / outer.<locals>-free nesting path
    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None  # owning class qualname, if a method
    params: list[str] = field(default_factory=list)
    vararg: str | None = None
    kwarg: str | None = None
    summary: "Summary" = field(default_factory=lambda: None)  # set in __post_init__

    def __post_init__(self):
        args = self.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)]
        if self.class_name is not None and names and names[0] in ("self", "cls"):
            self.self_name = names[0]
            names = names[1:]
        else:
            self.self_name = None
        self.params = names + [a.arg for a in args.kwonlyargs]
        self.vararg = args.vararg.arg if args.vararg else None
        self.kwarg = args.kwarg.arg if args.kwarg else None
        self.summary = Summary()

    def param_index(self, name: str) -> int | None:
        try:
            return self.params.index(name)
        except ValueError:
            return None


@dataclass
class ClassInfo:
    qualname: str
    name: str
    module_name: str
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)  # unresolved dotted names
    has_explicit_init: bool = False


@dataclass
class ModuleInfo:
    name: str
    rel_path: str
    tree: ast.Module
    lines: list[str]
    imports: dict[str, str] = field(default_factory=dict)
    constants: dict[str, str] = field(default_factory=dict)  # NAME -> str value
    functions: dict[str, FunctionInfo] = field(default_factory=dict)  # top-level
    classes: dict[str, ClassInfo] = field(default_factory=dict)

    def resolve(self, dotted: str | None) -> str | None:
        """Expand the head of a dotted name through the import map."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin


class Summary:
    """Per-function dataflow summary; all fields grow monotonically."""

    def __init__(self):
        self.param_to_return: set[int] = set()
        self.source_to_return: dict[tuple, tuple] = {}  # taint key -> witness
        self.param_to_sink: dict[tuple[int, str], tuple] = {}  # (param, sink) -> witness

    def size(self) -> tuple[int, int, int]:
        return (len(self.param_to_return), len(self.source_to_return),
                len(self.param_to_sink))


@dataclass
class Annotation:
    path: str
    line: int
    reason: str
    used: bool = False


class Program:
    """The whole-program index plus the shared fixpoint state."""

    def __init__(self):
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}  # qualname -> info
        self.classes: dict[str, ClassInfo] = {}  # qualname -> info
        self.by_method_name: dict[str, list[str]] = {}  # name -> qualnames
        # class qualname -> attr -> (taint key -> witness); source taints only.
        self.attr_taint: dict[str, dict[str, dict[tuple, tuple]]] = {}
        # class qualname -> attr -> class qualname (from `self.x = Cls(...)`).
        self.attr_types: dict[str, dict[str, str]] = {}
        self.annotations: dict[str, dict[int, Annotation]] = {}  # path -> line -> ann
        self.findings: dict[tuple, Finding] = {}
        self.suppressed = 0
        self.suppressed_keys: set[tuple] = set()
        self.parse_errors: list[Finding] = []
        self.files_analyzed = 0

    # -- indexing -------------------------------------------------------

    def add_module(self, rel_path: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=rel_path)
        except SyntaxError as exc:
            self.parse_errors.append(Finding(
                rule="SYNTAX", path=rel_path, line=exc.lineno or 1,
                column=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}", snippet="",
            ))
            return
        self.files_analyzed += 1
        name = _module_name(rel_path)
        module = ModuleInfo(name=name, rel_path=rel_path, tree=tree,
                            lines=source.splitlines())
        self._collect_imports(module)
        self._collect_annotations(module)
        for stmt in tree.body:
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)):
                module.constants[stmt.targets[0].id] = stmt.value.value
            elif (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.BinOp)
                    and isinstance(stmt.value.op, ast.Add)):
                # NAME = PREFIX + "literal" (the repro.node.maps idiom).
                left = stmt.value.left
                right = stmt.value.right
                left_val = (module.constants.get(left.id)
                            if isinstance(left, ast.Name) else
                            left.value if isinstance(left, ast.Constant)
                            and isinstance(left.value, str) else None)
                right_val = (right.value if isinstance(right, ast.Constant)
                             and isinstance(right.value, str) else None)
                if left_val is not None and right_val is not None:
                    module.constants[stmt.targets[0].id] = left_val + right_val
        self._index_scope(module, tree.body, prefix="", class_info=None)
        self.modules[name] = module

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    module.imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    module.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}")

    def _collect_annotations(self, module: ModuleInfo) -> None:
        table: dict[int, Annotation] = {}
        for lineno, text in enumerate(module.lines, start=1):
            match = _ANNOTATION_RE.search(text)
            if not match:
                continue
            target = lineno + 1 if text.lstrip().startswith("#") else lineno
            table[target] = Annotation(
                path=module.rel_path, line=target, reason=match.group(1))
        if table:
            self.annotations[module.rel_path] = table

    def _index_scope(self, module: ModuleInfo, body, prefix: str,
                     class_info: ClassInfo | None) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol = f"{prefix}{stmt.name}"
                info = FunctionInfo(
                    qualname=f"{module.name}.{symbol}", symbol=symbol,
                    module=module, node=stmt,
                    class_name=class_info.qualname if class_info else None,
                )
                self.functions[info.qualname] = info
                self.by_method_name.setdefault(stmt.name, []).append(info.qualname)
                if class_info is not None and prefix == f"{class_info.name}.":
                    class_info.methods[stmt.name] = info
                    if stmt.name == "__init__":
                        class_info.has_explicit_init = True
                elif class_info is None and prefix == "":
                    module.functions[stmt.name] = info
                # Nested defs are indexed (and analyzed) but not resolvable
                # by bare name from other scopes.
                self._index_scope(module, stmt.body, f"{symbol}.", class_info)
            elif isinstance(stmt, ast.ClassDef):
                cls = ClassInfo(
                    qualname=f"{module.name}.{stmt.name}", name=stmt.name,
                    module_name=module.name,
                    bases=[d for d in (_dotted(b) for b in stmt.bases) if d],
                )
                self.classes[cls.qualname] = cls
                module.classes[stmt.name] = cls
                self._index_scope(module, stmt.body, f"{stmt.name}.", cls)

    # -- resolution helpers ---------------------------------------------

    def lookup_class(self, module: ModuleInfo, dotted: str | None) -> ClassInfo | None:
        if dotted is None:
            return None
        if dotted in module.classes:
            return module.classes[dotted]
        resolved = module.resolve(dotted)
        return self.classes.get(resolved) if resolved else None

    def lookup_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        seen: set[str] = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            module = self.modules.get(current.module_name)
            if module is not None:
                for base in current.bases:
                    base_cls = self.lookup_class(module, base)
                    if base_cls is not None:
                        queue.append(base_cls)
        return None

    def constant_value(self, module: ModuleInfo, node: ast.AST) -> str | None:
        """Resolve a string constant: literal, local constant, or an
        attribute of an imported constants module (``maps.NODES_INFO``)."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return module.constants.get(node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            origin = module.imports.get(node.value.id)
            target = self.modules.get(origin) if origin else None
            if target is not None:
                return target.constants.get(node.attr)
        return None

    # -- annotations / findings -----------------------------------------

    def annotation_at(self, path: str, line: int) -> Annotation | None:
        return self.annotations.get(path, {}).get(line)

    def record_finding(self, fn: FunctionInfo, sink: sink_catalog.Sink,
                       line: int, taint_key: tuple, witness: tuple) -> None:
        source_id, origin = taint_key[1], taint_key[2]
        dedup = (sink.rule, fn.module.rel_path, line, source_id, origin, sink.sink_id)
        if dedup in self.findings or dedup in self.suppressed_keys:
            return
        origin_path, _, origin_line = origin.rpartition(":")
        for ann in (self.annotation_at(fn.module.rel_path, line),
                    self.annotation_at(origin_path, int(origin_line or 0))):
            if ann is not None:
                ann.used = True
                self.suppressed_keys.add(dedup)
                self.suppressed = len(self.suppressed_keys)
                return
        chain = " -> ".join((*witness, f"sink {sink.sink_id} at "
                             f"{fn.module.rel_path}:{line}"))[:1000]
        snippet = ""
        if 0 < line <= len(fn.module.lines):
            snippet = fn.module.lines[line - 1].strip()
        self.findings[dedup] = Finding(
            rule=sink.rule, path=fn.module.rel_path, line=line, column=1,
            message=f"secret '{source_id}' reaches {sink.sink_id}: {chain}",
            snippet=snippet, symbol=fn.symbol,
        )


def _module_name(rel_path: str) -> str:
    parts = list(Path(rel_path).with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or rel_path


# ---------------------------------------------------------------------------
# Intraprocedural transfer functions

TaintMap = dict[tuple, tuple]  # taint key -> witness (tuple of hop strings)


def _merge(into: TaintMap, other: TaintMap) -> bool:
    changed = False
    for key, witness in other.items():
        if key not in into:
            into[key] = witness
            changed = True
    return changed


def _hop(witness: tuple, step: str) -> tuple:
    if len(witness) >= _MAX_CHAIN:
        return witness
    return (*witness, step)


class FunctionAnalyzer:
    """One pass of abstract interpretation over one function body."""

    def __init__(self, program: Program, fn: FunctionInfo):
        self.program = program
        self.fn = fn
        self.module = fn.module
        self.env: dict[str, TaintMap] = {}
        self.env_types: dict[str, str] = {}  # var -> class qualname
        for i, name in enumerate(fn.params):
            self.env[name] = {("param", i): ()}
        for arg in (*fn.node.args.posonlyargs, *fn.node.args.args,
                    *fn.node.args.kwonlyargs):
            cls = self.program.lookup_class(self.module, _dotted(arg.annotation)
                                            if arg.annotation is not None else None)
            if cls is not None:
                self.env_types[arg.arg] = cls.qualname
        if fn.vararg:
            self.env[fn.vararg] = {("param", len(fn.params)): ()}
        if fn.kwarg:
            self.env[fn.kwarg] = {("param", len(fn.params) + 1): ()}

    # -- driver ---------------------------------------------------------

    def run(self) -> None:
        for _ in range(4):  # local fixpoint for loops/late bindings
            before = {name: len(t) for name, t in self.env.items()}
            self._walk(self.fn.node.body)
            if {name: len(t) for name, t in self.env.items()} == before:
                break

    def _loc(self, node: ast.AST) -> str:
        return f"{self.module.rel_path}:{getattr(node, 'lineno', 0)}"

    # -- statements ------------------------------------------------------

    def _walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            # `a, b = x, y` binds elementwise (no cross-element smearing).
            if (len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Tuple)
                    and isinstance(stmt.value, ast.Tuple)
                    and len(stmt.targets[0].elts) == len(stmt.value.elts)):
                for tgt, val in zip(stmt.targets[0].elts, stmt.value.elts):
                    self._bind(tgt, self.eval(val), val)
                return
            taints = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taints, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            cls = self.program.lookup_class(self.module, _dotted(stmt.annotation))
            if cls is not None and isinstance(stmt.target, ast.Name):
                self.env_types[stmt.target.id] = cls.qualname
            if stmt.value is not None:
                self._bind(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taints = self.eval(stmt.value)
            _merge(taints, self.eval(stmt.target))
            self._bind(stmt.target, taints, stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._note_return(self.eval(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                taints = self.eval(stmt.exc)
                self._sink_hit(sink_catalog.SINKS_BY_ID["exception-text"],
                               stmt, taints)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.For):
            self._bind_loop_target(stmt.target, stmt.iter)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                taints = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints, item.context_expr)
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # indexed and analyzed separately
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test)
            if stmt.msg is not None:
                taints = self.eval(stmt.msg)
                self._sink_hit(sink_catalog.SINKS_BY_ID["exception-text"],
                               stmt, taints)
        elif isinstance(stmt, ast.Delete):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)
                elif isinstance(child, ast.stmt):
                    self._stmt(child)

    def _bind_loop_target(self, target: ast.expr, iterable: ast.expr) -> None:
        """``for a, b in zip(xs, ys)`` binds a from xs and b from ys —
        iterating a zip must not smear one column's taint onto the other."""
        if (isinstance(target, ast.Tuple) and isinstance(iterable, ast.Call)
                and isinstance(iterable.func, ast.Name)
                and iterable.func.id == "zip"
                and not any(isinstance(a, ast.Starred) for a in iterable.args)
                and len(iterable.args) == len(target.elts)):
            for tgt, arg in zip(target.elts, iterable.args):
                self._bind(tgt, self.eval(arg), arg)
            return
        self._bind(target, self.eval(iterable), iterable)

    def _bind(self, target: ast.expr, taints: TaintMap, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            changed = _merge(self.env.setdefault(target.id, {}), taints)
            cls = self._constructed_class(value)
            if cls is not None:
                self.env_types[target.id] = cls
            if changed is False and not taints:
                pass
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._bind(inner, taints, value)
        elif isinstance(target, ast.Attribute):
            self._bind_attr(target, taints, value)
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name):
                _merge(self.env.setdefault(base.id, {}), taints)
            elif isinstance(base, ast.Attribute):
                self._bind_attr(base, taints, value)

    def _bind_attr(self, target: ast.Attribute, taints: TaintMap,
                   value: ast.expr) -> None:
        if (self.fn.self_name is None or self.fn.class_name is None
                or not isinstance(target.value, ast.Name)
                or target.value.id != self.fn.self_name):
            return
        source_taints = {k: w for k, w in taints.items() if k[0] == "source"}
        if source_taints:
            slot = self.program.attr_taint.setdefault(
                self.fn.class_name, {}).setdefault(target.attr, {})
            _merge(slot, {
                k: _hop(w, f"stored in self.{target.attr} at {self._loc(target)}")
                for k, w in source_taints.items()
            })
        cls = self._constructed_class(value)
        if cls is not None:
            self.program.attr_types.setdefault(
                self.fn.class_name, {})[target.attr] = cls

    def _constructed_class(self, value: ast.expr) -> str | None:
        if isinstance(value, ast.Call):
            cls = self.program.lookup_class(self.module, _dotted(value.func))
            if cls is not None:
                return cls.qualname
        if isinstance(value, ast.Name):
            return self.env_types.get(value.id)
        return None

    def _note_return(self, taints: TaintMap) -> None:
        summary = self.fn.summary
        for key, witness in taints.items():
            if key[0] == "param":
                summary.param_to_return.add(key[1])
            else:
                summary.source_to_return.setdefault(key, witness)

    # -- expressions -----------------------------------------------------

    def eval(self, node: ast.expr) -> TaintMap:
        if isinstance(node, ast.Name):
            return dict(self.env.get(node.id, {}))
        if isinstance(node, ast.Constant):
            return {}
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            taints = self.eval(node.value)
            _merge(taints, self.eval(node.slice))
            return taints
        if isinstance(node, ast.Compare):
            self.eval(node.left)
            for comp in node.comparators:
                self.eval(comp)
            return {}  # a boolean verdict, not the secret
        if isinstance(node, ast.Lambda):
            return {}
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for comp in node.generators:
                self._bind_loop_target(comp.target, comp.iter)
            return self.eval(node.elt)
        if isinstance(node, ast.DictComp):
            for comp in node.generators:
                self._bind_loop_target(comp.target, comp.iter)
            taints = self.eval(node.key)
            _merge(taints, self.eval(node.value))
            return taints
        if isinstance(node, ast.NamedExpr):
            taints = self.eval(node.value)
            self._bind(node.target, taints, node.value)
            return taints
        taints: TaintMap = {}
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                _merge(taints, self.eval(child))
        return taints

    def _eval_attribute(self, node: ast.Attribute) -> TaintMap:
        if node.attr in PUBLIC_PROJECTIONS:
            self.eval(node.value)
            return {}
        taints: TaintMap = {}
        if node.attr in SOURCE_ATTRS:
            source = SOURCE_ATTRS[node.attr]
            taints[("source", source.source_id, self._loc(node))] = (
                f"{self.fn.symbol} reads .{node.attr} ({source.description}) "
                f"at {self._loc(node)}",)
        if (self.fn.self_name is not None and isinstance(node.value, ast.Name)
                and node.value.id == self.fn.self_name
                and self.fn.class_name is not None):
            stored = self.program.attr_taint.get(
                self.fn.class_name, {}).get(node.attr)
            if stored:
                _merge(taints, {
                    k: _hop(w, f"read from self.{node.attr} at {self._loc(node)}")
                    for k, w in stored.items()
                })
        _merge(taints, self.eval(node.value))
        return taints

    def _receiver_type(self, receiver: ast.expr) -> str | None:
        if isinstance(receiver, ast.Name):
            if receiver.id == "cls" and self.fn.class_name is not None:
                return self.fn.class_name
            return self.env_types.get(receiver.id)
        if (isinstance(receiver, ast.Attribute)
                and self.fn.self_name is not None
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == self.fn.self_name
                and self.fn.class_name is not None):
            return self.program.attr_types.get(
                self.fn.class_name, {}).get(receiver.attr)
        return None

    # -- calls -----------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> TaintMap:
        func = node.func
        method = func.attr if isinstance(func, ast.Attribute) else None
        bare = func.id if isinstance(func, ast.Name) else None
        receiver = func.value if isinstance(func, ast.Attribute) else None
        receiver_terminal = _terminal_name(receiver) if receiver is not None else None

        # getattr(self, "attr", default) is an attribute read.
        if bare == "getattr" and node.args and len(node.args) >= 2:
            target, name_node = node.args[0], node.args[1]
            if (isinstance(name_node, ast.Constant)
                    and isinstance(name_node.value, str)):
                fake = ast.Attribute(value=target, attr=name_node.value,
                                     ctx=ast.Load())
                ast.copy_location(fake, node)
                return self._eval_attribute(fake)

        resolved = self._resolve_qualname(func, method, bare, receiver)

        arg_taints = [self.eval(arg.value if isinstance(arg, ast.Starred) else arg)
                      for arg in node.args]
        kw_taints = {kw.arg: self.eval(kw.value) for kw in node.keywords}

        # 1. Declassifiers win: the result is public by design.
        if declassifier_for(resolved, method, bare) is not None:
            return {}

        # 2. Sources: the result is secret.
        source = self._match_source(node, resolved, method, receiver_terminal)
        if source is not None:
            taints: TaintMap = {}
            for t in arg_taints:
                _merge(taints, t)
            for t in kw_taints.values():
                _merge(taints, t)
            key = ("source", source.source_id, self._loc(node))
            taints.setdefault(key, (
                f"{self.fn.symbol} obtains {source.source_id} "
                f"({source.description}) at {self._loc(node)}",))
            return taints

        # 3. Sinks: tainted arguments are violations / summary flows.
        sink = self._match_sink(node, resolved, method, bare, receiver,
                                receiver_terminal)
        if sink is not None:
            leaked: TaintMap = {}
            relevant = (range(len(arg_taints)) if sink.args == (ALL_ARGS,)
                        else [i for i in sink.args if i < len(arg_taints)])
            for i in relevant:
                _merge(leaked, arg_taints[i])
            if sink.kwargs_leak:
                for t in kw_taints.values():
                    _merge(leaked, t)
            self._sink_hit(sink, node, leaked)
            return {}

        mutation: TaintMap = {}
        for t in (*arg_taints, *kw_taints.values()):
            _merge(mutation, t)
        receiver_taints: TaintMap = (
            self.eval(receiver) if receiver is not None else {})

        # 4. Resolved callee: apply its summary. The result also carries the
        # receiver's own taint (``h.digest()`` derives from ``h``'s state).
        callee = self._resolve_callee(func, resolved, method, bare, receiver)
        if callee is not None:
            result = self._apply_summary(node, callee, arg_taints, kw_taints)
            if method is not None:
                _merge(result, receiver_taints)
            return result

        # 4b. Constructor of an indexed class (incl. `cls(...)` inside a
        # classmethod of that class).
        cls = self.program.lookup_class(self.module, _dotted(func))
        if cls is None and bare == "cls" and self.fn.class_name is not None:
            cls = self.program.classes.get(self.fn.class_name)
        if cls is not None:
            if cls.has_explicit_init:
                init = cls.methods.get("__init__")
                if init is not None:
                    self._apply_summary(node, init, arg_taints, kw_taints)
                return {}  # behaviour object: a clean handle
            result: TaintMap = {}  # value carrier: fields keep their taint
            for t in (*arg_taints, *kw_taints.values()):
                _merge(result, {
                    k: _hop(w, f"carried into {cls.name}() at {self._loc(node)}")
                    for k, w in t.items()
                })
            return result

        # 5. Unknown callable: conservative propagation (receiver + args),
        # plus a weak update — the call may deposit argument taint in its
        # receiver (``h.update(secret)``, ``entries.append(secret)``). Only
        # unresolved calls need this (summaries model resolved ones), and
        # never on `self`/`cls` (instance state is the attr-taint heap).
        if (method is not None and isinstance(receiver, ast.Name)
                and receiver.id not in (self.fn.self_name, "cls") and mutation):
            _merge(self.env.setdefault(receiver.id, {}), {
                k: _hop(w, f"stored into {receiver.id}.{method}(...) at "
                        f"{self._loc(node)}")
                for k, w in mutation.items()
            })
        result = {}
        _merge(result, receiver_taints)
        _merge(result, mutation)
        return result

    def _resolve_qualname(self, func, method, bare, receiver) -> str | None:
        if bare is not None:
            resolved = self.module.resolve(bare)
            return resolved
        dotted = _dotted(func)
        if dotted is not None:
            resolved = self.module.resolve(dotted)
            if resolved is not None and (resolved in SOURCE_CALLS
                                         or resolved in self.program.functions
                                         or "." in resolved):
                # `Type.method` via imported class: ClassName.method.
                head, _, tail = dotted.partition(".")
                cls = self.program.lookup_class(self.module, head)
                if cls is not None and tail and "." not in tail:
                    return f"{cls.qualname}.{tail}"
                return resolved
        if receiver is not None and method is not None:
            rtype = self._receiver_type(receiver)
            if rtype is not None:
                return f"{rtype}.{method}"
        return None

    def _match_source(self, node, resolved, method, receiver_terminal):
        if resolved is not None and resolved in SOURCE_CALLS:
            return SOURCE_CALLS[resolved]
        if method is not None and receiver_terminal is not None:
            hint = SOURCE_METHOD_HINTS.get((method, receiver_terminal))
            if hint is not None:
                return hint
            if (method == "get" and receiver_terminal == "memory" and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value in SECRET_ENCLAVE_KEYS):
                return SECRET_ENCLAVE_KEYS[node.args[0].value]
        return None

    def _match_sink(self, node, resolved, method, bare, receiver,
                    receiver_terminal):
        for sink in SINKS:
            if sink.sink_id == "exception-text":
                continue
            if resolved is not None and resolved in sink.qualnames:
                if sink.sink_id == "public-kv-write" and not \
                        self._is_public_map_write(node):
                    continue
                return sink
            if bare is not None and bare in sink.names:
                return sink
            if method is None:
                continue
            hint_ok = receiver_terminal is not None and any(
                receiver_terminal == hint or receiver_terminal.endswith(hint)
                for hint in sink.receiver_hints
            )
            if sink.methods and method in sink.methods:
                if sink.receiver_hints and not hint_ok:
                    continue
                if sink.sink_id == "public-kv-write" and not \
                        self._is_public_map_write(node):
                    continue
                return sink
            if not sink.methods and sink.receiver_hints and hint_ok:
                return sink
        return None

    def _is_public_map_write(self, node: ast.Call) -> bool:
        if not node.args:
            return False
        value = self.program.constant_value(self.module, node.args[0])
        return value is not None and value.startswith("public:")

    def _resolve_callee(self, func, resolved, method, bare, receiver):
        if resolved is not None and resolved in self.program.functions:
            return self.program.functions[resolved]
        if bare is not None and bare in self.module.functions:
            return self.module.functions[bare]
        if method is not None and receiver is not None:
            # self.method() -> own class (and bases).
            if (self.fn.self_name is not None
                    and isinstance(receiver, ast.Name)
                    and receiver.id == self.fn.self_name
                    and self.fn.class_name is not None):
                cls = self.program.classes.get(self.fn.class_name)
                if cls is not None:
                    found = self.program.lookup_method(cls, method)
                    if found is not None:
                        return found
            rtype = self._receiver_type(receiver)
            if rtype is not None:
                cls = self.program.classes.get(rtype)
                if cls is not None:
                    found = self.program.lookup_method(cls, method)
                    if found is not None:
                        return found
            # Unique-name fallback for untypable receivers (host wiring).
            if (method not in _GENERIC_METHODS and len(method) >= 6
                    and not method.startswith("__")):
                candidates = self.program.by_method_name.get(method, [])
                if len(candidates) == 1:
                    return self.program.functions[candidates[0]]
        return None

    def _apply_summary(self, node: ast.Call, callee: FunctionInfo,
                       arg_taints: list[TaintMap],
                       kw_taints: dict[str | None, TaintMap]) -> TaintMap:
        by_param: dict[int, TaintMap] = {}
        spill: TaintMap = {}
        n_params = len(callee.params)
        for i, (arg, taints) in enumerate(zip(node.args, arg_taints)):
            if isinstance(arg, ast.Starred):
                _merge(spill, taints)
            elif i < n_params:
                by_param.setdefault(i, {}).update(taints)
            elif callee.vararg is not None:
                by_param.setdefault(n_params, {}).update(taints)
            else:
                _merge(spill, taints)
        for name, taints in kw_taints.items():
            idx = callee.param_index(name) if name is not None else None
            if idx is not None:
                by_param.setdefault(idx, {}).update(taints)
            elif callee.kwarg is not None:
                by_param.setdefault(n_params + 1, {}).update(taints)
            else:
                _merge(spill, taints)
        if spill:
            for i in range(n_params + 2):
                by_param.setdefault(i, {}).update(spill)

        loc = self._loc(node)
        summary = callee.summary
        # Parameters that reach sinks inside the callee (or deeper).
        for (i, sink_id), inner_witness in sorted(summary.param_to_sink.items()):
            taints = by_param.get(i)
            if not taints:
                continue
            sink = sink_catalog.SINKS_BY_ID[sink_id]
            for key, witness in sorted(taints.items()):
                step = f"passed to {callee.symbol}() at {loc}"
                full = (*_hop(witness, step), *inner_witness)[:_MAX_CHAIN]
                if key[0] == "source":
                    self.program.record_finding(
                        self.fn, sink, node.lineno, key, full)
                else:
                    self.fn.summary.param_to_sink.setdefault(
                        (key[1], sink_id), full)
        # The return value.
        result: TaintMap = {}
        for i in sorted(summary.param_to_return):
            taints = by_param.get(i)
            if taints:
                _merge(result, {
                    k: _hop(w, f"through {callee.symbol}() at {loc}")
                    for k, w in taints.items()
                })
        for key, inner_witness in sorted(summary.source_to_return.items()):
            result.setdefault(
                key, (*inner_witness, f"returned by {callee.symbol}() at {loc}")
                [:_MAX_CHAIN])
        return result

    # -- sink recording --------------------------------------------------

    def _sink_hit(self, sink: sink_catalog.Sink, node: ast.AST,
                  taints: TaintMap) -> None:
        line = getattr(node, "lineno", 0)
        for key, witness in sorted(taints.items()):
            if key[0] == "source":
                self.program.record_finding(self.fn, sink, line, key, witness)
            else:
                self.fn.summary.param_to_sink.setdefault(
                    (key[1], sink.sink_id),
                    _hop(witness, f"reaches sink {sink.sink_id} at "
                         f"{self.module.rel_path}:{line}"))


# ---------------------------------------------------------------------------
# Whole-program driver


@dataclass
class TaintResult:
    findings: list[Finding] = field(default_factory=list)
    parse_errors: list[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    suppressed: int = 0
    baselined: int = 0
    annotations: list[Annotation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors


def build_program(paths: Iterable[Path], root: Path | None = None) -> Program:
    root = root if root is not None else Path.cwd()
    program = Program()
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        program.add_module(rel, file_path.read_text())
    return program


def analyze_taint(
    paths: Iterable[Path],
    root: Path | None = None,
    baseline: Baseline | None = None,
) -> TaintResult:
    """Run the interprocedural analysis over every file under ``paths``."""
    program = build_program(paths, root)
    order = sorted(program.functions)
    for _pass in range(_MAX_PASSES):
        before = (
            tuple(program.functions[q].summary.size() for q in order),
            sum(len(attrs) and sum(len(t) for t in attrs.values())
                for attrs in program.attr_taint.values()),
            len(program.findings), program.suppressed,
        )
        for qualname in order:
            # Findings found in earlier passes stay (dedup'd); summaries and
            # heap taint only grow, so re-analysis is monotone.
            FunctionAnalyzer(program, program.functions[qualname]).run()
        after = (
            tuple(program.functions[q].summary.size() for q in order),
            sum(len(attrs) and sum(len(t) for t in attrs.values())
                for attrs in program.attr_taint.values()),
            len(program.findings), program.suppressed,
        )
        if after == before:
            break
    result = TaintResult(
        parse_errors=program.parse_errors,
        files_analyzed=program.files_analyzed,
        suppressed=program.suppressed,
    )
    findings = sorted(
        program.findings.values(),
        key=lambda f: (f.path, f.line, f.rule, f.message),
    )
    if baseline is not None:
        findings, result.baselined = baseline.filter(findings)
    result.findings = findings
    result.annotations = sorted(
        (ann for table in program.annotations.values() for ann in table.values()),
        key=lambda a: (a.path, a.line),
    )
    return result


def boundary_map(result: TaintResult | None = None) -> dict:
    """The machine-readable trust-boundary map: every declared source,
    sink, and declassifier, plus (when a run is supplied) each audited
    in-code declassification annotation and whether it matched a flow."""
    mapping: dict = {"sources": source_catalog.catalog()}
    mapping.update(sink_catalog.catalog())
    mapping["annotation_grammar"] = (
        "# repro-taint: declassify=REASON  -- on the sink (or source) line, "
        "or alone on the line above it")
    if result is not None:
        mapping["annotations"] = [
            {"path": ann.path, "line": ann.line, "reason": ann.reason,
             "used": ann.used}
            for ann in result.annotations
        ]
    return mapping


# ---------------------------------------------------------------------------
# Rule registry entries (for --list-rules / SARIF metadata). The checks are
# whole-program, so the per-file ``check`` hooks yield nothing; the taint
# driver constructs Findings carrying these rule ids directly.

_TAINT_RULES: tuple[tuple[str, str], ...] = tuple(
    (sink.rule, sink.description) for sink in SINKS
)


def _register_taint_rules() -> None:
    for rule_id, description in _TAINT_RULES:
        if rule_id in RULES:
            continue

        namespace = {
            "rule_id": rule_id,
            "title": f"secret flow to {description}",
            "rationale": "interprocedural taint analysis "
                         "(python -m repro.analysis taint)",
            "check": lambda self, ctx: (),
        }
        register(type(f"TaintRule_{rule_id}", (Rule,), namespace))


_register_taint_rules()
