"""Determinism & protocol-hygiene static analysis (plus a runtime
replay-divergence sanitizer in :mod:`repro.analysis.sanitizer`).

Everything this reproduction guarantees — byte-for-byte chaos replay from a
seed, auditable ledgers, model-checkable consensus — rests on two coding
disciplines the paper's trust story assumes but convention alone cannot
enforce:

1. **Determinism**: all time flows from the simulated scheduler and all
   randomness from its seeded RNG; no ordering ever depends on memory
   addresses or ``PYTHONHASHSEED``.
2. **Protocol hygiene**: protocol failures are *typed* (``repro.errors``)
   rather than asserted or swallowed, and authenticator comparisons are
   constant-time.

The linter (``python -m repro.analysis lint src``, or just
``python -m repro.analysis src``) machine-checks both with an AST rule
catalog (DET001–003, SEC001–002, PROTO001–002); the sanitizer
(``python -m repro.analysis.sanitizer``) checks the *runtime* half by
replaying a seeded chaos schedule twice and binary-searching any trace
divergence to the first differing event. See DESIGN.md § "Determinism
discipline" for the catalog and suppression syntax.

A third discipline is the paper's central one — **confidentiality**:
secrets (ledger secrets, signing keys, recovery shares, derived keys)
must never reach the untrusted host unsealed. The interprocedural
secret-flow analyzer (``python -m repro.analysis taint src``,
:mod:`repro.analysis.taint`) proves this statically with per-function
dataflow summaries, reporting each violation as a full
source→call-chain→sink path; ``--boundary-map`` emits the audited trust
boundary (sources, sinks, declassifiers, ``# repro-taint:
declassify=REASON`` annotations) as JSON. See DESIGN.md § "Trust
boundary map".
"""

from repro.analysis.core import (
    AnalysisResult,
    Baseline,
    FileContext,
    Finding,
    RULES,
    Rule,
    analyze_paths,
    register,
)

__all__ = [
    "AnalysisResult",
    "Baseline",
    "FileContext",
    "Finding",
    "RULES",
    "Rule",
    "analyze_paths",
    "analyze_taint",
    "boundary_map",
    "register",
]


def __getattr__(name):  # PEP 562: avoid importing the engine until needed
    if name in ("analyze_taint", "boundary_map", "TaintResult"):
        from repro.analysis import taint as _taint

        return getattr(_taint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
