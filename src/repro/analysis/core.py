"""Core machinery of the determinism & protocol-hygiene linter.

The framework is deliberately small and dependency-free:

- :class:`FileContext` — one parsed source file (AST, lines, import map).
- :class:`Rule` — base class; concrete rules register themselves with
  :func:`register` and yield :class:`Finding` objects from ``check``.
- Suppressions — ``# repro-lint: disable=RULE1,RULE2`` on the flagged line
  (or alone on the line above) silences specific rules; a bare
  ``# repro-lint: disable`` silences everything on that line. Suppressions
  are for *reviewed* exceptions and should carry a reason in the comment.
- :class:`Baseline` — a JSON ratchet for legacy findings: existing debt is
  recorded once and only *new* findings fail the build. This repository
  keeps the baseline empty; the mechanism exists so downstream forks can
  adopt the linter without a flag day.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Iterable, Iterator

# The directive may follow explanatory prose within the same comment
# ("# salvaged disks fail arbitrarily. repro-lint: disable=PROTO002").
_SUPPRESS_RE = re.compile(r"#.*?\brepro-lint:\s*disable(?:=([A-Za-z0-9_,\s]+))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # repo-relative, posix-style
    line: int
    column: int
    message: str
    snippet: str  # the offending source line, stripped
    symbol: str = ""  # enclosing def/class qualname ("<module>" at top level)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def content_key(self) -> str:
        """Identity used by the baseline: (rule, relpath, symbol). Free of
        line numbers (findings survive edits that shift lines) and of the
        source text itself (they survive reformatting inside the symbol).
        Findings recorded before symbols existed fall back to a snippet
        digest, so old baselines stay meaningful."""
        anchor = self.symbol or sha256(self.snippet.encode()).hexdigest()[:16]
        return f"{self.rule}|{self.path}|{anchor}"

    def move_key(self) -> str:
        """Path-independent identity: a file rename/move must not resurrect
        a baselined finding (the symbol travels with the code)."""
        anchor = self.symbol or sha256(self.snippet.encode()).hexdigest()[:16]
        return f"{self.rule}|*|{anchor}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "snippet": self.snippet,
            "symbol": self.symbol,
        }


class FileContext:
    """A parsed source file plus the lookups rules share."""

    def __init__(self, path: Path, rel_path: str, source: str):
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel_path)
        self.imports = self._collect_imports()
        self._suppressions = self._collect_suppressions()

    # -- imports --------------------------------------------------------

    def _collect_imports(self) -> dict[str, str]:
        """Map local alias -> dotted origin (``t`` -> ``time``,
        ``now`` -> ``datetime.datetime.now``) for resolving call targets."""
        imports: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        return imports

    def resolve_call_name(self, qual: str | None) -> str | None:
        """Expand the first component of a dotted name through the import
        map: with ``import time as t``, ``t.time`` resolves to ``time.time``."""
        if qual is None:
            return None
        head, _, rest = qual.partition(".")
        origin = self.imports.get(head)
        if origin is None:
            return qual
        return f"{origin}.{rest}" if rest else origin

    # -- suppressions ---------------------------------------------------

    def _collect_suppressions(self) -> dict[int, set[str]]:
        suppressions: dict[int, set[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if not match:
                continue
            rules = (
                {rule.strip().upper() for rule in match.group(1).split(",") if rule.strip()}
                if match.group(1)
                else {"*"}
            )
            # A comment-only line suppresses the line below; an end-of-line
            # comment suppresses its own line.
            target = lineno + 1 if text.lstrip().startswith("#") else lineno
            suppressions.setdefault(target, set()).update(rules)
        return suppressions

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self._suppressions.get(line)
        return rules is not None and ("*" in rules or rule.upper() in rules)

    # -- symbols --------------------------------------------------------

    def symbol_at(self, line: int) -> str:
        """Qualname of the innermost def/class enclosing ``line``
        (``"<module>"`` for top-level code)."""
        if not hasattr(self, "_symbol_spans"):
            self._symbol_spans = self._collect_symbol_spans()
        best = "<module>"
        best_size = None
        for start, end, qualname in self._symbol_spans:
            if start <= line <= end and (best_size is None or end - start <= best_size):
                best, best_size = qualname, end - start
        return best

    def _collect_symbol_spans(self) -> list[tuple[int, int, str]]:
        spans: list[tuple[int, int, str]] = []

        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    qualname = f"{prefix}{child.name}"
                    end = getattr(child, "end_lineno", child.lineno) or child.lineno
                    spans.append((child.lineno, end, qualname))
                    visit(child, f"{qualname}.")
                else:
                    visit(child, prefix)

        visit(self.tree, "")
        return spans

    # -- finding construction ------------------------------------------

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        snippet = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(
            rule=rule, path=self.rel_path, line=line, column=column,
            message=message, snippet=snippet, symbol=self.symbol_at(line),
        )


class Rule:
    """Base class for lint rules. Subclasses set the class attributes and
    implement :meth:`check`; registration is explicit via :func:`register`."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (as a singleton) to the registry."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if instance.rule_id in RULES:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    RULES[instance.rule_id] = instance
    return cls


@dataclass
class AnalysisResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_analyzed: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors


class Baseline:
    """A ratchet of accepted findings, keyed by content (not line number).

    The on-disk format counts occurrences per key, so two identical lines
    in one file baseline independently.
    """

    def __init__(self, counts: dict[str, int] | None = None):
        self.counts: dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        return cls(data.get("findings", {}))

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            key = finding.content_key()
            baseline.counts[key] = baseline.counts.get(key, 0) + 1
        return baseline

    def save(self, path: Path) -> None:
        payload = {
            "comment": "repro.analysis baseline: accepted legacy findings; "
                       "keep this empty unless ratcheting down real debt",
            "findings": dict(sorted(self.counts.items())),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def filter(self, findings: list[Finding]) -> tuple[list[Finding], int]:
        """Split findings into (new, number_baselined).

        Matching is two-pass: first on the exact (rule, relpath, symbol)
        key, then — for findings whose file was renamed or moved since the
        baseline was recorded — on (rule, symbol) alone. Both passes draw
        from the same per-key budget, so a moved file cannot double-spend
        its accepted occurrences."""
        budget = dict(self.counts)
        by_move_key: dict[str, list[str]] = {}
        for key in sorted(budget):
            rule, _path, anchor = key.split("|", 2)
            by_move_key.setdefault(f"{rule}|*|{anchor}", []).append(key)
        fresh: list[Finding] = []
        baselined = 0
        for finding in findings:
            key = finding.content_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined += 1
                continue
            donor = next(
                (k for k in by_move_key.get(finding.move_key(), []) if budget.get(k, 0) > 0),
                None,
            )
            if donor is not None:
                budget[donor] -= 1
                baselined += 1
            else:
                fresh.append(finding)
        return fresh, baselined


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield .py files under ``paths`` (files or directories), skipping
    caches and hidden directories, in sorted (deterministic) order."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(part.startswith(".") or part == "__pycache__" for part in parts):
                continue
            yield candidate


def analyze_paths(
    paths: Iterable[Path],
    root: Path | None = None,
    rules: Iterable[str] | None = None,
    baseline: Baseline | None = None,
) -> AnalysisResult:
    """Run the selected rules (default: all) over every Python file under
    ``paths``. Paths in findings are reported relative to ``root``."""
    # Importing the rules module populates the registry exactly once.
    from repro.analysis import rules as _rules  # noqa: F401 - registration side effect

    root = root if root is not None else Path.cwd()
    selected = [
        RULES[rule_id]
        for rule_id in (sorted(RULES) if rules is None else rules)
    ]
    result = AnalysisResult()
    raw: list[Finding] = []
    for file_path in iter_python_files([Path(p) for p in paths]):
        try:
            rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        source = file_path.read_text()
        try:
            ctx = FileContext(file_path, rel, source)
        except SyntaxError as exc:
            result.parse_errors.append(Finding(
                rule="SYNTAX", path=rel, line=exc.lineno or 1,
                column=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}", snippet="",
            ))
            continue
        result.files_analyzed += 1
        for rule in selected:
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding.rule, finding.line):
                    result.suppressed += 1
                else:
                    raw.append(finding)
    raw.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
    if baseline is not None:
        raw, result.baselined = baseline.filter(raw)
    result.findings = raw
    return result
