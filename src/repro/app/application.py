"""Endpoint registration and dispatch."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.app.context import RequestContext
from repro.errors import ConfigurationError

Handler = Callable[[RequestContext], Any]

AUTH_POLICIES = ("no_auth", "user_cert", "member_cert", "user_signature", "jwt")


@dataclass(frozen=True)
class Endpoint:
    """One invocable endpoint.

    ``auth_policy`` declares how callers must authenticate (section 3.1):
    CCF checks the policy *before* the handler runs; the handler then
    applies its own authorization on the authenticated claims.
    ``read_only`` endpoints run on any node against the latest local state
    and produce no ledger entry (section 3.4).
    """

    name: str
    handler: Handler
    auth_policy: str = "user_cert"
    read_only: bool = False

    def __post_init__(self) -> None:
        if self.auth_policy not in AUTH_POLICIES:
            raise ConfigurationError(f"unknown auth policy {self.auth_policy!r}")


@dataclass
class Application:
    """A named collection of endpoints plus optional indexing strategies."""

    name: str = "app"
    endpoints: dict[str, Endpoint] = field(default_factory=dict)
    # Indexing strategy factories, installed on each hosting node
    # (section 3.4): name -> zero-arg factory returning a strategy.
    indexing_strategies: dict[str, Callable[[], Any]] = field(default_factory=dict)

    def add_endpoint(
        self,
        name: str,
        handler: Handler,
        auth_policy: str = "user_cert",
        read_only: bool = False,
    ) -> None:
        if name in self.endpoints:
            raise ConfigurationError(f"endpoint {name!r} already registered")
        self.endpoints[name] = Endpoint(
            name=name, handler=handler, auth_policy=auth_policy, read_only=read_only
        )

    def endpoint(
        self, name: str, auth_policy: str = "user_cert", read_only: bool = False
    ) -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`add_endpoint`."""

        def decorator(handler: Handler) -> Handler:
            self.add_endpoint(name, handler, auth_policy=auth_policy, read_only=read_only)
            return handler

        return decorator

    def add_indexing_strategy(self, name: str, factory: Callable[[], Any]) -> None:
        self.indexing_strategies[name] = factory

    def lookup(self, name: str) -> Endpoint | None:
        return self.endpoints.get(name)


def endpoint(
    app: Application, name: str, auth_policy: str = "user_cert", read_only: bool = False
):
    """Free-function decorator: ``@endpoint(app, "write_message")``."""
    return app.endpoint(name, auth_policy=auth_policy, read_only=read_only)
