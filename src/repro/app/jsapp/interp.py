"""Tree-walking interpreter for the mini-JavaScript subset.

JS values map onto Python values: numbers are int/float, strings are str,
arrays are list, objects are dict, null/undefined are None. Functions are
:class:`JSFunction` closures or plain Python callables (the native stdlib
and host bindings). Host objects (like the ``ccf.kv`` map handles) subclass
:class:`NativeObject` to expose members.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.app.jsapp.parser import parse
from repro.errors import JSError, JSReferenceError

MAX_STEPS = 5_000_000  # runaway-script guard (per Interpreter.run call)


class JSThrow(Exception):
    """A JS ``throw`` propagating through Python frames."""

    def __init__(self, value: Any):
        super().__init__(repr(value))
        self.value = value


class _Return(Exception):
    def __init__(self, value: Any):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class NativeObject:
    """Base class for host objects exposed to scripts."""

    def get_member(self, name: str) -> Any:
        raise JSError(f"{type(self).__name__} has no member {name!r}")


class Environment:
    __slots__ = ("values", "parent")

    def __init__(self, parent: "Environment | None" = None):
        self.values: dict[str, Any] = {}
        self.parent = parent

    def lookup(self, name: str) -> Any:
        env: Environment | None = self
        while env is not None:
            if name in env.values:
                return env.values[name]
            env = env.parent
        raise JSReferenceError(f"{name} is not defined")

    def assign(self, name: str, value: Any) -> None:
        env: Environment | None = self
        while env is not None:
            if name in env.values:
                env.values[name] = value
                return
            env = env.parent
        raise JSError(f"{name} is not defined")

    def declare(self, name: str, value: Any) -> None:
        self.values[name] = value


class JSFunction:
    __slots__ = ("name", "params", "body", "closure", "interp")

    def __init__(self, name, params, body, closure, interp):
        self.name = name or "<anonymous>"
        self.params = params
        self.body = body
        self.closure = closure
        self.interp = interp

    def __call__(self, *args: Any) -> Any:
        env = Environment(self.closure)
        for i, param in enumerate(self.params):
            env.declare(param, args[i] if i < len(args) else None)
        env.declare("arguments", list(args))
        try:
            self.interp.exec_statement(self.body, env)
        except _Return as signal:
            return signal.value
        return None


def _truthy(value: Any) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return value != ""
    return True  # arrays/objects/functions are truthy even when empty


def js_repr(value: Any) -> str:
    """The string JS would produce for a value in string contexts."""
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    if isinstance(value, list):
        return ",".join(js_repr(item) for item in value)
    if isinstance(value, dict):
        return "[object Object]"
    return str(value)


class Interpreter:
    """One script execution context with its global environment."""

    def __init__(self, extra_globals: dict[str, Any] | None = None):
        from repro.app.jsapp.stdlib import make_globals

        self.globals = Environment()
        for name, value in make_globals().items():
            self.globals.declare(name, value)
        if extra_globals:
            for name, value in extra_globals.items():
                self.globals.declare(name, value)
        self.steps = 0

    # ------------------------------------------------------------------

    def run(self, source: str) -> Environment:
        """Execute a program; returns the global environment (so callers
        can pull out declared functions)."""
        return self.run_ast(parse(source))

    def run_ast(self, ast: tuple) -> Environment:
        """Execute a pre-parsed program (hosts cache the AST per module)."""
        self.steps = 0
        for statement in ast[1]:
            self.exec_statement(statement, self.globals)
        return self.globals

    def call_function(self, name: str, *args: Any) -> Any:
        function = self.globals.lookup(name)
        if not callable(function):
            raise JSError(f"{name} is not a function")
        return function(*args)

    # ------------------------------------------------------------------
    # Statements

    def exec_statement(self, node: tuple, env: Environment) -> None:
        self._tick()
        kind = node[0]
        if kind == "expr_stmt":
            self.eval_expression(node[1], env)
        elif kind == "declare":
            for name, initializer in node[2]:
                value = None if initializer is None else self.eval_expression(initializer, env)
                env.declare(name, value)
        elif kind == "block":
            block_env = Environment(env)
            for statement in node[1]:
                self.exec_statement(statement, block_env)
        elif kind == "if":
            if _truthy(self.eval_expression(node[1], env)):
                self.exec_statement(node[2], env)
            elif node[3] is not None:
                self.exec_statement(node[3], env)
        elif kind == "while":
            while _truthy(self.eval_expression(node[1], env)):
                self._tick()
                try:
                    self.exec_statement(node[2], env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif kind == "for":
            _, init, condition, update, body = node
            loop_env = Environment(env)
            if init is not None:
                self.exec_statement(init, loop_env)
            while condition is None or _truthy(self.eval_expression(condition, loop_env)):
                self._tick()
                try:
                    self.exec_statement(body, loop_env)
                except _Break:
                    break
                except _Continue:
                    pass
                if update is not None:
                    self.eval_expression(update, loop_env)
        elif kind == "for_of":
            _, name, iterable_node, body = node
            iterable = self.eval_expression(iterable_node, env)
            if isinstance(iterable, dict):
                items = list(iterable.keys())
            elif isinstance(iterable, (list, str)):
                items = list(iterable)
            else:
                raise JSError("for-of needs an array, string, or object")
            for item in items:
                self._tick()
                loop_env = Environment(env)
                loop_env.declare(name, item)
                try:
                    self.exec_statement(body, loop_env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif kind == "func_decl":
            _, name, params, body = node
            env.declare(name, JSFunction(name, params, body, env, self))
        elif kind == "return":
            value = None if node[1] is None else self.eval_expression(node[1], env)
            raise _Return(value)
        elif kind == "break":
            raise _Break()
        elif kind == "continue":
            raise _Continue()
        elif kind == "throw":
            raise JSThrow(self.eval_expression(node[1], env))
        elif kind == "try":
            _, try_block, catch_name, catch_block, finally_block = node
            try:
                self.exec_statement(try_block, env)
            except JSThrow as thrown:
                if catch_block is not None:
                    catch_env = Environment(env)
                    if catch_name is not None:
                        catch_env.declare(catch_name, thrown.value)
                    self.exec_statement(catch_block, catch_env)
                elif finally_block is None:
                    raise
            finally:
                if finally_block is not None:
                    self.exec_statement(finally_block, env)
        else:
            raise JSError(f"unknown statement kind {kind!r}")

    # ------------------------------------------------------------------
    # Expressions

    def eval_expression(self, node: tuple, env: Environment) -> Any:
        self._tick()
        kind = node[0]
        if kind == "literal":
            return node[1]
        if kind == "ident":
            return env.lookup(node[1])
        if kind == "array":
            result = []
            for element in node[1]:
                if element[0] == "spread":
                    spread = self.eval_expression(element[1], env)
                    if not isinstance(spread, list):
                        raise JSError("spread needs an array")
                    result.extend(spread)
                else:
                    result.append(self.eval_expression(element, env))
            return result
        if kind == "object":
            result = {}
            for key, value_node in node[1]:
                if isinstance(key, tuple) and key[0] == "computed":
                    key = js_repr(self.eval_expression(key[1], env))
                result[key] = self.eval_expression(value_node, env)
            return result
        if kind == "function":
            _, name, params, body = node
            return JSFunction(name, params, body, env, self)
        if kind == "binary":
            return self._binary(node[1], node[2], node[3], env)
        if kind == "logical":
            left = self.eval_expression(node[2], env)
            if node[1] == "&&":
                return self.eval_expression(node[3], env) if _truthy(left) else left
            return left if _truthy(left) else self.eval_expression(node[3], env)
        if kind == "unary":
            value = self.eval_expression(node[2], env)
            if node[1] == "!":
                return not _truthy(value)
            if node[1] == "-":
                return -self._number(value)
            return +self._number(value)
        if kind == "typeof":
            try:
                value = self.eval_expression(node[1], env)
            except JSReferenceError:
                # Real JS: typeof tolerates *unresolved names* only. Other
                # JSErrors (budget exhaustion, type errors) must propagate,
                # not collapse into "undefined".
                return "undefined"
            if value is None:
                return "undefined"
            if isinstance(value, bool):
                return "boolean"
            if isinstance(value, (int, float)):
                return "number"
            if isinstance(value, str):
                return "string"
            if callable(value):
                return "function"
            return "object"
        if kind == "ternary":
            if _truthy(self.eval_expression(node[1], env)):
                return self.eval_expression(node[2], env)
            return self.eval_expression(node[3], env)
        if kind == "assign":
            return self._assign(node[1], node[2], node[3], env)
        if kind == "update":
            return self._update(node[1], node[2], node[3], env)
        if kind == "member":
            target = self.eval_expression(node[1], env)
            return self._member(target, node[2])
        if kind == "index":
            target = self.eval_expression(node[1], env)
            index = self.eval_expression(node[2], env)
            return self._index(target, index)
        if kind == "call":
            return self._call(node, env)
        if kind == "delete":
            target_node = node[1]
            container = self.eval_expression(target_node[1], env)
            if target_node[0] == "member":
                key: Any = target_node[2]
            else:
                key = self.eval_expression(target_node[2], env)
            if isinstance(container, dict):
                container.pop(key, None)
                return True
            raise JSError("delete needs an object")
        raise JSError(f"unknown expression kind {kind!r}")

    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > MAX_STEPS:
            raise JSError("script exceeded its execution budget")

    @staticmethod
    def _number(value: Any) -> int | float:
        if isinstance(value, bool):
            return 1 if value else 0
        if isinstance(value, (int, float)):
            return value
        if isinstance(value, str):
            try:
                parsed = float(value)
                return int(parsed) if parsed.is_integer() else parsed
            except ValueError as exc:
                raise JSError(f"cannot convert {value!r} to a number") from exc
        if value is None:
            return 0
        raise JSError(f"cannot convert {type(value).__name__} to a number")

    def _binary(self, op: str, left_node, right_node, env) -> Any:
        left = self.eval_expression(left_node, env)
        right = self.eval_expression(right_node, env)
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return js_repr(left) + js_repr(right)
            return self._number(left) + self._number(right)
        if op == "-":
            return self._number(left) - self._number(right)
        if op == "*":
            return self._number(left) * self._number(right)
        if op == "/":
            right_number = self._number(right)
            if right_number == 0:
                raise JSThrow({"name": "RangeError", "message": "division by zero"})
            result = self._number(left) / right_number
            return result
        if op == "%":
            right_number = self._number(right)
            if right_number == 0:
                raise JSThrow({"name": "RangeError", "message": "modulo by zero"})
            import math

            return math.fmod(self._number(left), right_number)
        if op == "**":
            return self._number(left) ** self._number(right)
        if op in ("===", "=="):
            return self._equals(left, right)
        if op in ("!==", "!="):
            return not self._equals(left, right)
        if op in ("<", "<=", ">", ">="):
            if isinstance(left, str) and isinstance(right, str):
                pass  # string comparison
            else:
                left, right = self._number(left), self._number(right)
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        if op == "in":
            if isinstance(right, dict):
                return js_repr(left) in right or left in right
            if isinstance(right, list):
                index = int(self._number(left))
                return 0 <= index < len(right)
            raise JSError("'in' needs an object or array")
        raise JSError(f"unknown operator {op!r}")

    @staticmethod
    def _equals(left: Any, right: Any) -> bool:
        if isinstance(left, bool) != isinstance(right, bool):
            return False  # 1 !== true in our strict semantics
        if isinstance(left, (list, dict)) or isinstance(right, (list, dict)):
            return left is right
        return left == right

    def _assign(self, op: str, target: tuple, value_node: tuple, env) -> Any:
        value = self.eval_expression(value_node, env)
        if op != "=":
            current = self.eval_expression(target, env)
            value = self._binary_value(op[:-1], current, value)
        if target[0] == "ident":
            try:
                env.assign(target[1], value)
            except JSError:
                # Implicit global (sloppy mode) keeps simple scripts working.
                self.globals.declare(target[1], value)
            return value
        container = self.eval_expression(target[1], env)
        if target[0] == "member":
            key: Any = target[2]
        else:
            key = self.eval_expression(target[2], env)
        if isinstance(container, dict):
            container[key if isinstance(key, str) else js_repr(key)] = value
        elif isinstance(container, list):
            index = int(self._number(key))
            if index == len(container):
                container.append(value)
            elif 0 <= index < len(container):
                container[index] = value
            else:
                raise JSError(f"array index {index} out of range")
        else:
            raise JSError("cannot assign into this value")
        return value

    def _binary_value(self, op: str, left: Any, right: Any) -> Any:
        if op == "+":
            if isinstance(left, str) or isinstance(right, str):
                return js_repr(left) + js_repr(right)
            return self._number(left) + self._number(right)
        if op == "-":
            return self._number(left) - self._number(right)
        if op == "*":
            return self._number(left) * self._number(right)
        if op == "/":
            return self._number(left) / self._number(right)
        if op == "%":
            import math

            return math.fmod(self._number(left), self._number(right))
        raise JSError(f"unknown compound operator {op!r}")

    def _update(self, op: str, target: tuple, prefix: bool, env) -> Any:
        current = self._number(self.eval_expression(target, env))
        updated = current + (1 if op == "++" else -1)
        self._assign("=", target, ("literal", updated), env)
        return updated if prefix else current

    def _member(self, target: Any, name: str) -> Any:
        from repro.app.jsapp.stdlib import member_of

        return member_of(target, name)

    def _index(self, target: Any, index: Any) -> Any:
        if isinstance(target, dict):
            if index in target:
                return target[index]
            return target.get(js_repr(index))
        if isinstance(target, (list, str)):
            if isinstance(index, str):
                # Allow method access through brackets: arr["push"].
                return self._member(target, index)
            i = int(self._number(index))
            if 0 <= i < len(target):
                return target[i]
            return None
        if isinstance(target, NativeObject):
            return target.get_member(index if isinstance(index, str) else js_repr(index))
        if target is None:
            raise JSThrow({"name": "TypeError", "message": "cannot index null"})
        raise JSError(f"cannot index {type(target).__name__}")

    def _call(self, node: tuple, env) -> Any:
        _, callee, argument_nodes = node
        arguments = [self.eval_expression(argument, env) for argument in argument_nodes]
        function = self.eval_expression(callee, env)
        if not callable(function):
            name = callee[2] if callee[0] == "member" else callee[1] if callee[0] == "ident" else "?"
            raise JSThrow({"name": "TypeError", "message": f"{name} is not a function"})
        return function(*arguments)


def evaluate_script(source: str, extra_globals: dict[str, Any] | None = None) -> Environment:
    """Run a script and return its global environment."""
    return Interpreter(extra_globals).run(source)


def evaluate_vote_function(source: str, proposal: dict, proposer_id: str) -> bool:
    """Evaluate a ballot's ``vote(proposal, proposer_id)`` function
    (Listing 2's ``export function vote (proposal, proposer_id) ...``)."""
    interpreter = Interpreter()
    interpreter.run(source)
    return bool(interpreter.call_function("vote", proposal, proposer_id))


def evaluate_resolve_function(
    source: str, proposal: dict, proposer_id: str, votes: list, member_count: int
) -> str:
    """Evaluate a JS constitution's resolve function."""
    interpreter = Interpreter()
    interpreter.run(source)
    return interpreter.call_function("resolve", proposal, proposer_id, votes, member_count)
