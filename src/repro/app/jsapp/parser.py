"""Recursive-descent parser producing a small AST (tuples).

AST nodes are tuples ``(kind, ...)``; the interpreter pattern-matches on
the first element. Keeping nodes as plain tuples keeps the tree cheap to
walk — this engine runs inside the simulated enclave's hot path.
"""

from __future__ import annotations

from repro.app.jsapp.lexer import Token, tokenize
from repro.errors import JSError

# Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "===": 3, "!==": 3, "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4, "in": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
    "**": 7,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.position + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def match(self, kind: str, value: str | None = None) -> bool:
        if self.check(kind, value):
            self.advance()
            return True
        return False

    def expect(self, kind: str, value: str | None = None) -> Token:
        if not self.check(kind, value):
            token = self.peek()
            raise JSError(
                f"line {token.line}: expected {value or kind}, got "
                f"{token.value or token.kind!r}"
            )
        return self.advance()

    # -- entry -----------------------------------------------------------

    def parse_program(self) -> tuple:
        body = []
        while not self.check("eof"):
            body.append(self.parse_statement())
        return ("program", body)

    # -- statements --------------------------------------------------------

    def parse_statement(self) -> tuple:
        token = self.peek()
        if token.kind == "keyword":
            if token.value == "export":
                self.advance()  # "export function …" — export is a no-op here
                return self.parse_statement()
            if token.value in ("var", "let", "const"):
                return self.parse_declaration()
            if token.value == "function":
                return self.parse_function_declaration()
            if token.value == "if":
                return self.parse_if()
            if token.value == "while":
                return self.parse_while()
            if token.value == "for":
                return self.parse_for()
            if token.value == "return":
                self.advance()
                if self.check("op", ";") or self.check("op", "}"):
                    self.match("op", ";")
                    return ("return", None)
                value = self.parse_expression()
                self.match("op", ";")
                return ("return", value)
            if token.value == "break":
                self.advance()
                self.match("op", ";")
                return ("break",)
            if token.value == "continue":
                self.advance()
                self.match("op", ";")
                return ("continue",)
            if token.value == "throw":
                self.advance()
                value = self.parse_expression()
                self.match("op", ";")
                return ("throw", value)
            if token.value == "try":
                return self.parse_try()
        if self.check("op", "{"):
            return self.parse_block()
        expression = self.parse_expression()
        self.match("op", ";")
        return ("expr_stmt", expression)

    def parse_block(self) -> tuple:
        self.expect("op", "{")
        body = []
        while not self.check("op", "}"):
            body.append(self.parse_statement())
        self.expect("op", "}")
        return ("block", body)

    def parse_declaration(self) -> tuple:
        kind = self.advance().value  # var/let/const
        declarations = []
        while True:
            name = self.expect("ident").value
            initializer = None
            if self.match("op", "="):
                initializer = self.parse_assignment()
            declarations.append((name, initializer))
            if not self.match("op", ","):
                break
        self.match("op", ";")
        return ("declare", kind, declarations)

    def parse_function_declaration(self) -> tuple:
        self.expect("keyword", "function")
        name = self.expect("ident").value
        params, body = self._parse_function_rest()
        return ("func_decl", name, params, body)

    def _parse_function_rest(self) -> tuple[list[str], tuple]:
        self.expect("op", "(")
        params = []
        while not self.check("op", ")"):
            params.append(self.expect("ident").value)
            if not self.match("op", ","):
                break
        self.expect("op", ")")
        body = self.parse_block()
        return params, body

    def parse_if(self) -> tuple:
        self.expect("keyword", "if")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        then_branch = self.parse_statement()
        else_branch = None
        if self.match("keyword", "else"):
            else_branch = self.parse_statement()
        return ("if", condition, then_branch, else_branch)

    def parse_while(self) -> tuple:
        self.expect("keyword", "while")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ("while", condition, body)

    def parse_for(self) -> tuple:
        self.expect("keyword", "for")
        self.expect("op", "(")
        # for (let x of expr) { … }
        if self.peek().kind == "keyword" and self.peek().value in ("var", "let", "const") \
                and self.peek(2).kind == "keyword" and self.peek(2).value == "of":
            self.advance()
            name = self.expect("ident").value
            self.expect("keyword", "of")
            iterable = self.parse_expression()
            self.expect("op", ")")
            body = self.parse_statement()
            return ("for_of", name, iterable, body)
        # classic for (init; cond; update)
        init = None
        if not self.check("op", ";"):
            if self.peek().kind == "keyword" and self.peek().value in ("var", "let", "const"):
                init = self.parse_declaration()
            else:
                init = ("expr_stmt", self.parse_expression())
                self.match("op", ";")
        else:
            self.advance()
        if isinstance(init, tuple) and init[0] == "declare":
            pass  # parse_declaration consumed the semicolon
        condition = None
        if not self.check("op", ";"):
            condition = self.parse_expression()
        self.expect("op", ";")
        update = None
        if not self.check("op", ")"):
            update = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ("for", init, condition, update, body)

    def parse_try(self) -> tuple:
        self.expect("keyword", "try")
        try_block = self.parse_block()
        catch_name = None
        catch_block = None
        finally_block = None
        if self.match("keyword", "catch"):
            if self.match("op", "("):
                catch_name = self.expect("ident").value
                self.expect("op", ")")
            catch_block = self.parse_block()
        if self.match("keyword", "finally"):
            finally_block = self.parse_block()
        if catch_block is None and finally_block is None:
            raise JSError("try without catch or finally")
        return ("try", try_block, catch_name, catch_block, finally_block)

    # -- expressions -------------------------------------------------------

    def parse_expression(self) -> tuple:
        return self.parse_assignment()

    def parse_assignment(self) -> tuple:
        # Arrow functions: ident => …  |  (a, b) => …
        arrow = self._try_parse_arrow()
        if arrow is not None:
            return arrow
        target = self.parse_ternary()
        token = self.peek()
        if token.kind == "op" and token.value in _ASSIGN_OPS:
            op = self.advance().value
            value = self.parse_assignment()
            if target[0] not in ("ident", "member", "index"):
                raise JSError(f"line {token.line}: invalid assignment target")
            return ("assign", op, target, value)
        return target

    def _try_parse_arrow(self) -> tuple | None:
        start = self.position
        params: list[str] | None = None
        if self.check("ident") and self.peek(1).kind == "op" and self.peek(1).value == "=>":
            params = [self.advance().value]
        elif self.check("op", "("):
            # Look ahead for "(ident, …) =>".
            depth = 0
            j = self.position
            while j < len(self.tokens):
                token = self.tokens[j]
                if token.kind == "op" and token.value == "(":
                    depth += 1
                elif token.kind == "op" and token.value == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif depth == 1 and not (
                    token.kind == "ident" or (token.kind == "op" and token.value == ",")
                ):
                    return None
                j += 1
            if j + 1 < len(self.tokens) and self.tokens[j + 1].kind == "op" \
                    and self.tokens[j + 1].value == "=>":
                self.advance()  # (
                params = []
                while not self.check("op", ")"):
                    params.append(self.expect("ident").value)
                    if not self.match("op", ","):
                        break
                self.expect("op", ")")
        if params is None:
            return None
        if not self.match("op", "=>"):
            self.position = start
            return None
        if self.check("op", "{"):
            body = self.parse_block()
        else:
            body = ("return", self.parse_assignment())
        return ("function", None, params, body)

    def parse_ternary(self) -> tuple:
        condition = self.parse_binary(1)
        if self.match("op", "?"):
            then_value = self.parse_assignment()
            self.expect("op", ":")
            else_value = self.parse_assignment()
            return ("ternary", condition, then_value, else_value)
        return condition

    def parse_binary(self, min_precedence: int) -> tuple:
        left = self.parse_unary()
        while True:
            token = self.peek()
            op = token.value
            if token.kind == "keyword" and op == "in":
                precedence = _BINARY_PRECEDENCE["in"]
            elif token.kind == "op" and op in _BINARY_PRECEDENCE:
                precedence = _BINARY_PRECEDENCE[op]
            else:
                return left
            if precedence < min_precedence:
                return left
            self.advance()
            right = self.parse_binary(precedence + 1)
            if op in ("&&", "||"):
                left = ("logical", op, left, right)
            else:
                left = ("binary", op, left, right)

    def parse_unary(self) -> tuple:
        token = self.peek()
        if token.kind == "op" and token.value in ("!", "-", "+"):
            self.advance()
            return ("unary", token.value, self.parse_unary())
        if token.kind == "keyword" and token.value == "typeof":
            self.advance()
            return ("typeof", self.parse_unary())
        if token.kind == "keyword" and token.value == "delete":
            self.advance()
            target = self.parse_unary()
            if target[0] not in ("member", "index"):
                raise JSError("delete needs a member expression")
            return ("delete", target)
        if token.kind == "op" and token.value in ("++", "--"):
            self.advance()
            target = self.parse_unary()
            return ("update", token.value, target, True)
        return self.parse_postfix()

    def parse_postfix(self) -> tuple:
        expression = self.parse_call()
        token = self.peek()
        if token.kind == "op" and token.value in ("++", "--"):
            self.advance()
            return ("update", token.value, expression, False)
        return expression

    def parse_call(self) -> tuple:
        expression = self.parse_primary()
        while True:
            if self.match("op", "."):
                name = self.expect_property_name()
                expression = ("member", expression, name)
            elif self.check("op", "["):
                self.advance()
                index = self.parse_expression()
                self.expect("op", "]")
                expression = ("index", expression, index)
            elif self.check("op", "("):
                self.advance()
                arguments = []
                while not self.check("op", ")"):
                    arguments.append(self.parse_assignment())
                    if not self.match("op", ","):
                        break
                self.expect("op", ")")
                expression = ("call", expression, arguments)
            else:
                return expression

    def expect_property_name(self) -> str:
        token = self.peek()
        if token.kind in ("ident", "keyword"):
            self.advance()
            return token.value
        raise JSError(f"line {token.line}: expected property name")

    def parse_primary(self) -> tuple:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            value = float(token.value)
            return ("literal", int(value) if value.is_integer() else value)
        if token.kind == "string":
            self.advance()
            return ("literal", token.value)
        if token.kind == "keyword":
            if token.value == "true":
                self.advance()
                return ("literal", True)
            if token.value == "false":
                self.advance()
                return ("literal", False)
            if token.value in ("null", "undefined"):
                self.advance()
                return ("literal", None)
            if token.value == "function":
                self.advance()
                name = self.advance().value if self.check("ident") else None
                params, body = self._parse_function_rest()
                return ("function", name, params, body)
            if token.value == "new":
                # "new X(…)" — treated as a plain call (our stdlib
                # constructors are factory functions).
                self.advance()
                return self.parse_call()
        if token.kind == "ident":
            self.advance()
            return ("ident", token.value)
        if self.match("op", "("):
            expression = self.parse_expression()
            self.expect("op", ")")
            return expression
        if self.check("op", "["):
            self.advance()
            elements = []
            while not self.check("op", "]"):
                if self.match("op", "..."):
                    elements.append(("spread", self.parse_assignment()))
                else:
                    elements.append(self.parse_assignment())
                if not self.match("op", ","):
                    break
            self.expect("op", "]")
            return ("array", elements)
        if self.check("op", "{"):
            self.advance()
            pairs = []
            while not self.check("op", "}"):
                key_token = self.peek()
                if key_token.kind in ("ident", "keyword", "string"):
                    self.advance()
                    key = key_token.value
                elif key_token.kind == "number":
                    self.advance()
                    key = key_token.value
                elif self.check("op", "["):
                    self.advance()
                    key = ("computed", self.parse_expression())
                    self.expect("op", "]")
                else:
                    raise JSError(f"line {key_token.line}: bad object key")
                if self.match("op", ":"):
                    value = self.parse_assignment()
                else:
                    value = ("ident", key)  # shorthand {x}
                pairs.append((key, value))
                if not self.match("op", ","):
                    break
            self.expect("op", "}")
            return ("object", pairs)
        raise JSError(f"line {token.line}: unexpected token {token.value or token.kind!r}")


def parse(source: str) -> tuple:
    """Parse a program into its AST."""
    return Parser(tokenize(source)).parse_program()
