"""The embedded mini-JavaScript engine (the paper's QuickJS analog).

CCF lets services write application logic, constitutions, and ballots in
JavaScript (sections 5.1, 6.4, 7; Table 5's JS rows). This package
implements an interpreter for a practical JavaScript subset:

- values: numbers, strings, booleans, null/undefined, arrays, objects,
  first-class functions (with closures);
- statements: var/let/const, if/else, while, for, for-of, return,
  break/continue, throw/try/catch, function declarations;
- expressions: arithmetic/comparison/logical operators, ternary,
  assignment (including compound), calls, member/index access, literals,
  template-free strings, arrow functions;
- a small standard library: ``Math``, ``JSON``, ``Object.keys``,
  ``Array.isArray``, string/array methods — plus the ``ccf.kv`` binding
  that exposes the transactional KV store to handlers (Listing 1's
  ``ccf.kv["public:ccf.gov.nodes.code_ids"].set(...)``).

It is a genuine tree-walking interpreter: the JS rows of Table 5 are slower
than native because this engine really interprets the code.
"""

from repro.app.jsapp.interp import Interpreter, evaluate_script
from repro.app.jsapp.jsapp import build_js_app, JS_LOGGING_APP_SOURCE

__all__ = ["Interpreter", "evaluate_script", "build_js_app", "JS_LOGGING_APP_SOURCE"]
